//! `es-experiments` — command-line reproduction of the paper's figures.
//!
//! ```text
//! es-experiments <fig1|fig2|fig3|fig4|all> [options]
//! es-experiments cell --setting hetero --procs 32 --ccr 5 [options]
//! es-experiments robustness --procs 8 --intensities 0.2,0.5,0.8 [options]
//! es-experiments demo
//!
//! Options:
//!   --reps N            repetitions per cell            (default 5)
//!   --tasks N           fixed task count                (default: paper's U(40,1000))
//!   --seed N            base seed                       (default 20060810)
//!   --threads N         worker threads                  (default: $ES_THREADS or CPUs)
//!   --procs A,B,C       processor counts                (default 2,4,8,16,32,64,128)
//!   --ccrs A,B,C        CCR values                      (default: the paper's 19)
//!   --intensities A,B   fault intensities               (default 0.2,0.5,0.8)
//!   --validate          re-validate every schedule
//!   --strong-baseline   also run the probing BA family
//!   --csv PATH          write the per-cell results as CSV
//! ```

use es_sim::{fig1, fig2, fig3, fig4, fig_pair, run_cell, CellSpec, FigureParams, FigureResult};
use es_workload::Setting;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let cmd = args[0].as_str();
    // The serve family has its own flag grammar — hand it off before
    // the figure-option parser can trip over it. Workers spawned by a
    // driver started this way re-exec this binary as `serve worker`.
    if cmd == "serve" {
        std::process::exit(es_serve::run_cli(&args[1..], &["serve", "worker"]));
    }
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    match cmd {
        "fig1" => emit(&[fig1(&opts.params)], &opts),
        "fig2" => emit(&[fig2(&opts.params)], &opts),
        "fig3" => emit(&[fig3(&opts.params)], &opts),
        "fig4" => emit(&[fig4(&opts.params)], &opts),
        "all" => {
            // Figures 1+2 share their homogeneous grid, 3+4 the
            // heterogeneous one — compute each grid once.
            let (f1, f2) = fig_pair(&opts.params, Setting::Homogeneous);
            let (f3, f4) = fig_pair(&opts.params, Setting::Heterogeneous);
            emit(&[f1, f2, f3, f4], &opts);
        }
        "cell" => run_single_cell(&opts),
        "backends" => run_backend_comparison(&opts),
        "robustness" => run_robustness_sweep(&opts),
        "online" => run_online_cmd(&opts),
        "suite" => run_suite(&opts),
        "export" => export_instance(&opts),
        "verify" => verify_export(&opts),
        "demo" => demo(),
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "\
es-experiments — reproduce Han & Wang (ICPP 2006), Figures 1-4

USAGE:
  es-experiments <fig1|fig2|fig3|fig4|all|cell|backends|robustness|online|suite|export|verify|demo> [options]
  es-experiments serve <driver|worker|bench> [serve options]

OPTIONS:
  --reps N            repetitions per cell            (default 5)
  --tasks N           fixed task count                (default: paper's U(40,1000))
  --seed N            base seed                       (default 20060810)
  --threads N         worker threads                  (default: $ES_THREADS or CPUs)
  --procs A,B,C       processor counts                (default 2,4,8,16,32,64,128)
  --ccrs A,B,C        CCR values                      (default: the paper's 19 values)
  --setting h|het     (cell/robustness) homogeneous or heterogeneous
  --ccr X             (cell/robustness) single CCR
  --intensities A,B   (robustness) fault intensities in [0,1] (default 0.2,0.5,0.8)
  --backend B         (robustness) link-model backend: slot | fluid | saf |
                      saf:QUANTUM:LATENCY              (default slot)
  --jobs N            (online) jobs per arrival script (default 12)
  --tenants N         (online) tenant count            (default 3)
  --rates A,B         (online) mean inter-arrival gaps (default 2,10)
  --admission P       (online) fifo | swf              (default fifo)
  --max-inflight N    (online) dispatch-slot cap       (default 4)
  --fault-intensity X (online) production-day fault leg in [0,1]
  --validate          re-validate every schedule against the model
  --strong-baseline   also run the probing-BA family for comparison
  --progress          print a line to stderr per completed cell
  --csv PATH          write per-cell results as CSV
  --out DIR           (export) output directory       (default: export/)
                      (robustness) also export repaired schedules to DIR
  --in DIR            (verify only) exported run to audit (default: export/)
  --json              (verify only) emit es-diag-v1 JSON reports

The `export` command generates one instance (--setting/--procs/--ccr/
--seed/--tasks), schedules it with BA-static, BA, OIHSA and BBSA, and
writes DOT renderings of the DAG and topology plus per-schedule CSVs,
text Gantt charts and a manifest into DIR.

The `backends` command schedules one workload cell under every link
model — slot queues (the paper's model), fluid bandwidth sharing
(BBSA), and the packet-quantized store-and-forward model with per-link
latency — and prints a Markdown makespan-comparison table (each
schedule validated against its backend's transformed instance).

The `robustness` command sweeps fault intensities over one workload
cell: each scheduler's output is replayed under seeded soft faults
(weight jitter, link degradation, outages) and under hard failures
(one processor + one link killed mid-horizon), reporting degradation
ratios, infeasibility, and failure-aware repair statistics. With
--out DIR it additionally exports the repaired schedules at the
highest intensity as an es-export-v1 run that `verify --in DIR`
audits unchanged (repairs are valid against the full topology).

The `online` command delivers a seeded stream of tenant DAGs onto one
shared topology (Poisson-like arrivals, mixed kernel families and
sizes) and prints per-cell SLO tables (response, queueing, slowdown,
per-tenant fairness) over arrival rate x scheduler. With
--fault-intensity it replays every completed job under seeded link
failures and repairs the infeasible ones. With --out DIR it exports
one run's per-job schedules as an es-export-v1 directory whose
manifest records the arrival spec, so `verify --in DIR` regenerates
the script and re-audits every job.

The `verify` command re-audits an exported run: it regenerates the
instance from the manifest's recorded seed/config, parses each
algorithm's schedule back from its CSVs, and checks every model
invariant (diagnostic codes ES-E000..ES-E008, DESIGN.md §8). Exit
status is nonzero if any error-severity finding exists.

The `serve` command runs the es-serve scheduling service: a driver on
a Unix socket with supervised worker processes (deadlines, retries,
backoff, load shedding), plus a chaos-capable load-generating bench.
Run `es-experiments serve` with no arguments for its own usage.";

struct Options {
    params: FigureParams,
    csv: Option<String>,
    setting: Setting,
    single_ccr: f64,
    intensities: Vec<f64>,
    backend: es_core::LinkBackend,
    out_dir: Option<String>,
    in_dir: String,
    json: bool,
    jobs: usize,
    tenants: u32,
    rates: Vec<f64>,
    admission: es_core::online::Admission,
    max_inflight: usize,
    fault_intensity: Option<f64>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut params = FigureParams {
            reps: 5,
            ..FigureParams::default()
        };
        let mut csv = None;
        let mut setting = Setting::Homogeneous;
        let mut single_ccr = 1.0;
        let mut intensities = vec![0.2, 0.5, 0.8];
        let mut backend = es_core::LinkBackend::default();
        let mut out_dir = None;
        let mut in_dir = String::from("export");
        let mut json = false;
        let mut jobs = 12usize;
        let mut tenants = 3u32;
        let mut rates = vec![2.0, 10.0];
        let mut admission = es_core::online::Admission::Fifo;
        let mut max_inflight = 4usize;
        let mut fault_intensity = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{a} needs a value"))
            };
            match a.as_str() {
                "--reps" => params.reps = take()?.parse().map_err(|e| format!("--reps: {e}"))?,
                "--tasks" => {
                    params.tasks = Some(take()?.parse().map_err(|e| format!("--tasks: {e}"))?)
                }
                "--seed" => {
                    params.base_seed = take()?.parse().map_err(|e| format!("--seed: {e}"))?
                }
                "--threads" => {
                    params.threads = take()?.parse().map_err(|e| format!("--threads: {e}"))?
                }
                "--procs" => {
                    params.procs = take()?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--procs: {e}")))
                        .collect::<Result<_, _>>()?
                }
                "--ccrs" => {
                    params.ccrs = take()?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--ccrs: {e}")))
                        .collect::<Result<_, _>>()?
                }
                "--ccr" => single_ccr = take()?.parse().map_err(|e| format!("--ccr: {e}"))?,
                "--intensities" => {
                    intensities = take()?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--intensities: {e}")))
                        .collect::<Result<_, _>>()?
                }
                "--setting" => {
                    let v = take()?;
                    setting = match v.as_str() {
                        "h" | "hom" | "homogeneous" => Setting::Homogeneous,
                        "het" | "hetero" | "heterogeneous" => Setting::Heterogeneous,
                        _ => return Err(format!("--setting: unknown value {v}")),
                    };
                }
                "--backend" => {
                    backend = take()?.parse().map_err(|e| format!("--backend: {e}"))?;
                }
                "--jobs" => jobs = take()?.parse().map_err(|e| format!("--jobs: {e}"))?,
                "--tenants" => tenants = take()?.parse().map_err(|e| format!("--tenants: {e}"))?,
                "--rates" => {
                    rates = take()?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--rates: {e}")))
                        .collect::<Result<_, _>>()?
                }
                "--admission" => {
                    let v = take()?;
                    admission = es_core::online::Admission::parse(&v)
                        .ok_or_else(|| format!("--admission: unknown value {v} (fifo | swf)"))?;
                }
                "--max-inflight" => {
                    max_inflight = take()?
                        .parse()
                        .map_err(|e| format!("--max-inflight: {e}"))?
                }
                "--fault-intensity" => {
                    fault_intensity = Some(
                        take()?
                            .parse()
                            .map_err(|e| format!("--fault-intensity: {e}"))?,
                    )
                }
                "--validate" => params.validate = true,
                "--progress" => params.progress = true,
                "--strong-baseline" => params.strong_baseline = true,
                "--csv" => csv = Some(take()?),
                "--out" => out_dir = Some(take()?),
                "--in" => in_dir = take()?,
                "--json" => json = true,
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(Self {
            params,
            csv,
            setting,
            single_ccr,
            intensities,
            backend,
            out_dir,
            in_dir,
            json,
            jobs,
            tenants,
            rates,
            admission,
            max_inflight,
            fault_intensity,
        })
    }
}

fn emit(figs: &[FigureResult], opts: &Options) {
    for f in figs {
        println!("{}", f.to_table());
    }
    if let Some(path) = &opts.csv {
        let out = es_sim::report::figures_to_csv(figs);
        std::fs::write(path, out).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote per-cell CSV to {path}");
    }
}

fn run_single_cell(opts: &Options) {
    let spec = CellSpec {
        setting: opts.setting,
        processors: *opts.params.procs.first().unwrap_or(&8),
        ccr: opts.single_ccr,
        reps: opts.params.reps,
        base_seed: opts.params.base_seed,
        tasks: opts.params.tasks,
        validate: opts.params.validate,
        strong_baseline: opts.params.strong_baseline,
    };
    let r = run_cell(&spec);
    println!(
        "cell {:?} procs={} ccr={} reps={}",
        spec.setting, spec.processors, spec.ccr, spec.reps
    );
    println!("  BA-static makespan : {:>12.1}", r.ba_makespan);
    println!(
        "  OIHSA     makespan : {:>12.1}  ({:+.2}% vs BA, σ {:.2})",
        r.oihsa_makespan, r.oihsa_improvement, r.oihsa_stddev
    );
    println!(
        "  BBSA      makespan : {:>12.1}  ({:+.2}% vs BA, σ {:.2})",
        r.bbsa_makespan, r.bbsa_improvement, r.bbsa_stddev
    );
    if let (Some(bp), Some(oi), Some(bb)) = (
        r.ba_probe_makespan,
        r.oihsa_probe_improvement,
        r.bbsa_probe_improvement,
    ) {
        println!("  BA-probe  makespan : {bp:>12.1}");
        println!("  OIHSA-probe vs BA-probe : {oi:+.2}%");
        println!("  BBSA-probe  vs BA-probe : {bb:+.2}%");
    }
}

/// `backends`: one workload cell scheduled under every link-model
/// backend, printed as the Markdown table EXPERIMENTS.md embeds.
fn run_backend_comparison(opts: &Options) {
    use es_sim::backends::{compare_backends, markdown_table, BackendCompareSpec};

    let mut spec =
        BackendCompareSpec::paper_cell(opts.params.reps, opts.params.tasks, opts.params.base_seed);
    spec.setting = opts.setting;
    spec.processors = *opts.params.procs.first().unwrap_or(&8);
    spec.ccr = opts.single_ccr;
    spec.validate = opts.params.validate;
    spec.threads = opts.params.threads;
    let rows = compare_backends(&spec);
    print!("{}", markdown_table(&spec, &rows));
}

/// `robustness`: fault-intensity sweep on one workload cell, with an
/// optional es-export-v1 dump of the repaired schedules.
fn run_robustness_sweep(opts: &Options) {
    use es_sim::report::{robustness_to_csv, robustness_to_markdown};
    use es_sim::{run_robustness_backend, RobustnessSpec};

    let spec = RobustnessSpec {
        setting: opts.setting,
        processors: *opts.params.procs.first().unwrap_or(&8),
        ccr: opts.single_ccr,
        reps: opts.params.reps,
        base_seed: opts.params.base_seed,
        tasks: opts.params.tasks,
        intensities: opts.intensities.clone(),
        threads: opts.params.threads,
    };
    let cells = run_robustness_backend(&spec, opts.backend);
    if opts.backend != es_core::LinkBackend::default() {
        println!("link backend: {}", opts.backend);
    }
    print!("{}", robustness_to_markdown(&spec, &cells));
    if let Some(path) = &opts.csv {
        std::fs::write(path, robustness_to_csv(&spec, &cells)).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote robustness CSV to {path}");
    }
    if let Some(dir) = &opts.out_dir {
        export_repaired(&spec, dir);
    }
}

/// `online`: arrival-driven multi-DAG sweep on one shared topology,
/// printed as SLO/fairness markdown, with optional CSV and an
/// es-export-v1 dump of one run's per-job schedules.
fn run_online_cmd(opts: &Options) {
    use es_sim::online::{run_online_sweep, OnlineSweepSpec};
    use es_sim::report::{online_to_csv, online_to_markdown, tenants_to_markdown};

    if opts.backend == es_core::LinkBackend::Fluid {
        eprintln!("error: the online engine runs on the slotted link state; use slot or saf");
        std::process::exit(2);
    }
    let spec = OnlineSweepSpec {
        setting: opts.setting,
        processors: *opts.params.procs.first().unwrap_or(&8),
        jobs: opts.jobs,
        tenants: opts.tenants,
        mean_interarrivals: opts.rates.clone(),
        backends: vec![opts.backend],
        admission: opts.admission,
        max_inflight: opts.max_inflight,
        base_seed: opts.params.base_seed,
        fault_intensity: opts.fault_intensity,
        threads: opts.params.threads,
    };
    let cells = run_online_sweep(&spec);
    print!("{}", online_to_markdown(&spec, &cells));
    // Per-tenant fairness detail of the heaviest swept load, per
    // scheduler (the headline table above only has the ratio).
    if let Some(&rate) = spec.mean_interarrivals.iter().min_by(|a, b| a.total_cmp(b)) {
        for scheduler in es_sim::ONLINE_SCHEDULERS {
            let run = online_run_for(&spec, rate, scheduler);
            println!("\nPer-tenant ({scheduler}, gap {rate}):\n");
            print!("{}", tenants_to_markdown(&run.tenant_fairness()));
        }
    }
    if let Some(path) = &opts.csv {
        std::fs::write(path, online_to_csv(&spec, &cells)).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote online CSV to {path}");
    }
    if let Some(dir) = &opts.out_dir {
        export_online(&spec, dir);
    }
}

/// One full online run at (rate, scheduler) under the spec's first
/// backend — the same derivation chain `run_online_cell` uses, so the
/// outcomes match the sweep bit for bit.
fn online_run_for(
    spec: &es_sim::OnlineSweepSpec,
    rate: f64,
    scheduler: &'static str,
) -> es_core::OnlineRun {
    use es_core::online::{arrival_script, run_online, OnlineConfig};
    use es_core::ListScheduler;
    use es_sim::online::{online_arrivals, online_topology};

    let backend = *spec
        .backends
        .first()
        .unwrap_or(&es_core::LinkBackend::SlotQueue);
    let topo = backend.prepare_topology(&online_topology(spec));
    let jobs: Vec<es_core::JobSpec> = arrival_script(&online_arrivals(spec, rate))
        .into_iter()
        .map(|mut j| {
            j.dag = backend.prepare_dag(&j.dag);
            j
        })
        .collect();
    let sched = match scheduler {
        "ba_static" => ListScheduler::ba_static(),
        "oihsa" => ListScheduler::oihsa(),
        other => {
            eprintln!("unknown online scheduler {other}");
            std::process::exit(2);
        }
    };
    let cfg = OnlineConfig {
        scheduler: backend.adapt(*sched.config()),
        admission: spec.admission,
        max_inflight: spec.max_inflight,
        compaction: true,
    };
    run_online(&cfg, &topo, &jobs).expect("online run schedules")
}

/// Export one online run (first swept rate, OIHSA, slot backend) as an
/// es-export-v1 directory: one tasks/comms CSV pair per job, plus a
/// manifest whose `online=` key records everything `verify` needs to
/// regenerate the shared topology and arrival script.
fn export_online(spec: &es_sim::OnlineSweepSpec, dir_name: &str) {
    // The export pins the slot backend (the manifest records no
    // backend transform; verify regenerates untransformed instances).
    let mut spec = spec.clone();
    spec.backends = vec![es_core::LinkBackend::SlotQueue];
    let spec = &spec;
    let rate = *spec.mean_interarrivals.first().unwrap_or(&2.0);
    let scheduler = "oihsa";
    let run = online_run_for(spec, rate, scheduler);
    let jobs = es_core::online::arrival_script(&es_sim::online::online_arrivals(spec, rate));

    let dir = std::path::Path::new(dir_name);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    });
    let write = |name: &str, contents: String| {
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {}", path.display());
    };
    let mut manifest = String::from("schema=es-export-v1\n");
    manifest.push_str(&format!(
        "setting={}\n",
        match spec.setting {
            Setting::Homogeneous => "homogeneous",
            Setting::Heterogeneous => "heterogeneous",
        }
    ));
    manifest.push_str(&format!("processors={}\n", spec.processors));
    manifest.push_str(&format!("seed={}\n", spec.base_seed));
    // Full-precision rate via `{:?}` so verify regenerates the exact
    // arrival stream.
    manifest.push_str(&format!(
        "online={},{},{:?},{},{},{}\n",
        spec.jobs,
        spec.tenants,
        rate,
        spec.admission.name(),
        spec.max_inflight,
        scheduler,
    ));
    for o in &run.outcomes {
        let job = &jobs[o.job as usize];
        let tag = format!("job{}_{scheduler}", o.job);
        write(
            &format!("{tag}_tasks.csv"),
            es_core::export::tasks_to_csv(&job.dag, &o.schedule),
        );
        write(
            &format!("{tag}_comms.csv"),
            es_core::export::comms_to_csv(&job.dag, &o.schedule),
        );
        manifest.push_str(&format!(
            "schedule={tag},{},{:?}\n",
            o.schedule.algorithm, o.schedule.makespan
        ));
    }
    write("manifest.txt", manifest);
    println!(
        "exported online run: {} jobs, horizon {:.1}, {} slots compacted",
        run.outcomes.len(),
        run.horizon,
        run.released_slots
    );
}

/// Export the rep-0 instance's repaired schedules (highest swept
/// intensity, one processor + one link killed) as an es-export-v1 run.
/// Repairs are valid against the full topology, so `verify --in DIR`
/// re-audits them with the unchanged pipeline.
fn export_repaired(spec: &es_sim::RobustnessSpec, dir_name: &str) {
    use es_core::{repair, FaultPlan, FaultSpec, ListScheduler, Scheduler};
    use es_sim::robustness::fault_seed;
    use es_workload::{cell_seed, generate, InstanceConfig};

    let seed = cell_seed(spec.base_seed, spec.setting, spec.processors, spec.ccr, 0);
    let mut cfg = InstanceConfig::paper(spec.setting, spec.processors, spec.ccr, seed);
    cfg.tasks = spec.tasks;
    let inst = generate(&cfg);
    let dir = std::path::Path::new(dir_name);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    });
    let write = |name: &str, contents: String| {
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {}", path.display());
    };
    let intensity = spec.intensities.last().copied().unwrap_or(0.5);
    let mut manifest = manifest_header(&cfg);
    for sched in [ListScheduler::ba_static(), ListScheduler::oihsa()] {
        let s = sched
            .schedule(&inst.dag, &inst.topo)
            .expect("connected WAN");
        let plan = FaultPlan::seeded(
            &inst.dag,
            &inst.topo,
            &FaultSpec {
                intensity,
                horizon: s.makespan,
                kill_proc: true,
                kill_link: true,
            },
            fault_seed(seed, intensity).wrapping_add(1),
        );
        let outcome = repair(&inst.dag, &inst.topo, &s, &plan).unwrap_or_else(|e| {
            eprintln!("repair failed for {}: {e}", s.algorithm);
            std::process::exit(1);
        });
        let r = &outcome.schedule;
        let tag = format!("{}_repaired", s.algorithm.to_lowercase().replace('-', "_"));
        write(
            &format!("{tag}_tasks.csv"),
            es_core::export::tasks_to_csv(&inst.dag, r),
        );
        write(
            &format!("{tag}_comms.csv"),
            es_core::export::comms_to_csv(&inst.dag, r),
        );
        manifest.push_str(&format!(
            "schedule={tag},{},{:?}\n",
            r.algorithm, r.makespan
        ));
        println!(
            "  {:<10} repaired makespan {:>10.1} ({} moved, {} rerouted{})",
            r.algorithm,
            r.makespan,
            outcome.moved_tasks.len(),
            outcome.rerouted_comms,
            if outcome.used_fallback {
                ", basic-insertion fallback"
            } else {
                ""
            }
        );
    }
    write("manifest.txt", manifest);
}

/// The kernel × platform suite: every structured kernel on every
/// platform family, BA-static vs OIHSA vs BBSA improvements.
fn run_suite(opts: &Options) {
    use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};

    let tasks = opts.params.tasks.unwrap_or(60);
    let procs = *opts.params.procs.first().unwrap_or(&8);
    let scenarios = es_workload::suite::grid(tasks, procs, opts.single_ccr, opts.params.base_seed);
    println!(
        "kernel x platform suite: ~{tasks} tasks, {procs} processors, CCR {}\n",
        opts.single_ccr
    );
    println!(
        "{:<16} {:<10} {:>12} {:>9} {:>9}",
        "kernel", "platform", "BA makespan", "OIHSA%", "BBSA%"
    );
    for sc in &scenarios {
        let run = |s: &dyn Scheduler| -> f64 {
            let sched = s.schedule(&sc.dag, &sc.topo).expect("connected");
            if opts.params.validate {
                validate(&sc.dag, &sc.topo, &sched).expect("valid");
            }
            sched.makespan
        };
        let ba = run(&ListScheduler::ba_static());
        let oi = run(&ListScheduler::oihsa());
        let bb = run(&BbsaScheduler::new());
        println!(
            "{:<16} {:<10} {:>12.1} {:>8.1}% {:>8.1}%",
            sc.kernel.name(),
            sc.platform.name(),
            ba,
            100.0 * (ba - oi) / ba,
            100.0 * (ba - bb) / ba
        );
    }
}

/// Generate one instance and dump everything a human could want to look
/// at: DOT graphs, schedule CSVs, text Gantt charts, metrics.
fn export_instance(opts: &Options) {
    use es_core::{gantt, metrics, validate::validate, BbsaScheduler, ListScheduler, Scheduler};
    use es_workload::{generate, InstanceConfig};

    let mut cfg = InstanceConfig::paper(
        opts.setting,
        *opts.params.procs.first().unwrap_or(&8),
        opts.single_ccr,
        opts.params.base_seed,
    );
    cfg.tasks = opts.params.tasks;
    let inst = generate(&cfg);
    let dir_name = opts.out_dir.as_deref().unwrap_or("export");
    let dir = std::path::Path::new(dir_name);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    });
    let write = |name: &str, contents: String| {
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {}", path.display());
    };

    write("dag.dot", es_dag::dot::to_dot(&inst.dag, "instance"));
    write("topology.dot", es_net::dot::to_dot(&inst.topo, "network"));

    let mut summary = String::from(
        "algorithm,makespan,speedup,slr,procs_used,links_used
",
    );
    let mut manifest = manifest_header(&cfg);
    for sched in [
        Box::new(ListScheduler::ba_static()) as Box<dyn Scheduler>,
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::oihsa()),
        Box::new(BbsaScheduler::new()),
    ] {
        let s = sched
            .schedule(&inst.dag, &inst.topo)
            .expect("connected WAN");
        validate(&inst.dag, &inst.topo, &s).expect("valid schedule");
        let tag = s.algorithm.to_lowercase().replace('-', "_");
        write(
            &format!("{tag}_tasks.csv"),
            es_core::export::tasks_to_csv(&inst.dag, &s),
        );
        write(
            &format!("{tag}_comms.csv"),
            es_core::export::comms_to_csv(&inst.dag, &s),
        );
        write(
            &format!("{tag}_gantt.txt"),
            gantt::render(&inst.dag, &inst.topo, &s, &gantt::GanttOptions::default()),
        );
        let m = metrics(&inst.dag, &inst.topo, &s);
        summary.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{},{}
",
            s.algorithm, s.makespan, m.speedup, m.slr, m.processors_used, m.links_used
        ));
        // Full-precision makespan so `verify` can re-check ES-E008.
        manifest.push_str(&format!(
            "schedule={tag},{},{:?}\n",
            s.algorithm, s.makespan
        ));
    }
    write("summary.csv", summary);
    write("manifest.txt", manifest);
}

/// Key=value manifest recording everything `verify` needs to
/// regenerate the instance and re-audit each exported schedule.
fn manifest_header(cfg: &es_workload::InstanceConfig) -> String {
    let mut m = String::from("schema=es-export-v1\n");
    m.push_str(&format!(
        "setting={}\n",
        match cfg.setting {
            Setting::Homogeneous => "homogeneous",
            Setting::Heterogeneous => "heterogeneous",
        }
    ));
    m.push_str(&format!("processors={}\n", cfg.processors));
    m.push_str(&format!("ccr={:?}\n", cfg.ccr));
    if let Some(t) = cfg.tasks {
        m.push_str(&format!("tasks={t}\n"));
    }
    m.push_str(&format!("seed={}\n", cfg.seed));
    m
}

/// `verify`: re-audit an exported run against the regenerated
/// instance. Exits nonzero when any error-severity diagnostic fires.
fn verify_export(opts: &Options) {
    use es_core::export::schedule_from_csv;
    use es_core::validate::audit;
    use es_workload::{generate, InstanceConfig};

    let dir = std::path::Path::new(&opts.in_dir);
    let manifest_path = dir.join("manifest.txt");
    let manifest = std::fs::read_to_string(&manifest_path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", manifest_path.display());
        eprintln!("(run `es-experiments export --out DIR` first)");
        std::process::exit(2);
    });

    // --- Parse the manifest.
    let mut setting = None;
    let mut processors = None;
    let mut ccr = None;
    let mut tasks = None;
    let mut seed = None;
    let mut online: Option<String> = None;
    let mut schedules: Vec<(String, String, f64)> = Vec::new(); // (tag, algorithm, makespan)
    let fail = |why: String| -> ! {
        eprintln!("bad manifest {}: {why}", manifest_path.display());
        std::process::exit(2);
    };
    for line in manifest.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            fail(format!("line without `=`: {line}"));
        };
        match key {
            "schema" => {
                if value != "es-export-v1" {
                    fail(format!("unsupported schema {value}"));
                }
            }
            "setting" => {
                setting = Some(match value {
                    "homogeneous" => Setting::Homogeneous,
                    "heterogeneous" => Setting::Heterogeneous,
                    other => fail(format!("unknown setting {other}")),
                })
            }
            "processors" => {
                processors = Some(
                    value
                        .parse()
                        .unwrap_or_else(|e| fail(format!("processors: {e}"))),
                )
            }
            "ccr" => ccr = Some(value.parse().unwrap_or_else(|e| fail(format!("ccr: {e}")))),
            "tasks" => {
                tasks = Some(
                    value
                        .parse()
                        .unwrap_or_else(|e| fail(format!("tasks: {e}"))),
                )
            }
            "seed" => seed = Some(value.parse().unwrap_or_else(|e| fail(format!("seed: {e}")))),
            "online" => online = Some(value.to_string()),
            "schedule" => {
                let parts: Vec<&str> = value.split(',').collect();
                if parts.len() != 3 {
                    fail(format!(
                        "schedule line needs tag,algorithm,makespan: {value}"
                    ));
                }
                let makespan: f64 = parts[2]
                    .parse()
                    .unwrap_or_else(|e| fail(format!("schedule makespan: {e}")));
                schedules.push((parts[0].to_string(), parts[1].to_string(), makespan));
            }
            other => fail(format!("unknown key {other}")),
        }
    }
    if schedules.is_empty() {
        fail("no schedule entries".into());
    }
    // Online exports carry a per-job instance description instead of
    // one workload cell — branch to the online re-audit.
    if let Some(online) = online {
        let setting = setting.unwrap_or_else(|| fail("missing setting".into()));
        let processors = processors.unwrap_or_else(|| fail("missing processors".into()));
        let seed = seed.unwrap_or_else(|| fail("missing seed".into()));
        verify_online_export(opts, dir, setting, processors, seed, &online, &schedules);
        return;
    }
    let cfg = InstanceConfig {
        setting: setting.unwrap_or_else(|| fail("missing setting".into())),
        processors: processors.unwrap_or_else(|| fail("missing processors".into())),
        ccr: ccr.unwrap_or_else(|| fail("missing ccr".into())),
        tasks,
        seed: seed.unwrap_or_else(|| fail("missing seed".into())),
    };

    // --- Regenerate the instance (deterministic) and audit each run.
    let inst = generate(&cfg);
    let mut total_errors = 0usize;
    for (tag, algorithm, makespan) in schedules {
        let read = |name: String| -> String {
            std::fs::read_to_string(dir.join(&name)).unwrap_or_else(|e| {
                eprintln!("cannot read {name}: {e}");
                std::process::exit(2);
            })
        };
        let tasks_csv = read(format!("{tag}_tasks.csv"));
        let comms_csv = read(format!("{tag}_comms.csv"));
        // `Schedule.algorithm` is a &'static str by design (schedulers
        // name themselves with literals); a verified import earns its
        // lifetime via a one-off leak, bounded by the manifest size.
        let name: &'static str = Box::leak(algorithm.into_boxed_str());
        match schedule_from_csv(name, &inst.dag, &tasks_csv, &comms_csv, makespan) {
            Ok(schedule) => {
                let report = audit(&inst.dag, &inst.topo, &schedule);
                total_errors += report.error_count();
                if opts.json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.render_human());
                }
            }
            Err(why) => {
                // Unparseable exports are structural failures: report
                // them in-band as an ES-E000 diagnostic so --json
                // consumers see one uniform stream.
                let mut report = es_core::Report::new(name);
                report.push(es_core::Diagnostic::error(
                    es_core::Code::Structure,
                    es_core::Span::Schedule,
                    format!("export for `{tag}` cannot be parsed: {why}"),
                ));
                total_errors += 1;
                if opts.json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.render_human());
                }
            }
        }
    }
    if total_errors > 0 {
        eprintln!("verify: {total_errors} error(s)");
        std::process::exit(1);
    }
    println!("verify: all schedules clean");
}

/// Re-audit an online export: regenerate the shared topology and the
/// arrival script from the manifest's `online=` key, then audit each
/// `jobN_*` schedule against its own job DAG. Exits nonzero when any
/// error-severity diagnostic fires.
fn verify_online_export(
    opts: &Options,
    dir: &std::path::Path,
    setting: Setting,
    processors: usize,
    seed: u64,
    online: &str,
    schedules: &[(String, String, f64)],
) {
    use es_core::export::schedule_from_csv;
    use es_core::online::{arrival_script, Admission};
    use es_core::validate::audit;
    use es_sim::online::{online_arrivals, online_topology};
    use es_sim::OnlineSweepSpec;

    let fail = |why: String| -> ! {
        eprintln!("bad online manifest in {}: {why}", dir.display());
        std::process::exit(2);
    };
    let parts: Vec<&str> = online.split(',').collect();
    if parts.len() != 6 {
        fail(format!(
            "online needs jobs,tenants,rate,admission,max_inflight,scheduler: {online}"
        ));
    }
    let jobs: usize = parts[0]
        .parse()
        .unwrap_or_else(|e| fail(format!("jobs: {e}")));
    let tenants: u32 = parts[1]
        .parse()
        .unwrap_or_else(|e| fail(format!("tenants: {e}")));
    let rate: f64 = parts[2]
        .parse()
        .unwrap_or_else(|e| fail(format!("rate: {e}")));
    let admission = Admission::parse(parts[3])
        .unwrap_or_else(|| fail(format!("unknown admission {}", parts[3])));
    let max_inflight: usize = parts[4]
        .parse()
        .unwrap_or_else(|e| fail(format!("max_inflight: {e}")));
    let spec = OnlineSweepSpec {
        setting,
        processors,
        jobs,
        tenants,
        mean_interarrivals: vec![rate],
        backends: vec![es_core::LinkBackend::SlotQueue],
        admission,
        max_inflight,
        base_seed: seed,
        fault_intensity: None,
        threads: 1,
    };
    let topo = online_topology(&spec);
    let script = arrival_script(&online_arrivals(&spec, rate));

    let mut total_errors = 0usize;
    for (tag, algorithm, makespan) in schedules {
        let idx: usize = tag
            .strip_prefix("job")
            .and_then(|r| r.split('_').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| fail(format!("schedule tag without job index: {tag}")));
        let job = script
            .get(idx)
            .unwrap_or_else(|| fail(format!("job index {idx} beyond the {jobs}-job script")));
        let read = |name: String| -> String {
            std::fs::read_to_string(dir.join(&name)).unwrap_or_else(|e| {
                eprintln!("cannot read {name}: {e}");
                std::process::exit(2);
            })
        };
        let tasks_csv = read(format!("{tag}_tasks.csv"));
        let comms_csv = read(format!("{tag}_comms.csv"));
        let name: &'static str = Box::leak(format!("{algorithm}[job{idx}]").into_boxed_str());
        match schedule_from_csv(name, &job.dag, &tasks_csv, &comms_csv, *makespan) {
            Ok(schedule) => {
                let report = audit(&job.dag, &topo, &schedule);
                total_errors += report.error_count();
                if opts.json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.render_human());
                }
            }
            Err(why) => {
                let mut report = es_core::Report::new(name);
                report.push(es_core::Diagnostic::error(
                    es_core::Code::Structure,
                    es_core::Span::Schedule,
                    format!("export for `{tag}` cannot be parsed: {why}"),
                ));
                total_errors += 1;
                if opts.json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.render_human());
                }
            }
        }
    }
    if total_errors > 0 {
        eprintln!("verify: {total_errors} error(s)");
        std::process::exit(1);
    }
    println!("verify: all {} online job schedules clean", schedules.len());
}

/// A tiny end-to-end walkthrough on a fixed instance — smoke test and
/// first-contact demo.
fn demo() {
    use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};
    use es_workload::{generate, InstanceConfig};

    let cfg = InstanceConfig::paper(Setting::Heterogeneous, 8, 2.0, 42).with_tasks(60);
    let inst = generate(&cfg);
    println!(
        "instance: {} tasks, {} edges, {} processors, {} links",
        inst.dag.task_count(),
        inst.dag.edge_count(),
        inst.topo.proc_count(),
        inst.topo.link_count()
    );
    for sched in [
        Box::new(ListScheduler::ba_static()) as Box<dyn Scheduler>,
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::oihsa()),
        Box::new(BbsaScheduler::new()),
    ] {
        let s = sched.schedule(&inst.dag, &inst.topo).expect("schedulable");
        validate(&inst.dag, &inst.topo, &s).expect("valid");
        println!(
            "  {:<10} makespan {:>10.1}  (validated)",
            s.algorithm, s.makespan
        );
    }
    let _ = std::io::stdout().flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        Options::parse(&owned)
    }

    #[test]
    fn defaults_match_paper_grids() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.params.reps, 5);
        assert_eq!(o.params.procs, vec![2, 4, 8, 16, 32, 64, 128]);
        assert_eq!(o.params.ccrs.len(), 19);
        assert!(o.params.tasks.is_none());
        assert!(!o.params.validate);
        assert!(!o.params.strong_baseline);
        assert!(o.csv.is_none());
        assert!(o.out_dir.is_none());
        assert_eq!(o.intensities.len(), 3);
    }

    #[test]
    fn parses_intensities() {
        let o = parse(&["--intensities", "0.1, 0.9"]).unwrap();
        assert_eq!(o.intensities, vec![0.1, 0.9]);
        assert!(parse(&["--intensities", "high"]).is_err());
    }

    #[test]
    fn parses_backend_selection() {
        use es_core::{LinkBackend, SafTiming};
        assert_eq!(parse(&[]).unwrap().backend, LinkBackend::SlotQueue);
        assert_eq!(
            parse(&["--backend", "fluid"]).unwrap().backend,
            LinkBackend::Fluid
        );
        assert_eq!(
            parse(&["--backend", "saf:2:0.5"]).unwrap().backend,
            LinkBackend::StoreForward(SafTiming::new(2.0, 0.5))
        );
        let err = parse(&["--backend", "carrier-pigeon"]).err().unwrap();
        assert!(err.contains("--backend"), "{err}");
    }

    #[test]
    fn out_dir_recorded_when_given() {
        let o = parse(&["--out", "runs/x"]).unwrap();
        assert_eq!(o.out_dir.as_deref(), Some("runs/x"));
    }

    #[test]
    fn parses_numeric_options() {
        let o = parse(&[
            "--reps",
            "7",
            "--tasks",
            "120",
            "--seed",
            "99",
            "--threads",
            "3",
        ])
        .unwrap();
        assert_eq!(o.params.reps, 7);
        assert_eq!(o.params.tasks, Some(120));
        assert_eq!(o.params.base_seed, 99);
        assert_eq!(o.params.threads, 3);
    }

    #[test]
    fn parses_lists() {
        let o = parse(&["--procs", "2,8, 32", "--ccrs", "0.5,2,10"]).unwrap();
        assert_eq!(o.params.procs, vec![2, 8, 32]);
        assert_eq!(o.params.ccrs, vec![0.5, 2.0, 10.0]);
    }

    #[test]
    fn parses_flags_and_setting() {
        let o = parse(&[
            "--validate",
            "--strong-baseline",
            "--setting",
            "het",
            "--ccr",
            "4.5",
        ])
        .unwrap();
        assert!(o.params.validate);
        assert!(o.params.strong_baseline);
        assert_eq!(o.setting, Setting::Heterogeneous);
        assert_eq!(o.single_ccr, 4.5);
    }

    #[test]
    fn rejects_unknown_option_and_missing_value() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--reps"]).is_err());
        assert!(parse(&["--reps", "abc"]).is_err());
        assert!(parse(&["--setting", "martian"]).is_err());
    }

    #[test]
    fn csv_path_recorded() {
        let o = parse(&["--csv", "/tmp/out.csv"]).unwrap();
        assert_eq!(o.csv.as_deref(), Some("/tmp/out.csv"));
    }
}
