//! Decoder-robustness suite for es-wire-v1 (DESIGN.md §13.1).
//!
//! Property 1 — **totality**: for *any* byte string, the frame
//! decoder either returns a typed `WireError` or a valid frame; it
//! never panics and never allocates what a forged length claims.
//!
//! Property 2 — **round-trip**: every frame the encoder can produce
//! decodes back to an equal frame, through both the payload codec and
//! the length-prefixed stream layer.
//!
//! Frames are generated from a seeded RNG (the vendored proptest
//! drives seeds, the frame builder expands them), so every corpus is
//! reproducible from the failing case's printed inputs.

use es_wire::{
    read_frame, read_preamble, write_frame, write_preamble, AlgoId, DriverStats, Frame,
    RejectReason, Request, ScheduleReply, WireComm, WireError, WireFault, WireHop, WireInstance,
    WireLanes, WirePiece, WireSchedule, WireTask, WireTuning,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn arb_string(rng: &mut StdRng) -> String {
    let len = rng.random_range(0..20usize);
    (0..len)
        .map(|_| char::from(rng.random_range(32u8..127)))
        .collect()
}

fn arb_tuning(rng: &mut StdRng) -> WireTuning {
    WireTuning {
        route_cache: rng.random_bool(0.5),
        indexed_gaps: rng.random_bool(0.5),
        snapshot_restore: rng.random_bool(0.5),
        lanes: match rng.random_range(0..3u8) {
            0 => WireLanes::Sequential,
            1 => WireLanes::Auto,
            _ => WireLanes::Workers(rng.random_range(0..16u16)),
        },
    }
}

fn arb_request(rng: &mut StdRng) -> Request {
    Request {
        id: rng.random_range(0..u64::MAX),
        deadline_ms: rng.random_range(0..100_000u32),
        tenant: rng.random_range(0..u32::MAX),
        algo: AlgoId::ALL[rng.random_range(0..AlgoId::ALL.len())],
        tuning: arb_tuning(rng),
        instance: WireInstance {
            heterogeneous: rng.random_bool(0.5),
            processors: rng.random_range(1..256u32),
            ccr: f64::from_bits(rng.random_range(0..u64::MAX)),
            tasks: if rng.random_bool(0.5) {
                Some(rng.random_range(1..2000u32))
            } else {
                None
            },
            seed: rng.random_range(0..u64::MAX),
        },
        fault: if rng.random_bool(0.3) {
            Some(WireFault {
                intensity: rng.random_range(0.0..1.0),
                kill_proc: rng.random_bool(0.5),
                kill_link: rng.random_bool(0.5),
                seed: rng.random_range(0..u64::MAX),
            })
        } else {
            None
        },
    }
}

fn arb_comm(rng: &mut StdRng) -> WireComm {
    let arb_route = |rng: &mut StdRng| -> Vec<WireHop> {
        (0..rng.random_range(0..4usize))
            .map(|_| WireHop {
                link: rng.random_range(0..64u32),
                from: rng.random_range(0..64u32),
                to: rng.random_range(0..64u32),
            })
            .collect()
    };
    match rng.random_range(0..4u8) {
        0 => WireComm::Local,
        1 => {
            let route = arb_route(rng);
            let times = (0..route.len())
                .map(|_| (rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
                .collect();
            WireComm::Slotted { route, times }
        }
        2 => {
            let route = arb_route(rng);
            let flows = (0..route.len())
                .map(|_| {
                    (0..rng.random_range(0..3usize))
                        .map(|_| WirePiece {
                            start: rng.random_range(0.0..100.0),
                            end: rng.random_range(0.0..100.0),
                            rate: rng.random_range(0.0..1.0),
                        })
                        .collect()
                })
                .collect();
            WireComm::Fluid { route, flows }
        }
        _ => WireComm::Ideal {
            delay: rng.random_range(0.0..100.0),
            arrival: rng.random_range(0.0..100.0),
        },
    }
}

fn arb_schedule(rng: &mut StdRng) -> WireSchedule {
    WireSchedule {
        algorithm: arb_string(rng),
        makespan: f64::from_bits(rng.random_range(0..u64::MAX)),
        tasks: (0..rng.random_range(0..24usize))
            .map(|_| WireTask {
                proc: rng.random_range(0..128u32),
                start: rng.random_range(0.0..1000.0),
                finish: rng.random_range(0.0..1000.0),
            })
            .collect(),
        comms: (0..rng.random_range(0..16usize))
            .map(|_| arb_comm(rng))
            .collect(),
    }
}

/// Expand a seed into one arbitrary frame, covering every frame kind.
fn arb_frame(seed: u64) -> Frame {
    let mut rng = StdRng::seed_from_u64(seed);
    match rng.random_range(0..11u8) {
        0 => Frame::Request(arb_request(&mut rng)),
        1 => Frame::Schedule(ScheduleReply {
            id: rng.random_range(0..u64::MAX),
            attempts: rng.random_range(1..8u32),
            schedule: arb_schedule(&mut rng),
        }),
        2 => Frame::Overloaded {
            id: rng.random_range(0..u64::MAX),
            queue_len: rng.random_range(0..4096u32),
        },
        3 => {
            let reason = match rng.random_range(0..6u8) {
                0 => RejectReason::DeadlineExceeded,
                1 => RejectReason::RetriesExhausted {
                    detail: arb_string(&mut rng),
                },
                2 => RejectReason::Scheduler {
                    detail: arb_string(&mut rng),
                },
                3 => RejectReason::BadRequest {
                    detail: arb_string(&mut rng),
                },
                4 => RejectReason::ShuttingDown,
                _ => RejectReason::WorkerPanic {
                    detail: arb_string(&mut rng),
                },
            };
            Frame::Reject {
                id: rng.random_range(0..u64::MAX),
                reason,
            }
        }
        4 => Frame::Ping {
            nonce: rng.random_range(0..u64::MAX),
        },
        5 => Frame::Pong {
            nonce: rng.random_range(0..u64::MAX),
        },
        6 => Frame::Stall {
            millis: rng.random_range(0..10_000u64),
        },
        7 => Frame::Shutdown,
        8 => Frame::Diagnostics {
            id: rng.random_range(0..u64::MAX),
            report_json: arb_string(&mut rng),
        },
        9 => Frame::StatsRequest,
        _ => Frame::Stats(DriverStats {
            admitted: rng.random_range(0..u64::MAX),
            completed: rng.random_range(0..u64::MAX),
            shed: rng.random_range(0..u64::MAX),
            deadline_rejected: rng.random_range(0..u64::MAX),
            rejected: rng.random_range(0..u64::MAX),
            retries: rng.random_range(0..u64::MAX),
            worker_kills: rng.random_range(0..u64::MAX),
            worker_respawns: rng.random_range(0..u64::MAX),
            chaos_kills: rng.random_range(0..u64::MAX),
            chaos_stalls: rng.random_range(0..u64::MAX),
            queue_len: rng.random_range(0..u32::MAX),
            workers_alive: rng.random_range(0..64u32),
            inflight: rng.random_range(0..4096u32),
            shed_by_tenant: {
                let n = rng.random_range(0..5usize);
                (0..n)
                    .map(|_| (rng.random_range(0..64u32), rng.random_range(0..u64::MAX)))
                    .collect()
            },
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round-trip: payload codec.
    #[test]
    fn frame_payload_roundtrips(seed in 0u64..u64::MAX) {
        let frame = arb_frame(seed);
        let payload = frame.encode();
        let back = Frame::decode(&payload).expect("own encoding decodes");
        prop_assert_eq!(back, frame);
    }

    /// Round-trip: stream layer (preamble + several frames).
    #[test]
    fn stream_roundtrips(seed in 0u64..u64::MAX, count in 1usize..5) {
        let frames: Vec<Frame> = (0..count as u64)
            .map(|i| arb_frame(seed.wrapping_add(i)))
            .collect();
        let mut buf = Vec::new();
        write_preamble(&mut buf).expect("vec write");
        for f in &frames {
            write_frame(&mut buf, f).expect("vec write");
        }
        let mut cur = std::io::Cursor::new(buf);
        read_preamble(&mut cur).expect("own preamble");
        for f in &frames {
            prop_assert_eq!(read_frame(&mut cur).expect("own frame"), Some(f.clone()));
        }
        prop_assert_eq!(read_frame(&mut cur).expect("clean eof"), None);
    }

    /// Every strict prefix of an encoded stream is a typed truncation
    /// error (or a clean EOF exactly at a frame boundary) — never a
    /// panic, never a wrong frame.
    #[test]
    fn truncation_never_panics(seed in 0u64..u64::MAX, cut_seed in 0u64..u64::MAX) {
        let frame = arb_frame(seed);
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("vec write");
        let cut = (cut_seed as usize) % buf.len();
        let mut cur = std::io::Cursor::new(&buf[..cut]);
        match read_frame(&mut cur) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at a frame boundary"),
            Ok(Some(_)) => prop_assert!(false, "decoded a frame from a strict prefix"),
            Err(_) => {} // typed error: exactly what truncation must produce
        }
    }

    /// Flipping any single byte never panics; if it still decodes, the
    /// stream layer stayed self-consistent (flips inside the payload
    /// may legitimately produce a different valid frame).
    #[test]
    fn single_byte_flips_never_panic(seed in 0u64..u64::MAX, pos_seed in 0u64..u64::MAX, bit in 0u8..8) {
        let frame = arb_frame(seed);
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("vec write");
        let pos = (pos_seed as usize) % buf.len();
        buf[pos] ^= 1 << bit;
        let mut cur = std::io::Cursor::new(buf);
        // Must return, with either verdict; the property is totality.
        let _ = read_frame(&mut cur);
    }

    /// Random garbage payloads decode totally (typed error or valid
    /// frame, never a panic).
    #[test]
    fn garbage_payloads_never_panic(seed in 0u64..u64::MAX, len in 0usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payload: Vec<u8> = (0..len).map(|_| rng.random_range(0..=255u8)).collect();
        let _ = Frame::decode(&payload);
    }

    /// Forged length prefixes are rejected before allocation: a header
    /// claiming up to `u32::MAX` bytes with no payload behind it must
    /// produce `FrameTooLarge` or `Truncated`, and return fast.
    #[test]
    fn forged_length_prefixes_rejected(claim in 0u32..u32::MAX) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&claim.to_le_bytes());
        let mut cur = std::io::Cursor::new(buf);
        match read_frame(&mut cur) {
            Err(WireError::FrameTooLarge { len }) => {
                prop_assert!(len > es_wire::MAX_FRAME_LEN);
            }
            Err(WireError::Truncated { .. }) => {}
            Err(WireError::EmptyFrame) => prop_assert_eq!(claim, 0),
            other => prop_assert!(false, "unexpected verdict: {:?}", other),
        }
    }

    /// Forged collection counts inside a frame are rejected before
    /// allocation. Builds a Schedule frame whose task-count field
    /// claims up to `u32::MAX` entries with only a few bytes behind
    /// it; the decoder must answer with `LengthOverflow`, not an
    /// allocation attempt.
    #[test]
    fn forged_vec_counts_rejected(claim in 1u32..u32::MAX) {
        let mut payload = Vec::new();
        payload.push(2u8); // Schedule frame tag
        payload.extend_from_slice(&7u64.to_le_bytes()); // id
        payload.extend_from_slice(&1u32.to_le_bytes()); // attempts
        payload.extend_from_slice(&0u32.to_le_bytes()); // algorithm: empty string
        payload.extend_from_slice(&0f64.to_bits().to_le_bytes()); // makespan
        payload.extend_from_slice(&claim.to_le_bytes()); // forged task count
        payload.extend_from_slice(&[0u8; 8]); // far fewer bytes than claimed
        match Frame::decode(&payload) {
            Err(WireError::LengthOverflow { what, claimed, .. }) => {
                prop_assert_eq!(what, "schedule.tasks");
                prop_assert_eq!(claimed, claim as usize);
            }
            other => prop_assert!(false, "unexpected verdict: {:?}", other),
        }
    }
}
