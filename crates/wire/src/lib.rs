//! # es-wire — the es-serve driver/worker wire format (es-wire-v1)
//!
//! A compact, versioned, binary protocol carrying scheduling requests
//! (instance specs + tuning), schedules, diagnostics, heartbeats and
//! service-control frames between the es-serve driver, its worker
//! processes and its clients (DESIGN.md §13).
//!
//! Design points:
//!
//! * **std-only.** Hand-rolled little-endian encoding; no serde, no
//!   external dependencies — the format is fully specified by this
//!   crate's source and the DESIGN.md §13.1 table.
//! * **Length-prefixed frames.** Streams begin with a magic+version
//!   preamble; each frame is a `u32` payload length plus a tagged
//!   payload, so a reader can never desynchronize silently.
//! * **Strict, total decoder.** Corrupt input — truncated frames,
//!   flipped bytes, forged length prefixes, unknown tags — yields a
//!   typed [`WireError`], never a panic and never an OOM-scale
//!   allocation (collection lengths are validated against the bytes
//!   actually present *before* allocating).
//! * **Bit-exact floats.** Times travel as IEEE-754 bit patterns, so
//!   a schedule computed on a worker and decoded by a client is
//!   bitwise-identical to a locally computed one — the property the
//!   chaos invariant measures.
//! * **Spec-form instances.** Requests carry the deterministic
//!   generator coordinates ([`WireInstance`] ≅
//!   `es_workload::InstanceConfig`), not expanded DAGs: tens of bytes
//!   per request, and the worker's regeneration is seeded and
//!   bit-reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod convert;
pub mod frame;

pub use codec::{ByteReader, ByteWriter, WireError, MAGIC, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use frame::{
    read_frame, read_preamble, write_frame, write_preamble, AlgoId, DriverStats, Frame,
    RejectReason, Request, ScheduleReply, WireComm, WireFault, WireHop, WireInstance, WireLanes,
    WirePiece, WireSchedule, WireTask, WireTuning,
};

// The driver moves these across threads and worker boundaries; keep
// them provably thread-clean at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<Frame>();
    assert_send_sync::<Request>();
    assert_send_sync::<WireSchedule>();
    assert_send_sync::<DriverStats>();
    assert_send_sync::<WireError>();
};
