//! Byte-level primitives of es-wire-v1.
//!
//! Everything on the wire is little-endian. Floats travel as their
//! exact IEEE-754 bit patterns (`f64::to_bits`), so a schedule that
//! crosses a process boundary compares bitwise-equal to one computed
//! locally — the property the chaos invariant (DESIGN.md §13) rests
//! on. The reader is strict: every length is validated against the
//! bytes actually present *before* any allocation, every enum tag
//! must be known, and a fully decoded payload must leave no trailing
//! bytes. Corrupt input yields a typed [`WireError`], never a panic
//! and never an attempt to allocate what a forged length prefix
//! claims.

use std::fmt;

/// Protocol magic, written once per stream before any frame.
pub const MAGIC: [u8; 6] = *b"ESWIRE";

/// Current protocol version. v2 added `Request.tenant` and the
/// per-tenant shed counters in `DriverStats`; v3 added
/// `tuning.snapshot_restore`; both sides of a stream must speak the
/// same version (the preamble check rejects mixes).
pub const PROTOCOL_VERSION: u16 = 3;

/// Hard ceiling on one frame's payload. A forged length prefix above
/// this is rejected before allocation; the largest legitimate frames
/// (schedules for paper-sized instances) stay far below it.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Everything that can go wrong while decoding es-wire-v1 bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a fixed-size field was complete.
    Truncated {
        /// Bytes the decoder needed next.
        need: usize,
        /// Bytes that were actually left.
        have: usize,
    },
    /// The stream preamble does not start with [`MAGIC`].
    BadMagic([u8; 6]),
    /// The stream speaks a protocol version this build does not.
    UnsupportedVersion(u16),
    /// A frame payload began with an unknown frame tag.
    UnknownFrameTag(u8),
    /// An enum field carried a tag outside its known range.
    UnknownEnumTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The claimed payload length.
        len: usize,
    },
    /// A collection claimed more elements than the remaining bytes
    /// could possibly hold — rejected before any allocation.
    LengthOverflow {
        /// Which collection was being decoded.
        what: &'static str,
        /// The claimed element count.
        claimed: usize,
        /// Bytes remaining in the payload.
        remaining: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// Which field was being decoded.
        what: &'static str,
    },
    /// A field's value was syntactically decodable but semantically
    /// out of range (e.g. a bool byte that is neither 0 nor 1).
    BadValue {
        /// Which field was being decoded.
        what: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// A payload decoded completely but left unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// An empty (zero-length) frame payload.
    EmptyFrame,
    /// An underlying I/O failure while reading or writing a stream.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated input: needed {need} more bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad stream magic {m:?}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownFrameTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::UnknownEnumTag { what, tag } => {
                write!(f, "unknown {what} tag {tag}")
            }
            WireError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_LEN}-byte ceiling"
                )
            }
            WireError::LengthOverflow {
                what,
                claimed,
                remaining,
            } => write!(
                f,
                "{what} claims {claimed} elements but only {remaining} bytes remain"
            ),
            WireError::BadUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
            WireError::BadValue { what, detail } => write!(f, "bad {what}: {detail}"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete payload")
            }
            WireError::EmptyFrame => write!(f, "empty frame payload"),
            WireError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Growable little-endian byte writer for one frame payload.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one strict byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string below 4 GiB"));
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Strict cursor over one frame payload.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from `buf`, starting at its first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a strict bool byte (anything but 0 or 1 is an error).
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::BadValue {
                what,
                detail: format!("bool byte {other}"),
            }),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::LengthOverflow {
                what,
                claimed: len,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { what })
    }

    /// Read a collection length prefix, validated against the bytes
    /// that actually remain: a claim of `n` elements each at least
    /// `min_elem_size` bytes wide must fit in the rest of the payload.
    /// This is what makes a forged 4-billion-element vector a cheap
    /// typed error instead of an OOM-scale allocation.
    pub fn get_len(
        &mut self,
        what: &'static str,
        min_elem_size: usize,
    ) -> Result<usize, WireError> {
        let claimed = self.get_u32()? as usize;
        let fits = claimed
            .checked_mul(min_elem_size.max(1))
            .is_some_and(|bytes| bytes <= self.remaining());
        if !fits {
            return Err(WireError::LengthOverflow {
                what,
                claimed,
                remaining: self.remaining(),
            });
        }
        Ok(claimed)
    }

    /// Assert the whole payload was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_bool(true);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        // Bit-exact: -0.0 survives (a text format would lose the sign).
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_bool("flag").unwrap());
        assert_eq!(r.get_str("s").unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u32(), Err(WireError::Truncated { need: 4, have: 2 }));
    }

    #[test]
    fn strict_bool() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(
            r.get_bool("flag"),
            Err(WireError::BadValue { what: "flag", .. })
        ));
    }

    #[test]
    fn forged_length_is_rejected_before_allocation() {
        // Claims u32::MAX elements of >= 8 bytes with 4 bytes left.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        w.put_u32(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_len("tasks", 8),
            Err(WireError::LengthOverflow { what: "tasks", .. })
        ));
    }

    #[test]
    fn string_length_overflow_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(1000);
        w.put_u8(b'x');
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_str("name"),
            Err(WireError::LengthOverflow { what: "name", .. })
        ));
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str("name"), Err(WireError::BadUtf8 { what: "name" }));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let r = ByteReader::new(&[0]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { count: 1 }));
    }
}
