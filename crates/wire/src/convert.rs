//! Conversions between the wire mirror types and the real workspace
//! types (`es_core`, `es_net`, `es_linksched`, `es_workload`).
//!
//! Schedules cross the boundary losslessly: every float travels as
//! its bit pattern, so `WireSchedule::from_schedule(s).to_schedule()`
//! reproduces `s` field by field and bit by bit. That makes "encode
//! both and compare the byte strings" a faithful implementation of
//! the chaos invariant's bitwise-identity check.

use crate::codec::WireError;
use crate::frame::{
    AlgoId, WireComm, WireHop, WireInstance, WireLanes, WirePiece, WireSchedule, WireTask,
    WireTuning,
};
use es_core::schedule::{CommPlacement, Schedule, TaskPlacement};
use es_core::{BbsaScheduler, ListConfig, ListScheduler, ProbeParallelism, Scheduler, Tuning};
use es_linksched::{Flow, Piece};
use es_net::{Hop, LinkId, NodeId, ProcId};
use es_workload::{InstanceConfig, Setting};

impl AlgoId {
    /// Build the scheduler this id names, with `tuning` applied to
    /// the slotted list schedulers (BBSA's fluid model has no slotted
    /// tuning surface; the argument is ignored there).
    pub fn build(self, tuning: Tuning) -> Box<dyn Scheduler + Send + Sync> {
        let with = |mut cfg: ListConfig| {
            cfg.tuning = tuning;
            Box::new(ListScheduler::with_config(cfg)) as Box<dyn Scheduler + Send + Sync>
        };
        match self {
            AlgoId::BaStatic => with(ListConfig::ba_static()),
            AlgoId::Ba => with(ListConfig::ba()),
            AlgoId::Oihsa => with(ListConfig::oihsa()),
            AlgoId::OihsaProbing => with(ListConfig::oihsa_probing()),
            AlgoId::Bbsa => Box::new(BbsaScheduler::new()),
        }
    }
}

impl WireTuning {
    /// The default tuning of this build, in wire form.
    pub fn current_default() -> Self {
        Self::from_tuning(Tuning::default())
    }

    /// Wire form of a [`Tuning`].
    pub fn from_tuning(t: Tuning) -> Self {
        Self {
            route_cache: t.route_cache,
            indexed_gaps: t.indexed_gaps,
            snapshot_restore: t.snapshot_restore,
            lanes: match t.parallel_probe {
                ProbeParallelism::Sequential => WireLanes::Sequential,
                ProbeParallelism::Auto => WireLanes::Auto,
                ProbeParallelism::Workers(n) => {
                    WireLanes::Workers(u16::try_from(n.min(u16::MAX as usize)).expect("clamped"))
                }
            },
        }
    }

    /// The [`Tuning`] this wire form names.
    pub fn to_tuning(self) -> Tuning {
        Tuning {
            route_cache: self.route_cache,
            indexed_gaps: self.indexed_gaps,
            snapshot_restore: self.snapshot_restore,
            parallel_probe: match self.lanes {
                WireLanes::Sequential => ProbeParallelism::Sequential,
                WireLanes::Auto => ProbeParallelism::Auto,
                WireLanes::Workers(n) => ProbeParallelism::Workers(n as usize),
            },
        }
    }
}

impl WireInstance {
    /// Wire form of an [`InstanceConfig`].
    pub fn from_config(cfg: &InstanceConfig) -> Self {
        Self {
            heterogeneous: matches!(cfg.setting, Setting::Heterogeneous),
            processors: u32::try_from(cfg.processors).expect("processor count fits u32"),
            ccr: cfg.ccr,
            tasks: cfg
                .tasks
                .map(|t| u32::try_from(t).expect("task count fits u32")),
            seed: cfg.seed,
        }
    }

    /// The generator coordinates this wire form names.
    pub fn to_config(self) -> InstanceConfig {
        InstanceConfig {
            setting: if self.heterogeneous {
                Setting::Heterogeneous
            } else {
                Setting::Homogeneous
            },
            processors: self.processors as usize,
            ccr: self.ccr,
            tasks: self.tasks.map(|t| t as usize),
            seed: self.seed,
        }
    }
}

fn hop_to_wire(h: &Hop) -> WireHop {
    WireHop {
        link: h.link.0,
        from: h.from.0,
        to: h.to.0,
    }
}

fn hop_from_wire(h: WireHop) -> Hop {
    Hop {
        link: LinkId(h.link),
        from: NodeId(h.from),
        to: NodeId(h.to),
    }
}

/// Resolve a wire algorithm name to the `&'static str` the workspace
/// schedulers use, so a decoded [`Schedule`] carries the same literal
/// a locally computed one would — without leaking per-decode.
fn static_algorithm_name(name: &str) -> Result<&'static str, WireError> {
    const KNOWN: [&str; 7] = [
        "BA",
        "BA-static",
        "OIHSA",
        "OIHSA-probe",
        "BBSA",
        "BBSA-probe",
        "IDEAL",
    ];
    KNOWN
        .into_iter()
        .find(|k| *k == name)
        .ok_or_else(|| WireError::BadValue {
            what: "schedule.algorithm",
            detail: format!("unknown algorithm name `{name}`"),
        })
}

impl WireSchedule {
    /// Wire form of a [`Schedule`], floats bit-exact.
    pub fn from_schedule(s: &Schedule) -> Self {
        let tasks = s
            .tasks
            .iter()
            .map(|t| WireTask {
                proc: t.proc.0,
                start: t.start,
                finish: t.finish,
            })
            .collect();
        let comms = s
            .comms
            .iter()
            .map(|c| match c {
                CommPlacement::Local => WireComm::Local,
                CommPlacement::Slotted { route, times } => WireComm::Slotted {
                    route: route.iter().map(hop_to_wire).collect(),
                    times: times.clone(),
                },
                CommPlacement::Fluid { route, flows } => WireComm::Fluid {
                    route: route.iter().map(hop_to_wire).collect(),
                    flows: flows
                        .iter()
                        .map(|f| {
                            f.pieces
                                .iter()
                                .map(|p| WirePiece {
                                    start: p.start,
                                    end: p.end,
                                    rate: p.rate,
                                })
                                .collect()
                        })
                        .collect(),
                },
                CommPlacement::Ideal { delay, arrival } => WireComm::Ideal {
                    delay: *delay,
                    arrival: *arrival,
                },
            })
            .collect();
        Self {
            algorithm: s.algorithm.to_string(),
            makespan: s.makespan,
            tasks,
            comms,
        }
    }

    /// Reconstruct the [`Schedule`] this wire form names. Fails only
    /// when the algorithm name is not one of the workspace's known
    /// scheduler/report names.
    pub fn to_schedule(&self) -> Result<Schedule, WireError> {
        let algorithm = static_algorithm_name(&self.algorithm)?;
        let tasks = self
            .tasks
            .iter()
            .map(|t| TaskPlacement {
                proc: ProcId(t.proc),
                start: t.start,
                finish: t.finish,
            })
            .collect();
        let comms = self
            .comms
            .iter()
            .map(|c| match c {
                WireComm::Local => CommPlacement::Local,
                WireComm::Slotted { route, times } => CommPlacement::Slotted {
                    route: route.iter().copied().map(hop_from_wire).collect(),
                    times: times.clone(),
                },
                WireComm::Fluid { route, flows } => CommPlacement::Fluid {
                    route: route.iter().copied().map(hop_from_wire).collect(),
                    flows: flows
                        .iter()
                        .map(|pieces| Flow {
                            pieces: pieces
                                .iter()
                                .map(|p| Piece {
                                    start: p.start,
                                    end: p.end,
                                    rate: p.rate,
                                })
                                .collect(),
                        })
                        .collect(),
                },
                WireComm::Ideal { delay, arrival } => CommPlacement::Ideal {
                    delay: *delay,
                    arrival: *arrival,
                },
            })
            .collect();
        Ok(Schedule {
            algorithm,
            tasks,
            comms,
            makespan: self.makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_workload::generate;

    fn sample_config() -> InstanceConfig {
        InstanceConfig::paper(Setting::Heterogeneous, 6, 2.0, 7).with_tasks(30)
    }

    #[test]
    fn instance_config_roundtrips() {
        let cfg = sample_config();
        assert_eq!(WireInstance::from_config(&cfg).to_config(), cfg);
        let hom = InstanceConfig::paper(Setting::Homogeneous, 4, 0.5, 1);
        assert_eq!(WireInstance::from_config(&hom).to_config(), hom);
    }

    #[test]
    fn tuning_roundtrips() {
        for t in [
            Tuning::optimized(),
            Tuning::reference(),
            Tuning {
                route_cache: true,
                indexed_gaps: false,
                parallel_probe: ProbeParallelism::Workers(3),
                snapshot_restore: true,
            },
        ] {
            assert_eq!(WireTuning::from_tuning(t).to_tuning(), t);
        }
    }

    #[test]
    fn real_schedules_roundtrip_bitwise() {
        let inst = generate(&sample_config());
        for algo in AlgoId::ALL {
            let sched = algo
                .build(Tuning::default())
                .schedule(&inst.dag, &inst.topo)
                .expect("connected WAN");
            let wire = WireSchedule::from_schedule(&sched);
            let back = wire.to_schedule().expect("known algorithm");
            assert_eq!(back.algorithm, sched.algorithm);
            assert_eq!(back.makespan.to_bits(), sched.makespan.to_bits());
            assert_eq!(back.tasks.len(), sched.tasks.len());
            for (a, b) in back.tasks.iter().zip(&sched.tasks) {
                assert_eq!(a.proc, b.proc);
                assert_eq!(a.start.to_bits(), b.start.to_bits());
                assert_eq!(a.finish.to_bits(), b.finish.to_bits());
            }
            assert_eq!(back.comms, sched.comms);
            // And the encoded byte strings are stable across the trip.
            let re = WireSchedule::from_schedule(&back);
            assert_eq!(re, wire);
        }
    }

    #[test]
    fn unknown_algorithm_name_is_rejected() {
        let w = WireSchedule {
            algorithm: "QUANTUM-2000".into(),
            makespan: 0.0,
            tasks: vec![],
            comms: vec![],
        };
        assert!(matches!(
            w.to_schedule(),
            Err(WireError::BadValue {
                what: "schedule.algorithm",
                ..
            })
        ));
    }

    #[test]
    fn builders_name_their_algorithms() {
        let inst = generate(&sample_config());
        let s = AlgoId::Bbsa
            .build(Tuning::default())
            .schedule(&inst.dag, &inst.topo)
            .unwrap();
        assert_eq!(s.algorithm, "BBSA");
        let s = AlgoId::BaStatic
            .build(Tuning::reference())
            .schedule(&inst.dag, &inst.topo)
            .unwrap();
        assert_eq!(s.algorithm, "BA-static");
    }
}
