//! es-wire-v1 frames: the request/reply vocabulary of the es-serve
//! driver, its workers, and its clients.
//!
//! A stream begins with an 8-byte preamble — [`MAGIC`] plus the
//! little-endian [`PROTOCOL_VERSION`] — written by whichever side
//! speaks first on that direction. Every subsequent frame is a
//! 4-byte little-endian payload length followed by the payload; the
//! payload's first byte is the frame tag. Length prefixes above
//! [`MAX_FRAME_LEN`] are rejected before allocation.

use crate::codec::{ByteReader, ByteWriter, WireError, MAGIC, MAX_FRAME_LEN, PROTOCOL_VERSION};
use std::io::{Read, Write};

/// Which scheduling algorithm a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoId {
    /// The paper's contention-blind BA baseline (`ListScheduler::ba_static`).
    BaStatic,
    /// Sinnen's probing BA (`ListScheduler::ba`).
    Ba,
    /// The paper's OIHSA (`ListScheduler::oihsa`).
    Oihsa,
    /// OIHSA with the earliest-finish probe (`ListScheduler::oihsa_probing`).
    OihsaProbing,
    /// The paper's BBSA fluid-bandwidth scheduler (`BbsaScheduler::new`).
    Bbsa,
}

impl AlgoId {
    /// All request-able algorithms, in tag order.
    pub const ALL: [AlgoId; 5] = [
        AlgoId::BaStatic,
        AlgoId::Ba,
        AlgoId::Oihsa,
        AlgoId::OihsaProbing,
        AlgoId::Bbsa,
    ];

    fn tag(self) -> u8 {
        match self {
            AlgoId::BaStatic => 0,
            AlgoId::Ba => 1,
            AlgoId::Oihsa => 2,
            AlgoId::OihsaProbing => 3,
            AlgoId::Bbsa => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => AlgoId::BaStatic,
            1 => AlgoId::Ba,
            2 => AlgoId::Oihsa,
            3 => AlgoId::OihsaProbing,
            4 => AlgoId::Bbsa,
            _ => {
                return Err(WireError::UnknownEnumTag {
                    what: "AlgoId",
                    tag,
                })
            }
        })
    }

    /// The algorithm's canonical CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            AlgoId::BaStatic => "ba-static",
            AlgoId::Ba => "ba",
            AlgoId::Oihsa => "oihsa",
            AlgoId::OihsaProbing => "oihsa-probe",
            AlgoId::Bbsa => "bbsa",
        }
    }

    /// Parse a CLI name (the inverse of [`AlgoId::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        AlgoId::ALL.into_iter().find(|a| a.name() == s)
    }
}

/// Probe-parallelism request, mirroring `es_core::ProbeParallelism`
/// without forcing a lane count into the wire format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireLanes {
    /// Sequential mutate-and-rollback probing.
    Sequential,
    /// Resolve lanes on the worker (`ES_THREADS` / CPU count).
    Auto,
    /// Exactly this many lanes.
    Workers(u16),
}

/// Performance tuning travelling with a request. Bitwise-neutral by
/// the PR 4/5 differential oracles, so any mix of tunings across the
/// fleet still satisfies the chaos invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireTuning {
    /// Enable the §10 route/probe cache.
    pub route_cache: bool,
    /// Enable the indexed free-gap search.
    pub indexed_gaps: bool,
    /// Enable the §16 column-snapshot checkpoint/restore.
    pub snapshot_restore: bool,
    /// Probe parallelism.
    pub lanes: WireLanes,
}

impl WireTuning {
    fn put(self, w: &mut ByteWriter) {
        w.put_bool(self.route_cache);
        w.put_bool(self.indexed_gaps);
        w.put_bool(self.snapshot_restore);
        match self.lanes {
            WireLanes::Sequential => w.put_u8(0),
            WireLanes::Auto => w.put_u8(1),
            WireLanes::Workers(n) => {
                w.put_u8(2);
                w.put_u16(n);
            }
        }
    }

    fn get(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let route_cache = r.get_bool("tuning.route_cache")?;
        let indexed_gaps = r.get_bool("tuning.indexed_gaps")?;
        let snapshot_restore = r.get_bool("tuning.snapshot_restore")?;
        let lanes = match r.get_u8()? {
            0 => WireLanes::Sequential,
            1 => WireLanes::Auto,
            2 => WireLanes::Workers(r.get_u16()?),
            tag => {
                return Err(WireError::UnknownEnumTag {
                    what: "WireLanes",
                    tag,
                })
            }
        };
        Ok(Self {
            route_cache,
            indexed_gaps,
            snapshot_restore,
            lanes,
        })
    }
}

/// A workload instance in spec form: the deterministic generator
/// coordinates, not the expanded DAG/topology. Workers regenerate the
/// instance with `es_workload::generate`, which is seeded and
/// bit-reproducible — this is what keeps request frames tens of bytes
/// instead of megabytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireInstance {
    /// 0 = homogeneous speeds, 1 = heterogeneous (`U(1,10)`).
    pub heterogeneous: bool,
    /// Processor count.
    pub processors: u32,
    /// Target communication-to-computation ratio.
    pub ccr: f64,
    /// Fixed task count; `None` draws the paper's `U(40, 1000)`.
    pub tasks: Option<u32>,
    /// Instance seed.
    pub seed: u64,
}

impl WireInstance {
    fn put(self, w: &mut ByteWriter) {
        w.put_bool(self.heterogeneous);
        w.put_u32(self.processors);
        w.put_f64(self.ccr);
        match self.tasks {
            None => w.put_u8(0),
            Some(t) => {
                w.put_u8(1);
                w.put_u32(t);
            }
        }
        w.put_u64(self.seed);
    }

    fn get(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let heterogeneous = r.get_bool("instance.heterogeneous")?;
        let processors = r.get_u32()?;
        let ccr = r.get_f64()?;
        let tasks = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u32()?),
            tag => {
                return Err(WireError::UnknownEnumTag {
                    what: "instance.tasks option",
                    tag,
                })
            }
        };
        let seed = r.get_u64()?;
        Ok(Self {
            heterogeneous,
            processors,
            ccr,
            tasks,
            seed,
        })
    }
}

/// Optional fault-and-repair leg of a request: the worker replays the
/// schedule under a seeded PR 2 fault plan with hard failures and
/// returns the repaired schedule instead of the original.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireFault {
    /// Fault intensity in `[0, 1]`.
    pub intensity: f64,
    /// Kill one processor mid-horizon.
    pub kill_proc: bool,
    /// Kill one link mid-horizon.
    pub kill_link: bool,
    /// Fault-plan seed.
    pub seed: u64,
}

impl WireFault {
    fn put(self, w: &mut ByteWriter) {
        w.put_f64(self.intensity);
        w.put_bool(self.kill_proc);
        w.put_bool(self.kill_link);
        w.put_u64(self.seed);
    }

    fn get(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            intensity: r.get_f64()?,
            kill_proc: r.get_bool("fault.kill_proc")?,
            kill_link: r.get_bool("fault.kill_link")?,
            seed: r.get_u64()?,
        })
    }
}

/// One scheduling request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Caller-chosen id, echoed verbatim on every reply.
    pub id: u64,
    /// Per-request completion deadline in milliseconds; 0 means "use
    /// the driver's default".
    pub deadline_ms: u32,
    /// Owning tenant; the driver attributes shed decisions to it
    /// (`DriverStats::shed_by_tenant`). Purely accounting — admission
    /// never prioritises by tenant.
    pub tenant: u32,
    /// Algorithm to run.
    pub algo: AlgoId,
    /// Performance tuning (bitwise-neutral).
    pub tuning: WireTuning,
    /// The instance spec.
    pub instance: WireInstance,
    /// Optional fault-and-repair leg.
    pub fault: Option<WireFault>,
}

impl Request {
    fn put(&self, w: &mut ByteWriter) {
        w.put_u64(self.id);
        w.put_u32(self.deadline_ms);
        w.put_u32(self.tenant);
        w.put_u8(self.algo.tag());
        self.tuning.put(w);
        self.instance.put(w);
        match self.fault {
            None => w.put_u8(0),
            Some(f) => {
                w.put_u8(1);
                f.put(w);
            }
        }
    }

    fn get(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let id = r.get_u64()?;
        let deadline_ms = r.get_u32()?;
        let tenant = r.get_u32()?;
        let algo = AlgoId::from_tag(r.get_u8()?)?;
        let tuning = WireTuning::get(r)?;
        let instance = WireInstance::get(r)?;
        let fault = match r.get_u8()? {
            0 => None,
            1 => Some(WireFault::get(r)?),
            tag => {
                return Err(WireError::UnknownEnumTag {
                    what: "request.fault option",
                    tag,
                })
            }
        };
        Ok(Self {
            id,
            deadline_ms,
            tenant,
            algo,
            tuning,
            instance,
            fault,
        })
    }
}

/// One task placement (`TaskPlacement` mirror).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireTask {
    /// Processor id.
    pub proc: u32,
    /// Start time.
    pub start: f64,
    /// Finish time.
    pub finish: f64,
}

/// One route hop (`es_net::Hop` mirror).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireHop {
    /// Traversed link id.
    pub link: u32,
    /// Vertex the message leaves.
    pub from: u32,
    /// Vertex the message reaches.
    pub to: u32,
}

/// One constant-rate fluid piece (`es_linksched::bandwidth::Piece`
/// mirror).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WirePiece {
    /// Piece start time.
    pub start: f64,
    /// Piece end time.
    pub end: f64,
    /// Bandwidth fraction.
    pub rate: f64,
}

/// One communication placement (`CommPlacement` mirror).
#[derive(Clone, Debug, PartialEq)]
pub enum WireComm {
    /// Source and destination share a processor.
    Local,
    /// Exclusive per-link time slots.
    Slotted {
        /// The hops taken.
        route: Vec<WireHop>,
        /// Per-hop `(start, finish)` times.
        times: Vec<(f64, f64)>,
    },
    /// Fluid bandwidth shares.
    Fluid {
        /// The hops taken.
        route: Vec<WireHop>,
        /// Per-hop flows, each a piece list.
        flows: Vec<Vec<WirePiece>>,
    },
    /// Contention-free idealised transfer.
    Ideal {
        /// Modelled delay.
        delay: f64,
        /// Arrival time.
        arrival: f64,
    },
}

fn put_route(route: &[WireHop], w: &mut ByteWriter) {
    w.put_u32(u32::try_from(route.len()).expect("route below 4G hops"));
    for h in route {
        w.put_u32(h.link);
        w.put_u32(h.from);
        w.put_u32(h.to);
    }
}

fn get_route(r: &mut ByteReader<'_>) -> Result<Vec<WireHop>, WireError> {
    let n = r.get_len("comm.route", 12)?;
    let mut route = Vec::with_capacity(n);
    for _ in 0..n {
        route.push(WireHop {
            link: r.get_u32()?,
            from: r.get_u32()?,
            to: r.get_u32()?,
        });
    }
    Ok(route)
}

impl WireComm {
    fn put(&self, w: &mut ByteWriter) {
        match self {
            WireComm::Local => w.put_u8(0),
            WireComm::Slotted { route, times } => {
                w.put_u8(1);
                put_route(route, w);
                w.put_u32(u32::try_from(times.len()).expect("times below 4G"));
                for &(s, f) in times {
                    w.put_f64(s);
                    w.put_f64(f);
                }
            }
            WireComm::Fluid { route, flows } => {
                w.put_u8(2);
                put_route(route, w);
                w.put_u32(u32::try_from(flows.len()).expect("flows below 4G"));
                for flow in flows {
                    w.put_u32(u32::try_from(flow.len()).expect("pieces below 4G"));
                    for p in flow {
                        w.put_f64(p.start);
                        w.put_f64(p.end);
                        w.put_f64(p.rate);
                    }
                }
            }
            WireComm::Ideal { delay, arrival } => {
                w.put_u8(3);
                w.put_f64(*delay);
                w.put_f64(*arrival);
            }
        }
    }

    fn get(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => WireComm::Local,
            1 => {
                let route = get_route(r)?;
                let n = r.get_len("comm.times", 16)?;
                let mut times = Vec::with_capacity(n);
                for _ in 0..n {
                    times.push((r.get_f64()?, r.get_f64()?));
                }
                WireComm::Slotted { route, times }
            }
            2 => {
                let route = get_route(r)?;
                let n = r.get_len("comm.flows", 4)?;
                let mut flows = Vec::with_capacity(n);
                for _ in 0..n {
                    let m = r.get_len("comm.flow.pieces", 24)?;
                    let mut pieces = Vec::with_capacity(m);
                    for _ in 0..m {
                        pieces.push(WirePiece {
                            start: r.get_f64()?,
                            end: r.get_f64()?,
                            rate: r.get_f64()?,
                        });
                    }
                    flows.push(pieces);
                }
                WireComm::Fluid { route, flows }
            }
            3 => WireComm::Ideal {
                delay: r.get_f64()?,
                arrival: r.get_f64()?,
            },
            tag => {
                return Err(WireError::UnknownEnumTag {
                    what: "WireComm",
                    tag,
                })
            }
        })
    }
}

/// A complete schedule (`es_core::Schedule` mirror), floats bit-exact.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSchedule {
    /// Producing algorithm's report name.
    pub algorithm: String,
    /// Schedule makespan.
    pub makespan: f64,
    /// Per-task placements.
    pub tasks: Vec<WireTask>,
    /// Per-edge communication placements.
    pub comms: Vec<WireComm>,
}

impl WireSchedule {
    fn put(&self, w: &mut ByteWriter) {
        w.put_str(&self.algorithm);
        w.put_f64(self.makespan);
        w.put_u32(u32::try_from(self.tasks.len()).expect("tasks below 4G"));
        for t in &self.tasks {
            w.put_u32(t.proc);
            w.put_f64(t.start);
            w.put_f64(t.finish);
        }
        w.put_u32(u32::try_from(self.comms.len()).expect("comms below 4G"));
        for c in &self.comms {
            c.put(w);
        }
    }

    fn get(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let algorithm = r.get_str("schedule.algorithm")?;
        let makespan = r.get_f64()?;
        let n = r.get_len("schedule.tasks", 20)?;
        let mut tasks = Vec::with_capacity(n);
        for _ in 0..n {
            tasks.push(WireTask {
                proc: r.get_u32()?,
                start: r.get_f64()?,
                finish: r.get_f64()?,
            });
        }
        let n = r.get_len("schedule.comms", 1)?;
        let mut comms = Vec::with_capacity(n);
        for _ in 0..n {
            comms.push(WireComm::get(r)?);
        }
        Ok(Self {
            algorithm,
            makespan,
            tasks,
            comms,
        })
    }
}

/// A successful scheduling reply.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleReply {
    /// The request id this answers.
    pub id: u64,
    /// How many dispatch attempts the request took (1 = no retries).
    pub attempts: u32,
    /// The schedule, floats bit-exact.
    pub schedule: WireSchedule,
}

/// Why a request was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The per-request deadline expired before completion.
    DeadlineExceeded,
    /// The retry budget was exhausted (workers kept dying).
    RetriesExhausted {
        /// Human-readable context.
        detail: String,
    },
    /// The scheduler itself failed (e.g. no route).
    Scheduler {
        /// The scheduler error, rendered.
        detail: String,
    },
    /// The request was malformed or out of accepted bounds.
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The driver is shutting down and no longer admits work.
    ShuttingDown,
    /// The worker's scheduling code panicked on this request.
    WorkerPanic {
        /// The panic message.
        detail: String,
    },
}

impl RejectReason {
    fn put(&self, w: &mut ByteWriter) {
        match self {
            RejectReason::DeadlineExceeded => w.put_u8(0),
            RejectReason::RetriesExhausted { detail } => {
                w.put_u8(1);
                w.put_str(detail);
            }
            RejectReason::Scheduler { detail } => {
                w.put_u8(2);
                w.put_str(detail);
            }
            RejectReason::BadRequest { detail } => {
                w.put_u8(3);
                w.put_str(detail);
            }
            RejectReason::ShuttingDown => w.put_u8(4),
            RejectReason::WorkerPanic { detail } => {
                w.put_u8(5);
                w.put_str(detail);
            }
        }
    }

    fn get(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => RejectReason::DeadlineExceeded,
            1 => RejectReason::RetriesExhausted {
                detail: r.get_str("reject.detail")?,
            },
            2 => RejectReason::Scheduler {
                detail: r.get_str("reject.detail")?,
            },
            3 => RejectReason::BadRequest {
                detail: r.get_str("reject.detail")?,
            },
            4 => RejectReason::ShuttingDown,
            5 => RejectReason::WorkerPanic {
                detail: r.get_str("reject.detail")?,
            },
            tag => {
                return Err(WireError::UnknownEnumTag {
                    what: "RejectReason",
                    tag,
                })
            }
        })
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            RejectReason::RetriesExhausted { detail } => write!(f, "retries exhausted: {detail}"),
            RejectReason::Scheduler { detail } => write!(f, "scheduler error: {detail}"),
            RejectReason::BadRequest { detail } => write!(f, "bad request: {detail}"),
            RejectReason::ShuttingDown => write!(f, "driver shutting down"),
            RejectReason::WorkerPanic { detail } => write!(f, "worker panic: {detail}"),
        }
    }
}

/// Driver-side service counters, queryable over the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests answered with a schedule.
    pub completed: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    /// Requests rejected for a blown deadline.
    pub deadline_rejected: u64,
    /// Requests rejected for any other reason.
    pub rejected: u64,
    /// Re-dispatches of work lost to a worker death or stall.
    pub retries: u64,
    /// Workers the supervisor killed (stall/heartbeat timeouts).
    pub worker_kills: u64,
    /// Workers respawned after death.
    pub worker_respawns: u64,
    /// Chaos-injected worker kills.
    pub chaos_kills: u64,
    /// Chaos-injected worker stalls.
    pub chaos_stalls: u64,
    /// Current queue depth.
    pub queue_len: u32,
    /// Currently live workers.
    pub workers_alive: u32,
    /// Requests currently dispatched and unanswered.
    pub inflight: u32,
    /// Shed decisions attributed to the shed request's tenant,
    /// ascending tenant id (length-prefixed on the wire). The counts
    /// sum to `shed`.
    pub shed_by_tenant: Vec<(u32, u64)>,
}

impl DriverStats {
    /// Attribute one shed decision to `tenant` (keeps the list sorted
    /// by tenant id).
    pub fn count_shed(&mut self, tenant: u32) {
        self.shed += 1;
        match self.shed_by_tenant.binary_search_by_key(&tenant, |e| e.0) {
            Ok(i) => self.shed_by_tenant[i].1 += 1,
            Err(i) => self.shed_by_tenant.insert(i, (tenant, 1)),
        }
    }

    fn put(&self, w: &mut ByteWriter) {
        for v in [
            self.admitted,
            self.completed,
            self.shed,
            self.deadline_rejected,
            self.rejected,
            self.retries,
            self.worker_kills,
            self.worker_respawns,
            self.chaos_kills,
            self.chaos_stalls,
        ] {
            w.put_u64(v);
        }
        w.put_u32(self.queue_len);
        w.put_u32(self.workers_alive);
        w.put_u32(self.inflight);
        w.put_u32(u32::try_from(self.shed_by_tenant.len()).expect("tenants below 4G"));
        for &(tenant, count) in &self.shed_by_tenant {
            w.put_u32(tenant);
            w.put_u64(count);
        }
    }

    fn get(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            admitted: r.get_u64()?,
            completed: r.get_u64()?,
            shed: r.get_u64()?,
            deadline_rejected: r.get_u64()?,
            rejected: r.get_u64()?,
            retries: r.get_u64()?,
            worker_kills: r.get_u64()?,
            worker_respawns: r.get_u64()?,
            chaos_kills: r.get_u64()?,
            chaos_stalls: r.get_u64()?,
            queue_len: r.get_u32()?,
            workers_alive: r.get_u32()?,
            inflight: r.get_u32()?,
            shed_by_tenant: {
                let n = r.get_len("stats.shed_by_tenant", 12)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push((r.get_u32()?, r.get_u64()?));
                }
                v
            },
        })
    }
}

/// Every es-wire-v1 frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → driver, driver → worker: schedule this instance.
    Request(Request),
    /// Worker → driver, driver → client: the finished schedule.
    Schedule(ScheduleReply),
    /// Driver → client: request shed at admission (queue full).
    Overloaded {
        /// The request id that was shed.
        id: u64,
        /// Queue depth at the shed decision.
        queue_len: u32,
    },
    /// Driver → client or worker → driver: request failed terminally.
    Reject {
        /// The request id this answers.
        id: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Driver → worker heartbeat probe.
    Ping {
        /// Echoed in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Worker → driver heartbeat answer.
    Pong {
        /// The probe's nonce.
        nonce: u64,
    },
    /// Driver → worker chaos directive: sleep this long before
    /// reading the next frame (simulates a wedged worker; the
    /// supervisor must detect it via missed heartbeats).
    Stall {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// Orderly-shutdown request (client → driver or driver → worker).
    Shutdown,
    /// A validation report in es-diag-v1 JSON, attached to a request.
    Diagnostics {
        /// The request id the report belongs to.
        id: u64,
        /// `es_core::Report::to_json` output.
        report_json: String,
    },
    /// Client → driver: ask for the service counters.
    StatsRequest,
    /// Driver → client: the service counters.
    Stats(DriverStats),
}

impl Frame {
    /// Encode to one payload (tag byte included, length prefix not).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Frame::Request(req) => {
                w.put_u8(1);
                req.put(&mut w);
            }
            Frame::Schedule(rep) => {
                w.put_u8(2);
                w.put_u64(rep.id);
                w.put_u32(rep.attempts);
                rep.schedule.put(&mut w);
            }
            Frame::Overloaded { id, queue_len } => {
                w.put_u8(3);
                w.put_u64(*id);
                w.put_u32(*queue_len);
            }
            Frame::Reject { id, reason } => {
                w.put_u8(4);
                w.put_u64(*id);
                reason.put(&mut w);
            }
            Frame::Ping { nonce } => {
                w.put_u8(5);
                w.put_u64(*nonce);
            }
            Frame::Pong { nonce } => {
                w.put_u8(6);
                w.put_u64(*nonce);
            }
            Frame::Stall { millis } => {
                w.put_u8(7);
                w.put_u64(*millis);
            }
            Frame::Shutdown => w.put_u8(8),
            Frame::Diagnostics { id, report_json } => {
                w.put_u8(9);
                w.put_u64(*id);
                w.put_str(report_json);
            }
            Frame::StatsRequest => w.put_u8(10),
            Frame::Stats(s) => {
                w.put_u8(11);
                s.put(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Decode one payload. Strict: unknown tags, short payloads and
    /// trailing bytes are all typed errors.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        if payload.is_empty() {
            return Err(WireError::EmptyFrame);
        }
        let mut r = ByteReader::new(&payload[1..]);
        let frame = match payload[0] {
            1 => Frame::Request(Request::get(&mut r)?),
            2 => Frame::Schedule(ScheduleReply {
                id: r.get_u64()?,
                attempts: r.get_u32()?,
                schedule: WireSchedule::get(&mut r)?,
            }),
            3 => Frame::Overloaded {
                id: r.get_u64()?,
                queue_len: r.get_u32()?,
            },
            4 => Frame::Reject {
                id: r.get_u64()?,
                reason: RejectReason::get(&mut r)?,
            },
            5 => Frame::Ping {
                nonce: r.get_u64()?,
            },
            6 => Frame::Pong {
                nonce: r.get_u64()?,
            },
            7 => Frame::Stall {
                millis: r.get_u64()?,
            },
            8 => Frame::Shutdown,
            9 => Frame::Diagnostics {
                id: r.get_u64()?,
                report_json: r.get_str("diagnostics.report_json")?,
            },
            10 => Frame::StatsRequest,
            11 => Frame::Stats(DriverStats::get(&mut r)?),
            tag => return Err(WireError::UnknownFrameTag(tag)),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Write the stream preamble: [`MAGIC`] then the protocol version.
pub fn write_preamble<W: Write>(w: &mut W) -> Result<(), WireError> {
    w.write_all(&MAGIC)?;
    w.write_all(&PROTOCOL_VERSION.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read and validate the stream preamble.
pub fn read_preamble<R: Read>(r: &mut R) -> Result<(), WireError> {
    let mut magic = [0u8; 6];
    read_exact_wire(r, &mut magic)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let mut v = [0u8; 2];
    read_exact_wire(r, &mut v)?;
    let version = u16::from_le_bytes(v);
    if version != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Write one frame: 4-byte little-endian payload length, then the
/// payload. Flushes, so a frame is visible to the peer as soon as the
/// call returns.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    let payload = frame.encode();
    debug_assert!(payload.len() <= MAX_FRAME_LEN, "oversized frame produced");
    let len = u32::try_from(payload.len()).expect("frame below 4 GiB");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. `Ok(None)` on a clean EOF at a frame boundary;
/// EOF anywhere inside a frame is [`WireError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    let mut len_bytes = [0u8; 4];
    match r.read(&mut len_bytes)? {
        0 => return Ok(None),
        n => read_exact_wire(r, &mut len_bytes[n..])?,
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    let mut payload = vec![0u8; len];
    read_exact_wire(r, &mut payload)?;
    Frame::decode(&payload).map(Some)
}

/// `read_exact` with EOF mapped to [`WireError::Truncated`] (a peer
/// dying mid-frame is a protocol-level truncation, not a generic I/O
/// failure).
fn read_exact_wire<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    need: buf.len() - filled,
                    have: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            id: 42,
            deadline_ms: 5000,
            tenant: 7,
            algo: AlgoId::Oihsa,
            tuning: WireTuning {
                route_cache: true,
                indexed_gaps: true,
                snapshot_restore: true,
                lanes: WireLanes::Workers(2),
            },
            instance: WireInstance {
                heterogeneous: true,
                processors: 8,
                ccr: 2.5,
                tasks: Some(60),
                seed: 0xDEAD_BEEF,
            },
            fault: Some(WireFault {
                intensity: 0.4,
                kill_proc: true,
                kill_link: false,
                seed: 99,
            }),
        }
    }

    fn roundtrip(frame: &Frame) {
        let payload = frame.encode();
        let back = Frame::decode(&payload).expect("decodes");
        assert_eq!(&back, frame);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(&Frame::Request(sample_request()));
        roundtrip(&Frame::Schedule(ScheduleReply {
            id: 7,
            attempts: 3,
            schedule: WireSchedule {
                algorithm: "OIHSA".into(),
                makespan: 123.456,
                tasks: vec![WireTask {
                    proc: 1,
                    start: 0.0,
                    finish: 2.5,
                }],
                comms: vec![
                    WireComm::Local,
                    WireComm::Slotted {
                        route: vec![WireHop {
                            link: 3,
                            from: 0,
                            to: 9,
                        }],
                        times: vec![(1.0, 2.0)],
                    },
                    WireComm::Fluid {
                        route: vec![WireHop {
                            link: 1,
                            from: 2,
                            to: 3,
                        }],
                        flows: vec![vec![WirePiece {
                            start: 0.5,
                            end: 1.5,
                            rate: 0.25,
                        }]],
                    },
                    WireComm::Ideal {
                        delay: 1.0,
                        arrival: 3.0,
                    },
                ],
            },
        }));
        roundtrip(&Frame::Overloaded {
            id: 5,
            queue_len: 64,
        });
        roundtrip(&Frame::Reject {
            id: 6,
            reason: RejectReason::RetriesExhausted {
                detail: "worker died 4 times".into(),
            },
        });
        roundtrip(&Frame::Ping { nonce: 1 });
        roundtrip(&Frame::Pong { nonce: 1 });
        roundtrip(&Frame::Stall { millis: 250 });
        roundtrip(&Frame::Shutdown);
        roundtrip(&Frame::Diagnostics {
            id: 9,
            report_json: "{\"schema\":\"es-diag-v1\"}".into(),
        });
        roundtrip(&Frame::StatsRequest);
        roundtrip(&Frame::Stats(DriverStats {
            admitted: 10,
            completed: 9,
            shed: 3,
            shed_by_tenant: vec![(0, 1), (4, 2)],
            ..DriverStats::default()
        }));
    }

    #[test]
    fn stream_roundtrip_with_preamble() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        write_frame(&mut buf, &Frame::Ping { nonce: 3 }).unwrap();
        write_frame(&mut buf, &Frame::Shutdown).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        read_preamble(&mut cur).unwrap();
        assert_eq!(
            read_frame(&mut cur).unwrap(),
            Some(Frame::Ping { nonce: 3 })
        );
        assert_eq!(read_frame(&mut cur).unwrap(), Some(Frame::Shutdown));
        assert_eq!(read_frame(&mut cur).unwrap(), None);
    }

    #[test]
    fn eof_mid_frame_is_truncated_not_none() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Request(sample_request())).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cur = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let mut cur = std::io::Cursor::new(b"NOTWIRE\x01".to_vec());
        assert!(matches!(
            read_preamble(&mut cur),
            Err(WireError::BadMagic(_))
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&9u16.to_le_bytes());
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(
            read_preamble(&mut cur),
            Err(WireError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn unknown_frame_tag_is_typed() {
        assert_eq!(Frame::decode(&[200]), Err(WireError::UnknownFrameTag(200)));
        assert_eq!(Frame::decode(&[]), Err(WireError::EmptyFrame));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Frame::Shutdown.encode();
        payload.push(0);
        assert_eq!(
            Frame::decode(&payload),
            Err(WireError::TrailingBytes { count: 1 })
        );
    }

    #[test]
    fn algo_names_roundtrip() {
        for a in AlgoId::ALL {
            assert_eq!(AlgoId::parse(a.name()), Some(a));
        }
        assert_eq!(AlgoId::parse("quantum"), None);
    }
}
