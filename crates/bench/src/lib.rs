//! Shared fixtures for the Criterion benchmarks.
//!
//! Each figure bench regenerates one point grid of the corresponding
//! paper figure at a bench-friendly scale (fixed task count, reduced
//! repetitions) and *prints the same improvement rows the paper plots*
//! before measuring the runtime of the cell computation. The CLI
//! (`es-experiments fig1..fig4`) runs the same machinery at full paper
//! scale.

use es_sim::{CellSpec, FigureParams};
use es_workload::Setting;

/// Bench-scale figure parameters: the paper's axes at reduced
/// repetition count and a fixed task count so a bench run stays in
/// seconds, not hours.
pub fn bench_params(procs: Vec<usize>, ccrs: Vec<f64>) -> FigureParams {
    FigureParams {
        reps: 2,
        tasks: Some(80),
        base_seed: 20060810,
        procs,
        ccrs,
        threads: 1, // Criterion owns the parallelism budget
        validate: false,
        strong_baseline: false,
        progress: false,
    }
}

/// A single bench cell.
pub fn bench_cell(setting: Setting, processors: usize, ccr: f64) -> CellSpec {
    CellSpec {
        setting,
        processors,
        ccr,
        reps: 1,
        base_seed: 20060810,
        tasks: Some(80),
        validate: false,
        strong_baseline: false,
    }
}

/// The reduced CCR axis used by the figure benches (endpoints + knees
/// of the paper's 19-value sweep).
pub fn bench_ccrs() -> Vec<f64> {
    vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0]
}

/// The reduced processor axis used by the figure benches.
pub fn bench_procs() -> Vec<usize> {
    vec![2, 8, 32]
}
