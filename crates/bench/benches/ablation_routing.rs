//! Ablation A1 — §4.3 routing: BFS minimal vs modified Dijkstra, all
//! other choices held at the BA baseline. Prints the mean makespans
//! (the quality signal) and measures each variant's scheduling runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use es_core::config::{ListConfig, Routing};
use es_core::{ListScheduler, Scheduler};
use es_workload::{cell_seed, generate, InstanceConfig, Setting};
use std::hint::black_box;

fn variants() -> Vec<(&'static str, ListConfig)> {
    vec![
        ("bfs", ListConfig::ba_static()),
        (
            "modified_dijkstra",
            ListConfig {
                name: "ablate-routing",
                routing: Routing::ModifiedDijkstra,
                ..ListConfig::ba_static()
            },
        ),
    ]
}

fn instances() -> Vec<es_workload::Instance> {
    (0..4)
        .map(|rep| {
            let seed = cell_seed(20060810, Setting::Heterogeneous, 32, 5.0, rep);
            generate(&InstanceConfig::paper(Setting::Heterogeneous, 32, 5.0, seed).with_tasks(80))
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let insts = instances();
    eprintln!("\n# Ablation: routing (hetero, 32 procs, CCR 5, mean of 4 instances)");
    for (name, cfg) in variants() {
        let mean: f64 = insts
            .iter()
            .map(|i| {
                ListScheduler::with_config(cfg)
                    .schedule(&i.dag, &i.topo)
                    .unwrap()
                    .makespan
            })
            .sum::<f64>()
            / insts.len() as f64;
        eprintln!("  {name:<18} mean makespan {mean:>12.1}");
    }

    let mut g = c.benchmark_group("ablation_routing");
    for (name, cfg) in variants() {
        let inst = &insts[0];
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    ListScheduler::with_config(cfg)
                        .schedule(black_box(&inst.dag), black_box(&inst.topo))
                        .unwrap()
                        .makespan,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
