//! Ablation A3 — §4.2 edge priority: arrival order vs cost-descending
//! vs cost-ascending (the anti-heuristic), everything else held fixed.

use criterion::{criterion_group, criterion_main, Criterion};
use es_core::config::{EdgeOrder, ListConfig};
use es_core::{ListScheduler, Scheduler};
use es_workload::{cell_seed, generate, InstanceConfig, Setting};
use std::hint::black_box;

fn variants() -> Vec<(&'static str, ListConfig)> {
    let base = ListConfig::ba_static();
    vec![
        ("arrival", base),
        (
            "cost_desc",
            ListConfig {
                name: "ablate-order-desc",
                edge_order: EdgeOrder::CostDesc,
                ..base
            },
        ),
        (
            "cost_asc",
            ListConfig {
                name: "ablate-order-asc",
                edge_order: EdgeOrder::CostAsc,
                ..base
            },
        ),
    ]
}

fn instances() -> Vec<es_workload::Instance> {
    (0..4)
        .map(|rep| {
            let seed = cell_seed(20060810, Setting::Heterogeneous, 16, 5.0, rep);
            generate(&InstanceConfig::paper(Setting::Heterogeneous, 16, 5.0, seed).with_tasks(80))
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let insts = instances();
    eprintln!("\n# Ablation: edge priority (hetero, 16 procs, CCR 5, mean of 4 instances)");
    for (name, cfg) in variants() {
        let mean: f64 = insts
            .iter()
            .map(|i| {
                ListScheduler::with_config(cfg)
                    .schedule(&i.dag, &i.topo)
                    .unwrap()
                    .makespan
            })
            .sum::<f64>()
            / insts.len() as f64;
        eprintln!("  {name:<18} mean makespan {mean:>12.1}");
    }

    let mut g = c.benchmark_group("ablation_edge_priority");
    for (name, cfg) in variants() {
        let inst = &insts[0];
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    ListScheduler::with_config(cfg)
                        .schedule(black_box(&inst.dag), black_box(&inst.topo))
                        .unwrap()
                        .makespan,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
