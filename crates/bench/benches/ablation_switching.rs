//! Ablation A6 — model extensions: cut-through vs store-and-forward
//! switching, and the effect of the per-hop switch delay (§2.2's
//! invited extension). Cut-through with zero delay is the paper's
//! model; the other points show what the neglected effects cost.

use criterion::{criterion_group, criterion_main, Criterion};
use es_core::config::{ListConfig, Switching};
use es_core::{ListScheduler, Scheduler};
use es_net::gen::{random_switched_wan, WanConfig};
use es_workload::scale_to_ccr;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fixture(hop_delay: f64) -> (es_dag::TaskGraph, es_net::Topology) {
    // Same RNG stream as WanConfig-only generation, then override the
    // builder-level hop delay by regenerating through a builder is not
    // possible post-hoc — so generate per delay with the same seed.
    let mut rng = StdRng::seed_from_u64(20060810);
    let topo = {
        let t = random_switched_wan(&WanConfig::heterogeneous(16), &mut rng);
        let zero: f64 = 0.0;
        if hop_delay.to_bits() == zero.to_bits() {
            t
        } else {
            // Rebuild with the delay: easiest faithful path is a fresh
            // generation with identical seed, then a builder copy isn't
            // exposed — instead regenerate and set the delay through
            // the public builder by reconstructing the same topology.
            regenerate_with_delay(hop_delay)
        }
    };
    let base = es_dag::gen::structured::stencil_1d(10, 8, 100.0, 100.0);
    let dag = scale_to_ccr(&base, 2.0, topo.mean_proc_speed(), topo.mean_link_speed());
    (dag, topo)
}

/// Rebuild the seed-20060810 16-proc heterogeneous WAN with a hop delay.
fn regenerate_with_delay(delay: f64) -> es_net::Topology {
    let mut rng = StdRng::seed_from_u64(20060810);
    let reference = random_switched_wan(&WanConfig::heterogeneous(16), &mut rng);
    // Copy links/processors through a builder with the delay set.
    let mut b = es_net::Topology::builder();
    b.set_hop_delay(delay);
    for n in reference.node_ids() {
        match reference.node(n).kind {
            es_net::NodeKind::Processor(p) => {
                b.add_processor(reference.proc_speed(p));
            }
            es_net::NodeKind::Switch => {
                b.add_switch();
            }
        }
    }
    for l in reference.link_ids() {
        if let es_net::LinkConn::Directed { from, to } = reference.link(l).conn {
            b.add_directed_link(from, to, reference.link_speed(l));
        }
    }
    b.build().expect("copy of a valid topology")
}

fn bench(c: &mut Criterion) {
    eprintln!("\n# Ablation: switching model (hetero 16-proc WAN, stencil, CCR 2)");
    for (label, switching, delay) in [
        ("cut_through_d0", Switching::CutThrough, 0.0),
        ("store_forward_d0", Switching::StoreAndForward, 0.0),
        ("cut_through_d2", Switching::CutThrough, 2.0),
        ("cut_through_d10", Switching::CutThrough, 10.0),
    ] {
        let (dag, topo) = fixture(delay);
        let cfg = ListConfig {
            name: "ablate-switching",
            switching,
            ..ListConfig::oihsa()
        };
        let ms = ListScheduler::with_config(cfg)
            .schedule(&dag, &topo)
            .unwrap()
            .makespan;
        eprintln!("  {label:<18} makespan {ms:>10.1}");
    }

    let (dag, topo) = fixture(0.0);
    let mut g = c.benchmark_group("ablation_switching");
    for (label, switching) in [
        ("cut_through", Switching::CutThrough),
        ("store_forward", Switching::StoreAndForward),
    ] {
        let cfg = ListConfig {
            name: "ablate-switching",
            switching,
            ..ListConfig::oihsa()
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    ListScheduler::with_config(cfg)
                        .schedule(black_box(&dag), black_box(&topo))
                        .unwrap()
                        .makespan,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
