//! Figure 1 — homogeneous systems, improvement % vs CCR.
//!
//! Prints the figure's series at bench scale (the CLI reproduces it at
//! full paper scale), then measures the runtime of regenerating one
//! figure point (a full BA/OIHSA/BBSA cell).

use criterion::{criterion_group, criterion_main, Criterion};
use es_bench::{bench_ccrs, bench_cell, bench_params, bench_procs};
use es_sim::{fig1, run_cell};
use es_workload::Setting;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = fig1(&bench_params(bench_procs(), bench_ccrs())).to_table();
    eprintln!("\n{table}");

    let mut g = c.benchmark_group("fig1");
    for ccr in [0.5, 5.0] {
        let spec = bench_cell(Setting::Homogeneous, 8, ccr);
        g.bench_function(format!("cell_procs8_ccr{ccr}"), |b| {
            b.iter(|| black_box(run_cell(black_box(&spec))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
