//! Figure 3 — heterogeneous systems, improvement % vs CCR.

use criterion::{criterion_group, criterion_main, Criterion};
use es_bench::{bench_ccrs, bench_cell, bench_params, bench_procs};
use es_sim::{fig3, run_cell};
use es_workload::Setting;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = fig3(&bench_params(bench_procs(), bench_ccrs())).to_table();
    eprintln!("\n{table}");

    let mut g = c.benchmark_group("fig3");
    for ccr in [0.5, 5.0] {
        let spec = bench_cell(Setting::Heterogeneous, 8, ccr);
        g.bench_function(format!("cell_procs8_ccr{ccr}"), |b| {
            b.iter(|| black_box(run_cell(black_box(&spec))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
