//! Ablation A7 — task priority: the paper's bottom level (§2.1) vs top
//! level and bottom+top, holding the OIHSA machinery fixed.

use criterion::{criterion_group, criterion_main, Criterion};
use es_core::config::ListConfig;
use es_core::{ListScheduler, Scheduler};
use es_dag::Priority;
use es_workload::{cell_seed, generate, InstanceConfig, Setting};
use std::hint::black_box;

fn variants() -> Vec<(&'static str, ListConfig)> {
    let mk = |name, priority| ListConfig {
        name,
        priority,
        ..ListConfig::oihsa()
    };
    vec![
        ("bottom_level", mk("prio-bl", Priority::BottomLevel)),
        ("top_level", mk("prio-tl", Priority::TopLevel)),
        ("bottom_plus_top", mk("prio-bt", Priority::BottomPlusTop)),
    ]
}

fn instances() -> Vec<es_workload::Instance> {
    (0..4)
        .map(|rep| {
            let seed = cell_seed(20060810, Setting::Heterogeneous, 16, 2.0, rep);
            generate(&InstanceConfig::paper(Setting::Heterogeneous, 16, 2.0, seed).with_tasks(80))
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let insts = instances();
    eprintln!("\n# Ablation: task priority (hetero, 16 procs, CCR 2, mean of 4 instances)");
    for (name, cfg) in variants() {
        let mean: f64 = insts
            .iter()
            .map(|i| {
                ListScheduler::with_config(cfg)
                    .schedule(&i.dag, &i.topo)
                    .unwrap()
                    .makespan
            })
            .sum::<f64>()
            / insts.len() as f64;
        eprintln!("  {name:<18} mean makespan {mean:>12.1}");
    }

    let mut g = c.benchmark_group("ablation_priority");
    for (name, cfg) in variants() {
        let inst = &insts[0];
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    ListScheduler::with_config(cfg)
                        .schedule(black_box(&inst.dag), black_box(&inst.topo))
                        .unwrap()
                        .makespan,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
