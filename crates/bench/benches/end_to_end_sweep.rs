//! End-to-end sweep: every slotted scheduler over paper-like instances,
//! once with the reference [`Tuning`] and once with the optimized one
//! (route cache + indexed gap search). The two must produce bitwise
//! identical schedules — asserted inline here, enforced exhaustively by
//! `tests/integration_differential.rs` — so any timing gap between the
//! `ref`/`opt` variants is pure hot-path overhead.
//!
//! `cargo run -p xtask -- bench` runs the same sweep with wall-clock
//! instrumentation and writes BENCH_PR4.json; this criterion harness is
//! the per-configuration microscope.

use criterion::{criterion_group, criterion_main, Criterion};
use es_core::diff::diff_schedules;
use es_core::{ListConfig, ListScheduler, Scheduler, Tuning};
use es_workload::{cell_seed, generate, InstanceConfig, Setting};
use std::hint::black_box;

fn configs() -> Vec<ListConfig> {
    vec![
        ListConfig::ba(),
        ListConfig::ba_static(),
        ListConfig::oihsa(),
        ListConfig::oihsa_probing(),
    ]
}

fn bench(c: &mut Criterion) {
    let seed = cell_seed(20060810, Setting::Heterogeneous, 8, 5.0, 0);
    let inst =
        generate(&InstanceConfig::paper(Setting::Heterogeneous, 8, 5.0, seed).with_tasks(80));

    let mut g = c.benchmark_group("end_to_end_sweep");
    for cfg in configs() {
        // Bitwise identity gate before timing anything.
        let run = |tuning: Tuning| {
            ListScheduler::with_config(ListConfig { tuning, ..cfg })
                .schedule(&inst.dag, &inst.topo)
                .unwrap()
        };
        if let Some(d) = diff_schedules(&run(Tuning::optimized()), &run(Tuning::reference())) {
            panic!("{}: optimized vs reference schedules differ: {d}", cfg.name);
        }
        for (label, tuning) in [("ref", Tuning::reference()), ("opt", Tuning::optimized())] {
            g.bench_function(format!("{}/{}", cfg.name, label), |b| {
                b.iter(|| {
                    black_box(
                        ListScheduler::with_config(ListConfig { tuning, ..cfg })
                            .schedule(black_box(&inst.dag), black_box(&inst.topo))
                            .unwrap()
                            .makespan,
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
