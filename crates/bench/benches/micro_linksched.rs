//! Micro-benchmarks of the link-scheduling primitives: slot-queue
//! probing, optimal insertion (§4.4), bandwidth allocation (§5), and
//! the two routing searches.

use criterion::{criterion_group, criterion_main, Criterion};
use es_linksched::bandwidth::{ArrivalCurve, RateProfile};
use es_linksched::optimal::plan_optimal_insert;
use es_linksched::slot::SlotQueue;
use es_linksched::CommId;
use es_net::gen::{random_switched_wan, WanConfig};
use es_route::{bfs_route, dijkstra_route};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// A queue with `n` busy slots separated by small gaps.
fn busy_queue(n: u64) -> (SlotQueue, Vec<f64>) {
    let mut q = SlotQueue::new();
    let mut dts = Vec::new();
    let mut t = 0.0;
    for i in 0..n {
        q.commit(CommId(i), 0, t, 3.0);
        t += 3.0 + ((i % 3) as f64) * 0.5;
        dts.push((i % 4) as f64);
    }
    (q, dts)
}

fn bench(c: &mut Criterion) {
    let (q, dts) = busy_queue(200);

    c.bench_function("slotqueue_probe_200slots", |b| {
        b.iter(|| black_box(q.probe(black_box(10.0), black_box(2.0))))
    });

    c.bench_function("optimal_insert_plan_200slots", |b| {
        b.iter(|| {
            black_box(plan_optimal_insert(
                &q,
                black_box(10.0),
                black_box(2.0),
                &dts,
            ))
        })
    });

    let mut profile = RateProfile::new();
    for i in 0..100u64 {
        let f = profile.allocate(
            2.0,
            ArrivalCurve::Instant {
                at: (i % 10) as f64 * 7.0,
            },
            5.0,
        );
        profile.commit(CommId(i), &f);
    }
    c.bench_function("bandwidth_allocate_100segs", |b| {
        b.iter(|| {
            black_box(profile.allocate(
                2.0,
                ArrivalCurve::Instant {
                    at: black_box(12.0),
                },
                black_box(8.0),
            ))
        })
    });

    let topo = random_switched_wan(&WanConfig::heterogeneous(64), &mut StdRng::seed_from_u64(1));
    let a = topo.node_of_proc(es_net::ProcId(0));
    let b_ = topo.node_of_proc(es_net::ProcId(63));
    c.bench_function("bfs_route_64proc_wan", |b| {
        b.iter(|| black_box(bfs_route(&topo, black_box(a), black_box(b_))))
    });
    c.bench_function("dijkstra_route_64proc_wan", |b| {
        b.iter(|| {
            black_box(dijkstra_route(
                &topo,
                black_box(a),
                black_box(b_),
                (0.0_f64, 0.0_f64),
                |&(s, f), hop| {
                    let int = 5.0 / topo.link_speed(hop.link);
                    let start = s.max(f - int);
                    (start, start + int)
                },
                |&(_, f)| f,
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
