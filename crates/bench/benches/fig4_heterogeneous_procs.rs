//! Figure 4 — heterogeneous systems, improvement % vs processor count.

use criterion::{criterion_group, criterion_main, Criterion};
use es_bench::{bench_ccrs, bench_cell, bench_params, bench_procs};
use es_sim::{fig4, run_cell};
use es_workload::Setting;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = fig4(&bench_params(bench_procs(), bench_ccrs())).to_table();
    eprintln!("\n{table}");

    let mut g = c.benchmark_group("fig4");
    for procs in [2usize, 32] {
        let spec = bench_cell(Setting::Heterogeneous, procs, 1.0);
        g.bench_function(format!("cell_procs{procs}_ccr1"), |b| {
            b.iter(|| black_box(run_cell(black_box(&spec))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
