//! Topology generators.
//!
//! [`random_switched_wan`] is the paper's §6 experimental network:
//! "each switch connects with `U(4,16)` processors and there exists a
//! path between any pair of switches. The switches are connected
//! randomly to simulate a real wide-area network." The remaining
//! generators produce the regular fabrics used by examples, tests and
//! ablations.
//!
//! All cables are full duplex (two directed links) unless stated
//! otherwise; speeds are drawn from a [`SpeedDist`].

use crate::topology::{NodeId, Topology};
use rand::Rng;

/// How to draw processor/link speeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpeedDist {
    /// Every speed is exactly this value (the paper's homogeneous
    /// setting uses `Fixed(1.0)`).
    Fixed(f64),
    /// Uniform integer in `[lo, hi]` (the paper's heterogeneous setting
    /// uses `UniformInt(1, 10)`).
    UniformInt(u64, u64),
}

impl SpeedDist {
    /// Draw one speed.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            SpeedDist::Fixed(v) => v,
            SpeedDist::UniformInt(lo, hi) => {
                assert!(lo >= 1 && lo <= hi, "speed range must be 1 <= lo <= hi");
                rng.random_range(lo..=hi) as f64
            }
        }
    }

    /// The distribution's mean, used by CCR control.
    pub fn mean(&self) -> f64 {
        match *self {
            SpeedDist::Fixed(v) => v,
            SpeedDist::UniformInt(lo, hi) => (lo + hi) as f64 / 2.0,
        }
    }
}

/// Parameters of the paper's random switched WAN.
#[derive(Clone, Debug, PartialEq)]
pub struct WanConfig {
    /// Number of processors (the paper sweeps {2,4,…,128}).
    pub processors: usize,
    /// Each switch hosts `U(lo, hi)` processors; paper: `(4, 16)`.
    pub procs_per_switch: (usize, usize),
    /// Probability of an extra switch–switch cable beyond the random
    /// spanning tree that guarantees connectivity.
    pub extra_edge_prob: f64,
    /// Processor speed distribution.
    pub proc_speed: SpeedDist,
    /// Link speed distribution.
    pub link_speed: SpeedDist,
}

impl WanConfig {
    /// Paper §6.1: homogeneous — all speeds 1.
    pub fn homogeneous(processors: usize) -> Self {
        Self {
            processors,
            procs_per_switch: (4, 16),
            extra_edge_prob: 0.3,
            proc_speed: SpeedDist::Fixed(1.0),
            link_speed: SpeedDist::Fixed(1.0),
        }
    }

    /// Paper §6.2: heterogeneous — speeds `U(1,10)`.
    pub fn heterogeneous(processors: usize) -> Self {
        Self {
            processors,
            procs_per_switch: (4, 16),
            extra_edge_prob: 0.3,
            proc_speed: SpeedDist::UniformInt(1, 10),
            link_speed: SpeedDist::UniformInt(1, 10),
        }
    }
}

/// Generate the paper's random switched WAN.
///
/// Processors are dealt to switches in chunks of `U(lo, hi)`; every
/// processor is cabled to its switch; switches are joined by a random
/// spanning tree plus `extra_edge_prob`-density extra cables (so the
/// switch fabric is always connected but irregular).
///
/// # Panics
/// Panics if `processors == 0` or the per-switch range is invalid.
pub fn random_switched_wan<R: Rng + ?Sized>(cfg: &WanConfig, rng: &mut R) -> Topology {
    assert!(cfg.processors > 0, "need at least one processor");
    let (lo, hi) = cfg.procs_per_switch;
    assert!(lo >= 1 && lo <= hi, "invalid procs_per_switch range");
    assert!(
        (0.0..=1.0).contains(&cfg.extra_edge_prob),
        "extra_edge_prob must lie in [0,1]"
    );

    let mut b = Topology::builder();

    // Deal processors to switches.
    let mut switches: Vec<NodeId> = Vec::new();
    let mut remaining = cfg.processors;
    while remaining > 0 {
        let sw = b.add_labeled_switch(format!("sw{}", switches.len()));
        let take = rng.random_range(lo..=hi).min(remaining);
        for _ in 0..take {
            let speed = cfg.proc_speed.sample(rng);
            let (pn, _) = b.add_processor(speed);
            let ls = cfg.link_speed.sample(rng);
            b.add_duplex_cable(pn, sw, ls);
        }
        switches.push(sw);
        remaining -= take;
    }

    // Random spanning tree over switches: attach each new switch to a
    // uniformly chosen earlier one.
    for i in 1..switches.len() {
        let j = rng.random_range(0..i);
        let ls = cfg.link_speed.sample(rng);
        b.add_duplex_cable(switches[i], switches[j], ls);
    }
    // Extra random switch-switch cables.
    for i in 0..switches.len() {
        for j in 0..i.saturating_sub(1) {
            if rng.random_bool(cfg.extra_edge_prob) {
                let ls = cfg.link_speed.sample(rng);
                b.add_duplex_cable(switches[i], switches[j], ls);
            }
        }
    }

    let t = b.build().expect("generator produces valid topologies");
    debug_assert!(t.is_connected());
    t
}

/// Fully connected processor network: a dedicated duplex cable between
/// every pair of processors (the "classic model" network; contention
/// only arises between communications sharing one ordered pair).
pub fn fully_connected<R: Rng + ?Sized>(
    processors: usize,
    proc_speed: SpeedDist,
    link_speed: SpeedDist,
    rng: &mut R,
) -> Topology {
    assert!(processors > 0);
    let mut b = Topology::builder();
    let nodes: Vec<NodeId> = (0..processors)
        .map(|_| b.add_processor(proc_speed.sample(rng)).0)
        .collect();
    for i in 0..processors {
        for j in 0..i {
            b.add_duplex_cable(nodes[i], nodes[j], link_speed.sample(rng));
        }
    }
    b.build().expect("valid")
}

/// Star: one central switch, every processor cabled to it. The classic
/// single-cluster model; the switch serialises nothing itself but each
/// processor's up/down links are contention points.
pub fn star<R: Rng + ?Sized>(
    processors: usize,
    proc_speed: SpeedDist,
    link_speed: SpeedDist,
    rng: &mut R,
) -> Topology {
    assert!(processors > 0);
    let mut b = Topology::builder();
    let sw = b.add_labeled_switch("hub");
    for _ in 0..processors {
        let (pn, _) = b.add_processor(proc_speed.sample(rng));
        b.add_duplex_cable(pn, sw, link_speed.sample(rng));
    }
    b.build().expect("valid")
}

/// Ring of switches, each hosting `procs_per_switch` processors.
pub fn switch_ring<R: Rng + ?Sized>(
    switches: usize,
    procs_per_switch: usize,
    proc_speed: SpeedDist,
    link_speed: SpeedDist,
    rng: &mut R,
) -> Topology {
    assert!(switches > 0 && procs_per_switch > 0);
    let mut b = Topology::builder();
    let sws: Vec<NodeId> = (0..switches)
        .map(|i| b.add_labeled_switch(format!("sw{i}")))
        .collect();
    for &sw in &sws {
        for _ in 0..procs_per_switch {
            let (pn, _) = b.add_processor(proc_speed.sample(rng));
            b.add_duplex_cable(pn, sw, link_speed.sample(rng));
        }
    }
    if switches > 1 {
        for i in 0..switches {
            let j = (i + 1) % switches;
            if switches == 2 && i == 1 {
                break; // avoid doubling the single cable
            }
            b.add_duplex_cable(sws[i], sws[j], link_speed.sample(rng));
        }
    }
    b.build().expect("valid")
}

/// 2-D mesh of switches (`rows × cols`), each hosting
/// `procs_per_switch` processors — a NoC/cluster-style fabric.
pub fn switch_mesh2d<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    procs_per_switch: usize,
    proc_speed: SpeedDist,
    link_speed: SpeedDist,
    rng: &mut R,
) -> Topology {
    assert!(rows > 0 && cols > 0 && procs_per_switch > 0);
    let mut b = Topology::builder();
    let mut grid = vec![vec![NodeId(0); cols]; rows];
    for (r, row) in grid.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = b.add_labeled_switch(format!("sw[{r},{c}]"));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            for _ in 0..procs_per_switch {
                let (pn, _) = b.add_processor(proc_speed.sample(rng));
                b.add_duplex_cable(pn, grid[r][c], link_speed.sample(rng));
            }
            if r + 1 < rows {
                b.add_duplex_cable(grid[r][c], grid[r + 1][c], link_speed.sample(rng));
            }
            if c + 1 < cols {
                b.add_duplex_cable(grid[r][c], grid[r][c + 1], link_speed.sample(rng));
            }
        }
    }
    b.build().expect("valid")
}

/// Hypercube of dimension `dim`: `2^dim` processors, each cabled
/// directly to its `dim` neighbours (no switches — the classic
/// direct-network fabric). Node ids are the hypercube coordinates.
pub fn hypercube<R: Rng + ?Sized>(
    dim: u32,
    proc_speed: SpeedDist,
    link_speed: SpeedDist,
    rng: &mut R,
) -> Topology {
    assert!((1..=16).contains(&dim), "dimension must be in 1..=16");
    let n = 1usize << dim;
    let mut b = Topology::builder();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| {
            b.add_labeled_processor(
                proc_speed.sample(rng),
                format!("p{i:0w$b}", w = dim as usize),
            )
            .0
        })
        .collect();
    for i in 0..n {
        for d in 0..dim {
            let j = i ^ (1 << d);
            if i < j {
                b.add_duplex_cable(nodes[i], nodes[j], link_speed.sample(rng));
            }
        }
    }
    b.build().expect("valid")
}

/// 2-D torus of switches (`rows × cols`, wraparound in both
/// dimensions), each hosting `procs_per_switch` processors.
pub fn switch_torus2d<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    procs_per_switch: usize,
    proc_speed: SpeedDist,
    link_speed: SpeedDist,
    rng: &mut R,
) -> Topology {
    assert!(rows >= 2 && cols >= 2, "torus needs at least 2x2 switches");
    assert!(procs_per_switch > 0);
    let mut b = Topology::builder();
    let mut grid = vec![vec![NodeId(0); cols]; rows];
    for (r, row) in grid.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = b.add_labeled_switch(format!("sw[{r},{c}]"));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            for _ in 0..procs_per_switch {
                let (pn, _) = b.add_processor(proc_speed.sample(rng));
                b.add_duplex_cable(pn, grid[r][c], link_speed.sample(rng));
            }
            // Wraparound neighbours; draw each cable once.
            let down = (r + 1) % rows;
            if rows > 2 || r == 0 {
                b.add_duplex_cable(grid[r][c], grid[down][c], link_speed.sample(rng));
            }
            let right = (c + 1) % cols;
            if cols > 2 || c == 0 {
                b.add_duplex_cable(grid[r][c], grid[r][right], link_speed.sample(rng));
            }
        }
    }
    b.build().expect("valid")
}

/// Two-level fat tree: `pods` edge switches each hosting
/// `procs_per_pod` processors, all edge switches cabled to `spines`
/// core switches (the fatness knob: more spines = more parallel paths
/// between pods — the topology where §4.3's load-aware routing shines).
pub fn fat_tree<R: Rng + ?Sized>(
    pods: usize,
    procs_per_pod: usize,
    spines: usize,
    proc_speed: SpeedDist,
    link_speed: SpeedDist,
    rng: &mut R,
) -> Topology {
    assert!(pods > 0 && procs_per_pod > 0 && spines > 0);
    let mut b = Topology::builder();
    let spine_nodes: Vec<NodeId> = (0..spines)
        .map(|i| b.add_labeled_switch(format!("spine{i}")))
        .collect();
    for p in 0..pods {
        let edge = b.add_labeled_switch(format!("edge{p}"));
        for _ in 0..procs_per_pod {
            let (pn, _) = b.add_processor(proc_speed.sample(rng));
            b.add_duplex_cable(pn, edge, link_speed.sample(rng));
        }
        for &spine in &spine_nodes {
            b.add_duplex_cable(edge, spine, link_speed.sample(rng));
        }
    }
    b.build().expect("valid")
}

/// Shared bus: all processors on one half-duplex hyperedge — the
/// worst-case contention fabric (classic Ethernet segment).
pub fn shared_bus<R: Rng + ?Sized>(
    processors: usize,
    proc_speed: SpeedDist,
    bus_speed: f64,
    rng: &mut R,
) -> Topology {
    assert!(processors > 1, "a bus needs at least two processors");
    let mut b = Topology::builder();
    let nodes: Vec<NodeId> = (0..processors)
        .map(|_| b.add_processor(proc_speed.sample(rng)).0)
        .collect();
    b.add_bus(nodes, bus_speed);
    b.build().expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wan_has_requested_processors_and_is_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1, 2, 5, 16, 64, 128] {
            let t = random_switched_wan(&WanConfig::homogeneous(n), &mut rng);
            assert_eq!(t.proc_count(), n);
            assert!(t.is_connected(), "n = {n}");
        }
    }

    #[test]
    fn wan_homogeneous_speeds_are_one() {
        let t = random_switched_wan(&WanConfig::homogeneous(32), &mut StdRng::seed_from_u64(2));
        assert!(t.is_homogeneous());
    }

    #[test]
    fn wan_heterogeneous_speeds_in_range() {
        let t = random_switched_wan(&WanConfig::heterogeneous(64), &mut StdRng::seed_from_u64(3));
        for p in t.proc_ids() {
            let s = t.proc_speed(p);
            assert!((1.0..=10.0).contains(&s));
        }
        for l in t.link_ids() {
            let s = t.link_speed(l);
            assert!((1.0..=10.0).contains(&s));
        }
        assert!(
            !t.is_homogeneous() || t.proc_count() < 3,
            "overwhelmingly likely"
        );
    }

    #[test]
    fn wan_is_deterministic_per_seed() {
        let a = random_switched_wan(&WanConfig::heterogeneous(40), &mut StdRng::seed_from_u64(7));
        let b = random_switched_wan(&WanConfig::heterogeneous(40), &mut StdRng::seed_from_u64(7));
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.link_count(), b.link_count());
        for l in a.link_ids() {
            assert_eq!(a.link_speed(l), b.link_speed(l));
        }
    }

    #[test]
    fn wan_switch_occupancy_respects_range() {
        let cfg = WanConfig::homogeneous(200);
        let t = random_switched_wan(&cfg, &mut StdRng::seed_from_u64(4));
        // Count processors per switch by looking at processor hops.
        let mut per_switch = std::collections::HashMap::new();
        for p in t.proc_ids() {
            let pn = t.node_of_proc(p);
            let hop = t.hops_from(pn)[0];
            *per_switch.entry(hop.to).or_insert(0usize) += 1;
        }
        for (_sw, count) in per_switch {
            assert!(count <= 16, "switch hosts {count} > 16 processors");
        }
    }

    #[test]
    fn fully_connected_link_count() {
        let t = fully_connected(
            5,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(5),
        );
        // C(5,2) cables, two directed links each.
        assert_eq!(t.link_count(), 20);
        assert!(t.is_connected());
        assert_eq!(t.node_count(), 5); // no switches
    }

    #[test]
    fn star_shape() {
        let t = star(
            4,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(2.0),
            &mut StdRng::seed_from_u64(6),
        );
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.link_count(), 8);
        assert!(t.is_connected());
        assert_eq!(t.mean_link_speed(), 2.0);
    }

    #[test]
    fn ring_is_connected() {
        let t = switch_ring(
            6,
            2,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(t.proc_count(), 12);
        assert!(t.is_connected());
    }

    #[test]
    fn two_switch_ring_has_single_trunk() {
        let t = switch_ring(
            2,
            1,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(8),
        );
        // 2 proc cables (2 links each) + 1 trunk cable (2 links) = 6.
        assert_eq!(t.link_count(), 6);
        assert!(t.is_connected());
    }

    #[test]
    fn mesh_is_connected() {
        let t = switch_mesh2d(
            3,
            4,
            1,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(t.proc_count(), 12);
        assert!(t.is_connected());
    }

    #[test]
    fn bus_topology_single_link() {
        let t = shared_bus(
            4,
            SpeedDist::Fixed(1.0),
            2.0,
            &mut StdRng::seed_from_u64(10),
        );
        assert_eq!(t.link_count(), 1);
        assert!(t.is_connected());
        assert_eq!(t.mean_link_speed(), 2.0);
    }

    #[test]
    fn hypercube_shape() {
        let t = hypercube(
            3,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(12),
        );
        assert_eq!(t.proc_count(), 8);
        // 3 * 2^3 / 2 = 12 cables = 24 directed links.
        assert_eq!(t.link_count(), 24);
        assert!(t.is_connected());
        // Every processor has exactly 3 outgoing hops.
        for p in t.proc_ids() {
            assert_eq!(t.hops_from(t.node_of_proc(p)).len(), 3);
        }
    }

    #[test]
    fn torus_shape() {
        let t = switch_torus2d(
            3,
            3,
            1,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(13),
        );
        assert_eq!(t.proc_count(), 9);
        assert!(t.is_connected());
        // 9 proc cables + 9 vertical + 9 horizontal = 27 cables.
        assert_eq!(t.link_count(), 54);
    }

    #[test]
    fn two_by_two_torus_avoids_duplicate_wraparound() {
        let t = switch_torus2d(
            2,
            2,
            1,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(14),
        );
        assert!(t.is_connected());
        // 4 proc cables + 2 vertical + 2 horizontal = 8 cables.
        assert_eq!(t.link_count(), 16);
    }

    #[test]
    fn fat_tree_has_spine_diversity() {
        let t = fat_tree(
            4,
            2,
            3,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(15),
        );
        assert_eq!(t.proc_count(), 8);
        assert!(t.is_connected());
        // Pod-to-pod routes exist through each of the 3 spines: each
        // edge switch has 2 proc hops + 3 spine hops.
        let edges_with_5_hops = t
            .node_ids()
            .filter(|&n| t.proc_of_node(n).is_none() && t.hops_from(n).len() == 5)
            .count();
        assert_eq!(edges_with_5_hops, 4, "4 edge switches");
    }

    #[test]
    fn speed_dist_mean() {
        assert_eq!(SpeedDist::Fixed(3.0).mean(), 3.0);
        assert_eq!(SpeedDist::UniformInt(1, 10).mean(), 5.5);
    }

    #[test]
    fn speed_dist_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let s = SpeedDist::UniformInt(2, 5).sample(&mut rng);
            assert!((2.0..=5.0).contains(&s));
            assert_eq!(s.fract(), 0.0);
        }
    }
}
