//! Topology analysis: path diversity and fabric statistics.
//!
//! §4.3's modified routing only pays off when the fabric offers
//! alternative routes; these helpers quantify that. The central tool is
//! [`edge_disjoint_paths`] — a unit-capacity max-flow (BFS
//! Edmonds–Karp) between two vertices, i.e. the number of link-disjoint
//! routes a pair of processors can use simultaneously. A topology whose
//! processor pairs average 1.0 gains nothing from load-aware routing;
//! a 3-spine fat tree averages 3.

use crate::topology::{NodeId, Topology};
use std::collections::VecDeque;

/// Number of link-disjoint directed paths from `src` to `dst`
/// (unit-capacity max flow). 0 when unreachable, and by convention 0
/// when `src == dst`.
///
/// Bus hyperedges count as capacity-1 resources no matter how many
/// member pairs could cross them — matching their scheduling semantics
/// (one queue).
pub fn edge_disjoint_paths(topo: &Topology, src: NodeId, dst: NodeId) -> usize {
    if src == dst {
        return 0;
    }
    // Residual capacity per (link, direction-key). For directed links
    // the key is (); for shared media we cap the whole link at 1 by
    // keying on the link alone.
    let mut used = vec![false; topo.link_count()];
    let mut paths = 0usize;
    loop {
        // BFS over hops whose link is still unused.
        let mut pred: Vec<Option<crate::topology::Hop>> = vec![None; topo.node_count()];
        let mut seen = vec![false; topo.node_count()];
        seen[src.index()] = true;
        let mut q = VecDeque::new();
        q.push_back(src);
        let mut found = false;
        'bfs: while let Some(u) = q.pop_front() {
            for &hop in topo.hops_from(u) {
                if used[hop.link.index()] || seen[hop.to.index()] {
                    continue;
                }
                seen[hop.to.index()] = true;
                pred[hop.to.index()] = Some(hop);
                if hop.to == dst {
                    found = true;
                    break 'bfs;
                }
                q.push_back(hop.to);
            }
        }
        if !found {
            return paths;
        }
        // Consume the path's links.
        let mut cur = dst;
        while cur != src {
            let hop = pred[cur.index()].expect("path reconstruction");
            used[hop.link.index()] = true;
            cur = hop.from;
        }
        paths += 1;
    }
}

/// Mean [`edge_disjoint_paths`] over all ordered processor pairs — the
/// fabric's *path diversity*. 0 for a single processor.
pub fn mean_path_diversity(topo: &Topology) -> f64 {
    let procs: Vec<NodeId> = topo.proc_ids().map(|p| topo.node_of_proc(p)).collect();
    if procs.len() < 2 {
        return 0.0;
    }
    let mut total = 0usize;
    let mut pairs = 0usize;
    for &a in &procs {
        for &b in &procs {
            if a != b {
                total += edge_disjoint_paths(topo, a, b);
                pairs += 1;
            }
        }
    }
    total as f64 / pairs as f64
}

/// Summary statistics of a fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopoStats {
    /// Number of processors.
    pub processors: usize,
    /// Number of switches.
    pub switches: usize,
    /// Number of links (directed count).
    pub links: usize,
    /// Mean link-disjoint paths over processor pairs.
    pub path_diversity: f64,
    /// Longest BFS distance (hops) between any two processors.
    pub diameter: usize,
}

/// Compute [`TopoStats`]. O(P² · E) — intended for reports, not inner
/// loops.
pub fn stats(topo: &Topology) -> TopoStats {
    let procs: Vec<NodeId> = topo.proc_ids().map(|p| topo.node_of_proc(p)).collect();
    let mut diameter = 0usize;
    for &a in &procs {
        // BFS distances from a.
        let mut dist = vec![usize::MAX; topo.node_count()];
        dist[a.index()] = 0;
        let mut q = VecDeque::new();
        q.push_back(a);
        while let Some(u) = q.pop_front() {
            for hop in topo.hops_from(u) {
                if dist[hop.to.index()] == usize::MAX {
                    dist[hop.to.index()] = dist[u.index()] + 1;
                    q.push_back(hop.to);
                }
            }
        }
        for &b in &procs {
            if dist[b.index()] != usize::MAX {
                diameter = diameter.max(dist[b.index()]);
            }
        }
    }
    TopoStats {
        processors: topo.proc_count(),
        switches: topo.node_count() - topo.proc_count(),
        links: topo.link_count(),
        path_diversity: mean_path_diversity(topo),
        diameter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn star_has_single_disjoint_path() {
        let t = gen::star(4, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng());
        let a = t.node_of_proc(crate::ProcId(0));
        let b = t.node_of_proc(crate::ProcId(1));
        assert_eq!(edge_disjoint_paths(&t, a, b), 1);
        assert!((mean_path_diversity(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fat_tree_diversity_equals_spine_count() {
        let t = gen::fat_tree(
            3,
            2,
            4,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut rng(),
        );
        // Processors in different pods: bounded by the single uplink
        // of each processor — 1! The diversity lives between SWITCHES.
        let a = t.node_of_proc(crate::ProcId(0));
        let b = t.node_of_proc(crate::ProcId(2));
        assert_eq!(
            edge_disjoint_paths(&t, a, b),
            1,
            "endpoint uplinks bottleneck"
        );
        // Between the edge switches themselves there are 4 disjoint
        // routes (one per spine).
        let edges: Vec<NodeId> = t
            .node_ids()
            .filter(|&n| {
                t.proc_of_node(n).is_none()
                    && t.node(n)
                        .label
                        .as_deref()
                        .is_some_and(|l| l.starts_with("edge"))
            })
            .collect();
        assert_eq!(edge_disjoint_paths(&t, edges[0], edges[1]), 4);
    }

    #[test]
    fn hypercube_diversity_equals_dimension() {
        let t = gen::hypercube(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng());
        let a = t.node_of_proc(crate::ProcId(0));
        let b = t.node_of_proc(crate::ProcId(7)); // antipodal corner
        assert_eq!(edge_disjoint_paths(&t, a, b), 3);
    }

    #[test]
    fn same_node_and_unreachable_are_zero() {
        let mut b = crate::Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let t = b.build().unwrap();
        assert_eq!(edge_disjoint_paths(&t, p0, p0), 0);
        assert_eq!(edge_disjoint_paths(&t, p0, p1), 0);
    }

    #[test]
    fn bus_caps_diversity_at_one() {
        let t = gen::shared_bus(5, SpeedDist::Fixed(1.0), 1.0, &mut rng());
        assert!((mean_path_diversity(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_counts_and_diameter() {
        let t = gen::switch_ring(
            4,
            1,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut rng(),
        );
        let s = stats(&t);
        assert_eq!(s.processors, 4);
        assert_eq!(s.switches, 4);
        // Opposite sides of the ring: proc -> sw -> sw -> sw -> proc.
        assert_eq!(s.diameter, 4);
        // Ring: two disjoint switch paths, but the processor uplink is
        // still the bottleneck.
        assert!((s.path_diversity - 1.0).abs() < 1e-12);
    }
}
