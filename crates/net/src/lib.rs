//! # es-net — network topology for contention-aware scheduling
//!
//! Implements the target-system model of §2.2 of Han & Wang (ICPP 2006),
//! which in turn is the topology-graph model of Sinnen & Sousa (TPDS
//! 2005): a communication network is a graph
//! `TG = {N, P, D, H}` where
//!
//! * `N` is the set of network vertices — **processors** and
//!   **switches**,
//! * `P ⊆ N` are the processors (speed `s(P)`),
//! * `D` are **directed** communication links (speed `s(L)`),
//! * `H` are **hyperedges** — multidirectional shared media such as
//!   buses; `L = D ∪ H` is the link set edges are scheduled on.
//!
//! A full-duplex cable is represented as two independent directed links
//! (each with its own schedule); a half-duplex cable is a single
//! bidirectional link whose one schedule serialises both directions; a
//! bus is a hyperedge shared by all members.
//!
//! Routing works on [`Hop`]s — `(link, from, to)` triples — so the same
//! machinery covers all three media kinds.
//!
//! [`gen`] provides topology generators including the paper's §6 random
//! switched WAN (each switch connects `U(4,16)` processors; switches
//! form a random connected graph).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
pub mod gen;
pub mod topology;

pub use topology::{
    Hop, Link, LinkConn, LinkId, NetNode, NodeId, NodeKind, ProcId, Processor, TopoError, Topology,
    TopologyBuilder,
};
