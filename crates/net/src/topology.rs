//! Topology graph: processors, switches, links, hops.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global allocator for [`Topology::signature`] values.
/// Starts at 1 so 0 can mean "unsigned" (e.g. deserialized views).
static NEXT_SIGNATURE: AtomicU64 = AtomicU64::new(1);

fn fresh_signature() -> u64 {
    NEXT_SIGNATURE.fetch_add(1, Ordering::Relaxed)
}

/// Identifier of a network vertex (processor or switch). Dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a processor. Dense index into [`Topology::processors`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

/// Identifier of a communication link (directed, half-duplex cable, or
/// bus hyperedge). Dense index; link schedules are keyed by this id, so
/// media that share a `LinkId` share contention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ProcId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}
impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}
impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}
impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}
impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}
impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// What a network vertex is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A processor that can execute tasks; carries its [`ProcId`].
    Processor(ProcId),
    /// A switch: forwards communications, cannot execute tasks.
    Switch,
}

/// A network vertex.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetNode {
    /// Processor or switch.
    pub kind: NodeKind,
    /// Optional label for reports.
    pub label: Option<String>,
}

/// A processor `P ∈ P` with processing speed `s(P)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Processor {
    /// The network vertex this processor occupies.
    pub node: NodeId,
    /// Processing speed `s(P)`; task `n` runs in `w(n)/s(P)`.
    pub speed: f64,
}

/// Connectivity of a link.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkConn {
    /// One-way link `from -> to` (element of `D`). Full-duplex cables
    /// are two of these.
    Directed {
        /// Transmitting vertex.
        from: NodeId,
        /// Receiving vertex.
        to: NodeId,
    },
    /// Half-duplex cable: both directions share this link's schedule.
    Bidirectional {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Bus / hyperedge (element of `H`): any member may send to any
    /// other member; all traffic shares one schedule.
    Bus {
        /// The vertices attached to the bus (at least 2).
        members: Vec<NodeId>,
    },
}

/// A communication link `L ∈ L = D ∪ H` with transfer speed `s(L)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Link {
    /// Data transfer speed `s(L)`; edge `e` occupies the link for
    /// `c(e)/s(L)` when granted full bandwidth.
    pub speed: f64,
    /// Endpoints / members.
    pub conn: LinkConn,
}

impl Link {
    /// Whether a message may traverse this link from `from` to `to`.
    pub fn permits(&self, from: NodeId, to: NodeId) -> bool {
        match &self.conn {
            LinkConn::Directed { from: f, to: t } => *f == from && *t == to,
            LinkConn::Bidirectional { a, b } => {
                (*a == from && *b == to) || (*b == from && *a == to)
            }
            LinkConn::Bus { members } => {
                from != to && members.contains(&from) && members.contains(&to)
            }
        }
    }
}

/// One step of a route: traverse `link` from vertex `from` to `to`.
///
/// Identifying the direction explicitly lets half-duplex and bus links
/// participate in routes while still sharing one schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hop {
    /// The traversed link.
    pub link: LinkId,
    /// Vertex the message leaves.
    pub from: NodeId,
    /// Vertex the message reaches.
    pub to: NodeId,
}

/// Errors raised while building a [`Topology`].
#[derive(Clone, Debug, PartialEq)]
pub enum TopoError {
    /// A link endpoint refers to a vertex that was never added.
    UnknownNode(NodeId),
    /// A link's speed was not finite-positive.
    InvalidSpeed(f64),
    /// A processor's speed was not finite-positive.
    InvalidProcSpeed(ProcId, f64),
    /// A bus was declared with fewer than two members or repeated ones.
    BadBus(String),
    /// A link connects a vertex to itself.
    SelfLink(NodeId),
    /// No processors in the topology.
    NoProcessors,
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::UnknownNode(n) => write!(f, "unknown vertex {n}"),
            TopoError::InvalidSpeed(s) => write!(f, "invalid link speed {s}"),
            TopoError::InvalidProcSpeed(p, s) => write!(f, "invalid speed {s} for {p}"),
            TopoError::BadBus(why) => write!(f, "bad bus: {why}"),
            TopoError::SelfLink(n) => write!(f, "link from {n} to itself"),
            TopoError::NoProcessors => write!(f, "topology has no processors"),
        }
    }
}

impl std::error::Error for TopoError {}

/// An immutable, validated network topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<NetNode>,
    processors: Vec<Processor>,
    links: Vec<Link>,
    /// `adjacency[node]` lists every hop leaving that vertex.
    adjacency: Vec<Vec<Hop>>,
    /// Per-hop forwarding delay (switch latency). The paper neglects it
    /// "for simplicity, but it can be included if necessary" (§2.2) —
    /// this is that extension point; 0 by default.
    #[serde(default)]
    hop_delay: f64,
    /// Process-unique identity of this adjacency view (see
    /// [`Topology::signature`]). Not serialized: deserialized
    /// topologies carry signature 0 ("unsigned"), which caches must
    /// treat as never-cacheable.
    #[serde(skip)]
    signature: u64,
}

impl Topology {
    /// Start building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of network vertices `|N|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of processors `|P|`.
    #[inline]
    pub fn proc_count(&self) -> usize {
        self.processors.len()
    }

    /// Number of links `|L|` (full-duplex cables count twice).
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The vertex with the given id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NetNode {
        &self.nodes[id.index()]
    }

    /// The processor with the given id.
    #[inline]
    pub fn processor(&self, id: ProcId) -> &Processor {
        &self.processors[id.index()]
    }

    /// All processors, indexed by [`ProcId`].
    #[inline]
    pub fn processors(&self) -> &[Processor] {
        &self.processors
    }

    /// The link with the given id.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Processing speed `s(P)`.
    #[inline]
    pub fn proc_speed(&self, p: ProcId) -> f64 {
        self.processors[p.index()].speed
    }

    /// Transfer speed `s(L)`.
    #[inline]
    pub fn link_speed(&self, l: LinkId) -> f64 {
        self.links[l.index()].speed
    }

    /// The network vertex a processor occupies.
    #[inline]
    pub fn node_of_proc(&self, p: ProcId) -> NodeId {
        self.processors[p.index()].node
    }

    /// The processor occupying a vertex, if it is a processor vertex.
    pub fn proc_of_node(&self, n: NodeId) -> Option<ProcId> {
        match self.nodes[n.index()].kind {
            NodeKind::Processor(p) => Some(p),
            NodeKind::Switch => None,
        }
    }

    /// Iterate over all processor ids.
    pub fn proc_ids(&self) -> impl ExactSizeIterator<Item = ProcId> + '_ {
        (0..self.processors.len() as u32).map(ProcId)
    }

    /// Iterate over all vertex ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over all link ids.
    pub fn link_ids(&self) -> impl ExactSizeIterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Hops leaving a vertex (pre-expanded adjacency).
    #[inline]
    pub fn hops_from(&self, n: NodeId) -> &[Hop] {
        &self.adjacency[n.index()]
    }

    /// Per-hop forwarding (switch) delay; 0 unless configured.
    #[inline]
    pub fn hop_delay(&self) -> f64 {
        self.hop_delay
    }

    /// Process-unique identity of this topology's *adjacency view*.
    ///
    /// Every [`TopologyBuilder::build`] and every [`Topology::masked`]
    /// call mints a fresh nonzero signature, so two `Topology` values
    /// with the same signature are guaranteed to expose the same
    /// adjacency (clones share the signature of their — immutable —
    /// original). Route caches key on this to invalidate precisely
    /// when a scheduler switches between a topology and its masked
    /// repair views. A signature of 0 means "unsigned" (deserialized);
    /// caches must treat unsigned topologies as never-cacheable.
    ///
    /// Signatures are identity, not content: their values depend on
    /// allocation order and must never influence scheduling decisions.
    #[inline]
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// A view of this topology with some links masked out: every hop
    /// using a link for which `failed` returns true is removed from the
    /// adjacency, so routing (BFS / modified Dijkstra) simply never
    /// sees it. The node, processor, and link *tables* are kept intact
    /// — [`NodeId`]/[`ProcId`]/[`LinkId`] indices stay stable, so
    /// schedules built against the masked view remain valid against
    /// the full topology.
    #[must_use]
    pub fn masked(&self, failed: impl Fn(LinkId) -> bool) -> Topology {
        let mut view = self.clone();
        for hops in &mut view.adjacency {
            hops.retain(|h| !failed(h.link));
        }
        view.signature = fresh_signature();
        view
    }

    /// A view of this topology with a different per-hop forwarding
    /// delay. Node/processor/link tables and the adjacency are shared
    /// verbatim (ids stay stable), but the view gets a fresh signature:
    /// routes cached against the original must not be reused with a
    /// different delay, because earliest-arrival tie-breaks can change.
    /// Link-model backends use this to fold per-link forwarding latency
    /// into the instance instead of patching every scheduler.
    #[must_use]
    pub fn with_hop_delay(&self, delay: f64) -> Topology {
        let mut view = self.clone();
        view.hop_delay = delay;
        view.signature = fresh_signature();
        view
    }

    /// Mean link speed `MLS` — the paper's §4.1 processor-selection
    /// criterion divides communication costs by this average.
    pub fn mean_link_speed(&self) -> f64 {
        if self.links.is_empty() {
            return 1.0;
        }
        self.links.iter().map(|l| l.speed).sum::<f64>() / self.links.len() as f64
    }

    /// Mean processor speed (used for CCR control).
    pub fn mean_proc_speed(&self) -> f64 {
        if self.processors.is_empty() {
            return 1.0;
        }
        self.processors.iter().map(|p| p.speed).sum::<f64>() / self.processors.len() as f64
    }

    /// True iff every vertex can reach every other vertex along hops.
    ///
    /// Note this checks *directed* reachability from vertex 0; a
    /// topology whose cables are all full-duplex is strongly connected
    /// iff it is weakly connected, which covers all built-in generators.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for hop in self.hops_from(n) {
                if !seen[hop.to.index()] {
                    seen[hop.to.index()] = true;
                    count += 1;
                    stack.push(hop.to);
                }
            }
        }
        count == self.nodes.len()
    }

    /// True iff all processors and links have speed 1 (the paper's
    /// homogeneous setting).
    pub fn is_homogeneous(&self) -> bool {
        // Generators write the speed verbatim, so an exact bitwise
        // check is intended here (not an epsilon comparison).
        fn is_unit(speed: f64) -> bool {
            let unit: f64 = 1.0;
            speed.to_bits() == unit.to_bits()
        }
        self.processors.iter().all(|p| is_unit(p.speed))
            && self.links.iter().all(|l| is_unit(l.speed))
    }
}

/// Incremental builder for [`Topology`].
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NetNode>,
    processors: Vec<Processor>,
    links: Vec<Link>,
    hop_delay: f64,
}

impl TopologyBuilder {
    /// Add a processor vertex with speed `speed`; returns its ids.
    pub fn add_processor(&mut self, speed: f64) -> (NodeId, ProcId) {
        let node = NodeId(self.nodes.len() as u32);
        let proc = ProcId(self.processors.len() as u32);
        self.nodes.push(NetNode {
            kind: NodeKind::Processor(proc),
            label: None,
        });
        self.processors.push(Processor { node, speed });
        (node, proc)
    }

    /// Add a labelled processor vertex.
    pub fn add_labeled_processor(
        &mut self,
        speed: f64,
        label: impl Into<String>,
    ) -> (NodeId, ProcId) {
        let (n, p) = self.add_processor(speed);
        self.nodes[n.index()].label = Some(label.into());
        (n, p)
    }

    /// Set the per-hop forwarding delay applied on every hop after the
    /// first of a route (the §2.2 extension point; default 0).
    pub fn set_hop_delay(&mut self, delay: f64) -> &mut Self {
        self.hop_delay = delay;
        self
    }

    /// Add a switch vertex.
    pub fn add_switch(&mut self) -> NodeId {
        let node = NodeId(self.nodes.len() as u32);
        self.nodes.push(NetNode {
            kind: NodeKind::Switch,
            label: None,
        });
        node
    }

    /// Add a labelled switch vertex.
    pub fn add_labeled_switch(&mut self, label: impl Into<String>) -> NodeId {
        let n = self.add_switch();
        self.nodes[n.index()].label = Some(label.into());
        n
    }

    /// Add a one-way link `from -> to`.
    pub fn add_directed_link(&mut self, from: NodeId, to: NodeId, speed: f64) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            speed,
            conn: LinkConn::Directed { from, to },
        });
        id
    }

    /// Add a full-duplex cable between `a` and `b`: two independent
    /// directed links of the same speed. Returns `(a->b, b->a)`.
    pub fn add_duplex_cable(&mut self, a: NodeId, b: NodeId, speed: f64) -> (LinkId, LinkId) {
        (
            self.add_directed_link(a, b, speed),
            self.add_directed_link(b, a, speed),
        )
    }

    /// Add a half-duplex cable: one shared link usable in both
    /// directions (both directions contend on the same schedule).
    pub fn add_half_duplex_cable(&mut self, a: NodeId, b: NodeId, speed: f64) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            speed,
            conn: LinkConn::Bidirectional { a, b },
        });
        id
    }

    /// Add a bus (hyperedge) connecting all `members`.
    pub fn add_bus(&mut self, members: Vec<NodeId>, speed: f64) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            speed,
            conn: LinkConn::Bus { members },
        });
        id
    }

    /// Validate and freeze the topology.
    pub fn build(self) -> Result<Topology, TopoError> {
        if self.processors.is_empty() {
            return Err(TopoError::NoProcessors);
        }
        if !self.hop_delay.is_finite() || self.hop_delay < 0.0 {
            return Err(TopoError::InvalidSpeed(self.hop_delay));
        }
        for p in 0..self.processors.len() {
            let s = self.processors[p].speed;
            if !s.is_finite() || s <= 0.0 {
                return Err(TopoError::InvalidProcSpeed(ProcId(p as u32), s));
            }
        }
        let check = |n: NodeId| -> Result<(), TopoError> {
            if n.index() >= self.nodes.len() {
                Err(TopoError::UnknownNode(n))
            } else {
                Ok(())
            }
        };
        for link in &self.links {
            if !link.speed.is_finite() || link.speed <= 0.0 {
                return Err(TopoError::InvalidSpeed(link.speed));
            }
            match &link.conn {
                LinkConn::Directed { from, to } => {
                    check(*from)?;
                    check(*to)?;
                    if from == to {
                        return Err(TopoError::SelfLink(*from));
                    }
                }
                LinkConn::Bidirectional { a, b } => {
                    check(*a)?;
                    check(*b)?;
                    if a == b {
                        return Err(TopoError::SelfLink(*a));
                    }
                }
                LinkConn::Bus { members } => {
                    if members.len() < 2 {
                        return Err(TopoError::BadBus(format!(
                            "bus has {} member(s), needs >= 2",
                            members.len()
                        )));
                    }
                    let mut seen = std::collections::HashSet::new();
                    for &m in members {
                        check(m)?;
                        if !seen.insert(m) {
                            return Err(TopoError::BadBus(format!("repeated member {m}")));
                        }
                    }
                }
            }
        }

        // Pre-expand adjacency.
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for (i, link) in self.links.iter().enumerate() {
            let id = LinkId(i as u32);
            match &link.conn {
                LinkConn::Directed { from, to } => {
                    adjacency[from.index()].push(Hop {
                        link: id,
                        from: *from,
                        to: *to,
                    });
                }
                LinkConn::Bidirectional { a, b } => {
                    adjacency[a.index()].push(Hop {
                        link: id,
                        from: *a,
                        to: *b,
                    });
                    adjacency[b.index()].push(Hop {
                        link: id,
                        from: *b,
                        to: *a,
                    });
                }
                LinkConn::Bus { members } => {
                    for &m in members {
                        for &other in members {
                            if m != other {
                                adjacency[m.index()].push(Hop {
                                    link: id,
                                    from: m,
                                    to: other,
                                });
                            }
                        }
                    }
                }
            }
        }

        Ok(Topology {
            nodes: self.nodes,
            processors: self.processors,
            links: self.links,
            adjacency,
            hop_delay: self.hop_delay,
            signature: fresh_signature(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two processors joined through one switch by duplex cables.
    fn two_proc_star() -> Topology {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(2.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0);
        b.add_duplex_cable(p1, sw, 3.0);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_speeds() {
        let t = two_proc_star();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.proc_count(), 2);
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.proc_speed(ProcId(1)), 2.0);
        assert_eq!(t.mean_link_speed(), 2.0);
        assert_eq!(t.mean_proc_speed(), 1.5);
    }

    #[test]
    fn proc_node_mapping_round_trips() {
        let t = two_proc_star();
        for p in t.proc_ids() {
            assert_eq!(t.proc_of_node(t.node_of_proc(p)), Some(p));
        }
        // The switch is not a processor.
        assert_eq!(t.proc_of_node(NodeId(2)), None);
    }

    #[test]
    fn masked_view_hides_failed_links_only() {
        let t = two_proc_star();
        // Kill the p0 -> switch direction of the first cable.
        let dead = t.hops_from(NodeId(0))[0].link;
        let view = t.masked(|l| l == dead);
        // Tables are untouched: ids keep meaning the same resources.
        assert_eq!(view.node_count(), t.node_count());
        assert_eq!(view.proc_count(), t.proc_count());
        assert_eq!(view.link_count(), t.link_count());
        assert_eq!(view.link_speed(dead), t.link_speed(dead));
        // Only the failed hop disappeared from the adjacency.
        assert!(view.hops_from(NodeId(0)).is_empty());
        assert_eq!(view.hops_from(NodeId(1)).len(), 1);
        assert_eq!(view.hops_from(NodeId(2)).len(), 2);
        // Masking nothing is the identity on the adjacency.
        let same = t.masked(|_| false);
        for n in t.node_ids() {
            assert_eq!(same.hops_from(n), t.hops_from(n));
        }
    }

    #[test]
    fn signatures_identify_adjacency_views() {
        let t = two_proc_star();
        assert_ne!(t.signature(), 0, "built topologies are signed");
        assert_eq!(
            t.clone().signature(),
            t.signature(),
            "clones share the identity of their immutable original"
        );
        let view = t.masked(|_| false);
        assert_ne!(
            view.signature(),
            t.signature(),
            "masked views are new identities"
        );
        assert_ne!(view.signature(), 0);
        assert_ne!(
            two_proc_star().signature(),
            t.signature(),
            "independent builds never collide"
        );
    }

    #[test]
    fn with_hop_delay_view_keeps_tables_mints_signature() {
        let t = two_proc_star();
        let view = t.with_hop_delay(0.75);
        assert_eq!(view.hop_delay(), 0.75);
        assert_eq!(t.hop_delay(), 0.0, "original is untouched");
        assert_eq!(view.node_count(), t.node_count());
        assert_eq!(view.link_count(), t.link_count());
        for n in t.node_ids() {
            assert_eq!(view.hops_from(n), t.hops_from(n));
        }
        assert_ne!(view.signature(), t.signature());
        assert_ne!(view.signature(), 0);
        // Same-delay view is still a new identity (delay is part of the
        // timing semantics a cache must not conflate).
        assert_ne!(t.with_hop_delay(0.0).signature(), t.signature());
    }

    #[test]
    fn adjacency_expands_duplex_cables() {
        let t = two_proc_star();
        // Each processor has one outgoing hop; switch has two.
        assert_eq!(t.hops_from(NodeId(0)).len(), 1);
        assert_eq!(t.hops_from(NodeId(1)).len(), 1);
        assert_eq!(t.hops_from(NodeId(2)).len(), 2);
        let h = t.hops_from(NodeId(0))[0];
        assert_eq!(h.from, NodeId(0));
        assert_eq!(h.to, NodeId(2));
    }

    #[test]
    fn connectivity_detection() {
        let t = two_proc_star();
        assert!(t.is_connected());

        let mut b = Topology::builder();
        b.add_processor(1.0);
        b.add_processor(1.0);
        // No links at all: disconnected.
        let t = b.build().unwrap();
        assert!(!t.is_connected());
    }

    #[test]
    fn homogeneity_detection() {
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        let (c, _) = b.add_processor(1.0);
        b.add_duplex_cable(a, c, 1.0);
        assert!(b.build().unwrap().is_homogeneous());
        assert!(!two_proc_star().is_homogeneous());
    }

    #[test]
    fn half_duplex_hops_both_ways_one_link() {
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        let (c, _) = b.add_processor(1.0);
        let l = b.add_half_duplex_cable(a, c, 1.0);
        let t = b.build().unwrap();
        assert_eq!(t.link_count(), 1);
        assert_eq!(t.hops_from(a)[0].link, l);
        assert_eq!(t.hops_from(c)[0].link, l);
        assert!(t.link(l).permits(a, c));
        assert!(t.link(l).permits(c, a));
    }

    #[test]
    fn bus_connects_all_pairs() {
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        let (c, _) = b.add_processor(1.0);
        let (d, _) = b.add_processor(1.0);
        let l = b.add_bus(vec![a, c, d], 2.0);
        let t = b.build().unwrap();
        assert_eq!(t.hops_from(a).len(), 2);
        assert!(t.link(l).permits(a, d));
        assert!(t.link(l).permits(d, c));
        assert!(!t.link(l).permits(a, a));
        assert!(t.is_connected());
    }

    #[test]
    fn directed_link_permits_one_direction() {
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        let (c, _) = b.add_processor(1.0);
        let l = b.add_directed_link(a, c, 1.0);
        let t = b.build().unwrap();
        assert!(t.link(l).permits(a, c));
        assert!(!t.link(l).permits(c, a));
    }

    #[test]
    fn build_rejects_bad_inputs() {
        // No processors.
        assert!(matches!(
            Topology::builder().build(),
            Err(TopoError::NoProcessors)
        ));

        // Bad processor speed.
        let mut b = Topology::builder();
        b.add_processor(0.0);
        assert!(matches!(b.build(), Err(TopoError::InvalidProcSpeed(_, _))));

        // Bad link speed.
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        let (c, _) = b.add_processor(1.0);
        b.add_directed_link(a, c, f64::NAN);
        assert!(matches!(b.build(), Err(TopoError::InvalidSpeed(_))));

        // Self link.
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        b.add_directed_link(a, a, 1.0);
        assert!(matches!(b.build(), Err(TopoError::SelfLink(_))));

        // Unknown endpoint.
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        b.add_directed_link(a, NodeId(99), 1.0);
        assert!(matches!(b.build(), Err(TopoError::UnknownNode(_))));

        // Degenerate bus.
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        b.add_bus(vec![a], 1.0);
        assert!(matches!(b.build(), Err(TopoError::BadBus(_))));

        // Bus with repeated member.
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        let (c, _) = b.add_processor(1.0);
        b.add_bus(vec![a, c, a], 1.0);
        assert!(matches!(b.build(), Err(TopoError::BadBus(_))));
    }
}
