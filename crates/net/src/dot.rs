//! Graphviz DOT export for topologies.
//!
//! Processors render as boxes (with their speed), switches as circles,
//! cables as edges labelled with the link speed. Full-duplex cables
//! (two directed links between the same vertices) are drawn once as an
//! undirected edge; lone directed links keep their arrowheads; buses
//! render as a diamond hub.

use crate::topology::{LinkConn, NodeKind, Topology};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Render the topology as a DOT graph.
pub fn to_dot(t: &Topology, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitise(name));
    let _ = writeln!(out, "  layout=neato; overlap=false;");
    for n in t.node_ids() {
        let node = t.node(n);
        match node.kind {
            NodeKind::Processor(p) => {
                let label = node.label.clone().unwrap_or_else(|| format!("{p}"));
                let _ = writeln!(
                    out,
                    "  n{} [shape=box, label=\"{}\\ns={}\"];",
                    n.0,
                    label,
                    trim_num(t.proc_speed(p))
                );
            }
            NodeKind::Switch => {
                let label = node.label.clone().unwrap_or_else(|| format!("{n}"));
                let _ = writeln!(out, "  n{} [shape=circle, label=\"{label}\"];", n.0);
            }
        }
    }

    // Pair up the two directions of full-duplex cables.
    let mut drawn: HashSet<(u32, u32, u64)> = HashSet::new();
    for l in t.link_ids() {
        let link = t.link(l);
        match &link.conn {
            LinkConn::Directed { from, to } => {
                let key = (from.0.min(to.0), from.0.max(to.0), link.speed.to_bits());
                // Is there a reverse twin with the same speed?
                let twin = t.link_ids().any(|m| {
                    m != l
                        && matches!(
                            &t.link(m).conn,
                            LinkConn::Directed { from: f2, to: t2 }
                                if f2 == to && t2 == from
                        )
                        && t.link(m).speed == link.speed
                });
                if twin {
                    if drawn.insert(key) {
                        let _ = writeln!(
                            out,
                            "  n{} -- n{} [label=\"{}\"];",
                            from.0,
                            to.0,
                            trim_num(link.speed)
                        );
                    }
                } else {
                    let _ = writeln!(
                        out,
                        "  n{} -- n{} [dir=forward, label=\"{}\"];",
                        from.0,
                        to.0,
                        trim_num(link.speed)
                    );
                }
            }
            LinkConn::Bidirectional { a, b } => {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [style=dashed, label=\"{} (half)\"];",
                    a.0,
                    b.0,
                    trim_num(link.speed)
                );
            }
            LinkConn::Bus { members } => {
                let _ = writeln!(
                    out,
                    "  bus{} [shape=diamond, label=\"bus\\ns={}\"];",
                    l.0,
                    trim_num(link.speed)
                );
                for m in members {
                    let _ = writeln!(out, "  n{} -- bus{};", m.0, l.0);
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn trim_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

fn sanitise(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().unwrap().is_ascii_digit() {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, SpeedDist};
    use crate::topology::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_renders_every_node_and_one_edge_per_cable() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = gen::star(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(2.0), &mut rng);
        let dot = to_dot(&t, "star");
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=circle"));
        // 3 duplex cables draw as 3 undirected edges, not 6.
        assert_eq!(dot.matches(" -- ").count(), 3);
        assert!(dot.contains("label=\"2\""));
    }

    #[test]
    fn lone_directed_link_keeps_arrow() {
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        let (c, _) = b.add_processor(1.0);
        b.add_directed_link(a, c, 3.0);
        let t = b.build().unwrap();
        let dot = to_dot(&t, "oneway");
        assert!(dot.contains("dir=forward"));
    }

    #[test]
    fn bus_renders_hub_and_spokes() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = gen::shared_bus(4, SpeedDist::Fixed(1.0), 1.0, &mut rng);
        let dot = to_dot(&t, "bus");
        assert!(dot.contains("shape=diamond"));
        assert_eq!(dot.matches("-- bus0").count(), 4);
    }

    #[test]
    fn half_duplex_renders_dashed() {
        let mut b = Topology::builder();
        let (a, _) = b.add_processor(1.0);
        let (c, _) = b.add_processor(1.0);
        b.add_half_duplex_cable(a, c, 1.0);
        let t = b.build().unwrap();
        assert!(to_dot(&t, "hd").contains("style=dashed"));
    }
}
