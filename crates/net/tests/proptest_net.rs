//! Property-based tests of topology construction and generators.

use es_net::gen::{self, SpeedDist, WanConfig};
use es_net::{LinkConn, NodeKind, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn wan_strategy() -> impl Strategy<Value = Topology> {
    (1usize..80, any::<u64>(), prop::bool::ANY).prop_map(|(procs, seed, hetero)| {
        let cfg = if hetero {
            WanConfig::heterogeneous(procs)
        } else {
            WanConfig::homogeneous(procs)
        };
        gen::random_switched_wan(&cfg, &mut StdRng::seed_from_u64(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wans_are_connected_with_exact_proc_count(t in wan_strategy()) {
        prop_assert!(t.is_connected());
        prop_assert!(t.proc_count() >= 1);
        // Every processor maps to a distinct vertex and back.
        let mut seen = std::collections::HashSet::new();
        for p in t.proc_ids() {
            let n = t.node_of_proc(p);
            prop_assert!(seen.insert(n), "two processors share vertex {n}");
            prop_assert_eq!(t.proc_of_node(n), Some(p));
            prop_assert!(matches!(t.node(n).kind, NodeKind::Processor(q) if q == p));
        }
    }

    #[test]
    fn adjacency_agrees_with_link_permissions(t in wan_strategy()) {
        for n in t.node_ids() {
            for hop in t.hops_from(n) {
                prop_assert_eq!(hop.from, n);
                prop_assert!(t.link(hop.link).permits(hop.from, hop.to),
                    "adjacency hop not permitted by its link");
            }
        }
    }

    #[test]
    fn every_directed_link_appears_in_adjacency(t in wan_strategy()) {
        for l in t.link_ids() {
            if let LinkConn::Directed { from, to } = t.link(l).conn {
                prop_assert!(t
                    .hops_from(from)
                    .iter()
                    .any(|h| h.link == l && h.to == to));
            }
        }
    }

    #[test]
    fn mean_speeds_are_within_sampled_ranges(t in wan_strategy()) {
        let mls = t.mean_link_speed();
        let mps = t.mean_proc_speed();
        prop_assert!((1.0..=10.0).contains(&mls), "MLS {mls}");
        prop_assert!((1.0..=10.0).contains(&mps), "MPS {mps}");
    }

    #[test]
    fn generators_scale_with_parameters(procs in 1usize..30, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = gen::star(procs, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
        prop_assert_eq!(s.proc_count(), procs);
        prop_assert_eq!(s.link_count(), 2 * procs);
        prop_assert!(s.is_connected());

        let f = gen::fully_connected(procs, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
        prop_assert_eq!(f.proc_count(), procs);
        prop_assert_eq!(f.link_count(), procs * (procs - 1));
        if procs > 1 {
            prop_assert!(f.is_connected());
        }
    }
}
