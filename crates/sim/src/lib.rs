//! # es-sim — experiment harness reproducing the paper's evaluation
//!
//! §6 of Han & Wang evaluates OIHSA and BBSA against BA on randomly
//! generated instances, reporting the **percentage improvement in
//! makespan over BA** along two axes (CCR and processor count) in two
//! speed regimes (homogeneous / heterogeneous) — Figures 1–4. This
//! crate is the machinery that regenerates those figures:
//!
//! * [`stats`] — means, standard deviations, confidence intervals and
//!   the improvement ratio;
//! * [`runner`] — a work-stealing-ish parallel map over experiment
//!   cells (std scoped threads draining a shared atomic work counter),
//!   because a full paper sweep is thousands of independent
//!   scheduling runs;
//! * [`experiment`] — cell and figure definitions, execution, and the
//!   text tables the CLI prints;
//! * [`robustness`] — a fault-injection sweep (intensity × scheduler)
//!   measuring degradation under perturbed execution and the success
//!   rate / cost of failure-aware schedule repair;
//! * [`online`] — the online multi-DAG sweep (arrival rate ×
//!   scheduler × backend → per-tenant SLO and fairness tables,
//!   optionally composed with the fault model for a "production day"
//!   scenario);
//! * [`service`] — deterministic request-mix generation for the
//!   es-serve driver's load generator and chaos harness (DESIGN.md
//!   §13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
pub mod experiment;
pub mod online;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod service;
pub mod stats;

pub use backends::{compare_backends, BackendCompareSpec, BackendRow};
pub use experiment::{
    fig1, fig2, fig3, fig4, fig_pair, run_cell, run_cell_adaptive, CellResult, CellSpec,
    FigureParams, FigureResult,
};
pub use online::{
    run_online_cell, run_online_sweep, OnlineCell, OnlineSweepSpec, ONLINE_SCHEDULERS,
};
pub use robustness::{
    run_robustness, run_robustness_backend, RobustnessCell, RobustnessSpec, ROBUSTNESS_SCHEDULERS,
};
pub use runner::{parallel_map, try_parallel_map, ItemPanic, Threads};
pub use service::{ServiceMix, ServiceRequest, SERVICE_ALGOS};
pub use stats::{improvement_percent, Summary};
