//! Service scenario generator: deterministic request mixes for the
//! es-serve driver's load generator and chaos harness.
//!
//! The robustness story of DESIGN.md §13 needs realistic *service*
//! traffic — a stream of scheduling requests mixing algorithms,
//! instance sizes, speed regimes and the occasional fault-injected
//! replay — that is nonetheless **fully reproducible**: the chaos
//! invariant ("every admitted request's schedule is bitwise-identical
//! to a single-process run") is only checkable when the reference run
//! can regenerate the exact same requests. So, as everywhere else in
//! this workspace, the mix is a pure function of its config: one seed,
//! one [`ServiceMix`], one request stream.

use es_workload::{InstanceConfig, Setting};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Wire-style algorithm ids a service request can name. These are the
/// lowercase ids `es-wire`'s `AlgoId::parse` accepts (the sim layer
/// stays independent of the wire crate; the strings are the contract).
pub const SERVICE_ALGOS: [&str; 5] = ["ba-static", "ba", "oihsa", "oihsa-probe", "bbsa"];

/// One scheduling request of a generated service scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceRequest {
    /// Wire-style algorithm id (an entry of [`SERVICE_ALGOS`]).
    pub algo: &'static str,
    /// Owning tenant (derived from the request's instance seed, so it
    /// is index-addressable like the seed itself).
    pub tenant: u32,
    /// Deterministic generator coordinates of the instance to solve.
    pub instance: InstanceConfig,
    /// Per-request deadline in milliseconds (`0` = driver default).
    pub deadline_ms: u32,
    /// When set, the request also asks for a fault-injected replay +
    /// repair at this intensity (in `[0, 1]`).
    pub fault_intensity: Option<f64>,
}

/// Configuration of a deterministic service request mix.
///
/// Every field is data, so a mix can travel in a bench config or a CI
/// matrix; [`ServiceMix::generate`] is a pure function of the struct.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceMix {
    /// Number of requests to generate.
    pub requests: usize,
    /// Probability of the heterogeneous speed regime per request.
    pub heterogeneous_share: f64,
    /// Processor counts to draw from (uniformly).
    pub processors: Vec<usize>,
    /// CCR values to draw from (uniformly).
    pub ccrs: Vec<f64>,
    /// Inclusive task-count range per instance.
    pub tasks: (usize, usize),
    /// Algorithms to draw from (uniformly); wire-style ids.
    pub algos: Vec<&'static str>,
    /// Probability that a request carries a fault-injection leg.
    pub fault_share: f64,
    /// Fault intensities to draw from when a request gets one.
    pub fault_intensities: Vec<f64>,
    /// Deadline applied to every request (`0` = driver default).
    pub deadline_ms: u32,
    /// Tenants requests are attributed to (shed accounting). Derived
    /// from each request's instance seed — adding tenants does not
    /// shift the RNG stream of the other draws.
    pub tenants: u32,
    /// Master seed; everything else flows from it.
    pub seed: u64,
}

impl Default for ServiceMix {
    /// A paper-flavored default: the §6 evaluation's parameter ranges
    /// at service scale — small-to-medium instances across both speed
    /// regimes, every scheduler, a 20% fault-replay share.
    fn default() -> Self {
        Self {
            requests: 64,
            heterogeneous_share: 0.5,
            processors: vec![3, 4, 6, 8],
            ccrs: vec![0.1, 0.5, 1.0, 2.0, 5.0],
            tasks: (20, 60),
            algos: SERVICE_ALGOS.to_vec(),
            fault_share: 0.2,
            fault_intensities: vec![0.1, 0.3, 0.5],
            deadline_ms: 0,
            tenants: 3,
            seed: 0x5e57_11ce,
        }
    }
}

/// Domain-separation constant folded into per-request instance seeds
/// so they never alias the figure sweeps' [`es_workload::cell_seed`]
/// streams (which fold their own constants).
const SERVICE_STREAM: u64 = 0x5e72_71ce_5177_a27b;

impl ServiceMix {
    /// Generate the request stream this mix describes. Deterministic:
    /// equal mixes produce equal streams, and each request's instance
    /// seed is itself derived from (mix seed, request index), so any
    /// single request can be regenerated in isolation — which is how
    /// the driver's workers and the bench's reference run agree.
    pub fn generate(&self) -> Vec<ServiceRequest> {
        assert!(
            !self.processors.is_empty() && !self.ccrs.is_empty() && !self.algos.is_empty(),
            "service mix needs at least one processor count, CCR and algorithm"
        );
        assert!(
            self.tasks.0 >= 1 && self.tasks.0 <= self.tasks.1,
            "task range must be non-empty and start at ≥ 1"
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ SERVICE_STREAM);
        (0..self.requests)
            .map(|i| {
                let setting = if rng.random_bool(self.heterogeneous_share) {
                    Setting::Heterogeneous
                } else {
                    Setting::Homogeneous
                };
                let procs = self.processors[rng.random_range(0..self.processors.len())];
                let ccr = self.ccrs[rng.random_range(0..self.ccrs.len())];
                let tasks = rng.random_range(self.tasks.0..=self.tasks.1);
                let algo = self.algos[rng.random_range(0..self.algos.len())];
                let fault_intensity = if self.fault_intensities.is_empty() {
                    None
                } else {
                    rng.random_bool(self.fault_share).then(|| {
                        self.fault_intensities[rng.random_range(0..self.fault_intensities.len())]
                    })
                };
                // The instance seed mixes the master seed with the
                // request index (splitmix-style odd constant) so
                // request i is regenerable without replaying 0..i.
                let instance_seed = (self.seed ^ SERVICE_STREAM)
                    .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                // Tenant from the high seed bits (not the shared RNG),
                // so pre-tenant streams replay unchanged bit for bit.
                #[allow(clippy::cast_possible_truncation)]
                let tenant = ((instance_seed >> 37) % u64::from(self.tenants.max(1))) as u32;
                ServiceRequest {
                    algo,
                    tenant,
                    instance: InstanceConfig::paper(setting, procs, ccr, instance_seed)
                        .with_tasks(tasks),
                    deadline_ms: self.deadline_ms,
                    fault_intensity,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_mixes_generate_equal_streams() {
        let mix = ServiceMix::default();
        assert_eq!(mix.generate(), mix.generate());
        let other = ServiceMix {
            seed: mix.seed + 1,
            ..mix.clone()
        };
        assert_ne!(mix.generate(), other.generate());
    }

    #[test]
    fn stream_respects_the_mix_bounds() {
        let mix = ServiceMix {
            requests: 200,
            ..ServiceMix::default()
        };
        for req in mix.generate() {
            assert!(req.tenant < mix.tenants);
            assert!(mix.processors.contains(&req.instance.processors));
            assert!(mix.ccrs.contains(&req.instance.ccr));
            let t = req.instance.tasks.expect("mix always sets task count");
            assert!(t >= mix.tasks.0 && t <= mix.tasks.1);
            assert!(mix.algos.contains(&req.algo));
            if let Some(f) = req.fault_intensity {
                assert!(mix.fault_intensities.contains(&f));
            }
        }
    }

    #[test]
    fn every_algorithm_and_both_regimes_appear() {
        let mix = ServiceMix {
            requests: 300,
            ..ServiceMix::default()
        };
        let stream = mix.generate();
        for algo in SERVICE_ALGOS {
            assert!(
                stream.iter().any(|r| r.algo == algo),
                "algorithm {algo} never drawn in 300 requests"
            );
        }
        assert!(stream
            .iter()
            .any(|r| matches!(r.instance.setting, Setting::Heterogeneous)));
        assert!(stream
            .iter()
            .any(|r| matches!(r.instance.setting, Setting::Homogeneous)));
        let faulted = stream
            .iter()
            .filter(|r| r.fault_intensity.is_some())
            .count();
        assert!(
            faulted > 0,
            "fault share of 0.2 never drawn in 300 requests"
        );
    }

    #[test]
    fn request_seeds_are_distinct_and_index_addressable() {
        let mix = ServiceMix::default();
        let stream = mix.generate();
        let mut seeds: Vec<u64> = stream.iter().map(|r| r.instance.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), stream.len(), "instance seeds collide");
        // Regenerating the mix reproduces request i's seed without
        // consuming the RNG stream differently.
        assert_eq!(stream[7].instance.seed, mix.generate()[7].instance.seed);
    }

    #[test]
    fn generated_instances_schedule() {
        use es_core::{ListScheduler, Scheduler};
        let mix = ServiceMix {
            requests: 6,
            ..ServiceMix::default()
        };
        for req in mix.generate() {
            let inst = es_workload::generate(&req.instance);
            ListScheduler::oihsa()
                .schedule(&inst.dag, &inst.topo)
                .expect("service instances are schedulable");
        }
    }
}
