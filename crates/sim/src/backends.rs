//! Cross-backend makespan comparison on paper-style workload grids.
//!
//! One instance stream, three link models: for each
//! [`LinkBackend`] the instance is transformed with
//! [`LinkBackend::prepare`] and scheduled by that backend's natural
//! scheduler family — the slotted pair (`ba_static`, `oihsa`) on the
//! slot-queue and store-and-forward models, BBSA on the fluid model.
//! Reported makespans are comparable because every backend schedules
//! the *same* underlying workload; the store-and-forward rows pay the
//! model's quantization + per-hop forwarding latency, which is exactly
//! the realism gap the comparison quantifies.

use crate::runner::parallel_map;
use es_core::{validate, BbsaScheduler, LinkBackend, ListScheduler, Scheduler};
use es_workload::{cell_seed, generate, InstanceConfig, Setting};

/// Parameters of one backend-comparison run (a single workload cell
/// scheduled under every backend in `backends`).
#[derive(Clone, Debug)]
pub struct BackendCompareSpec {
    /// Speed regime of the generated instances.
    pub setting: Setting,
    /// Processor count of the generated topologies.
    pub processors: usize,
    /// Communication-to-computation ratio of the generated DAGs.
    pub ccr: f64,
    /// Repetitions (independent instances) per backend row.
    pub reps: usize,
    /// Base seed; per-rep seeds come from [`cell_seed`].
    pub base_seed: u64,
    /// Override the paper's task count (for smoke runs).
    pub tasks: Option<usize>,
    /// Validate every schedule against the transformed instance.
    pub validate: bool,
    /// Backends to compare; [`LinkBackend::all`] for the full ladder.
    pub backends: Vec<LinkBackend>,
    /// Worker threads (rows are independent).
    pub threads: usize,
}

impl BackendCompareSpec {
    /// A paper-grid cell: homogeneous, 8 processors, CCR 1, validated,
    /// across the full backend ladder.
    #[must_use]
    pub fn paper_cell(reps: usize, tasks: Option<usize>, base_seed: u64) -> Self {
        Self {
            setting: Setting::Homogeneous,
            processors: 8,
            ccr: 1.0,
            reps,
            base_seed,
            tasks,
            validate: true,
            backends: LinkBackend::all(),
            threads: crate::Threads::resolve().get(),
        }
    }
}

/// One row of the comparison: a (backend, scheduler) pair's mean
/// makespan over the spec's repetitions.
#[derive(Clone, Debug)]
pub struct BackendRow {
    /// Backend label (includes store-and-forward timing parameters).
    pub backend: String,
    /// Scheduler that produced the schedules.
    pub scheduler: &'static str,
    /// Mean makespan over the repetitions.
    pub mean_makespan: f64,
    /// Mean per-instance ratio of this row's makespan to the slot
    /// backend's OIHSA makespan on the same instance (the ladder
    /// baseline); `1.0` for the baseline row itself.
    pub vs_slot_oihsa: f64,
}

/// The scheduler family native to a backend, as `(label, scheduler)`
/// pairs. Slot-family backends run the paper's slotted pair (with the
/// backend's switching adaptation); the fluid backend runs BBSA, the
/// only scheduler built on bandwidth sharing.
fn roster(backend: LinkBackend) -> Vec<(&'static str, Box<dyn Scheduler>)> {
    match backend {
        LinkBackend::SlotQueue | LinkBackend::StoreForward(_) => vec![
            (
                "ba_static",
                Box::new(ListScheduler::with_config(
                    backend.adapt(es_core::ListConfig::ba_static()),
                )) as Box<dyn Scheduler>,
            ),
            (
                "oihsa",
                Box::new(ListScheduler::with_config(
                    backend.adapt(es_core::ListConfig::oihsa()),
                )),
            ),
        ],
        LinkBackend::Fluid => vec![("bbsa", Box::new(BbsaScheduler::new()) as Box<dyn Scheduler>)],
    }
}

/// Run the comparison: one [`BackendRow`] per (backend, scheduler), in
/// `spec.backends` order with each backend's roster order preserved.
///
/// # Panics
/// Panics if any scheduler fails on a generated instance or (with
/// `spec.validate`) produces an invalid schedule — both indicate bugs.
#[allow(clippy::cast_precision_loss)]
pub fn compare_backends(spec: &BackendCompareSpec) -> Vec<BackendRow> {
    // Baseline stream: slot-backend OIHSA makespan per instance.
    let baseline: Vec<f64> = (0..spec.reps)
        .map(|rep| schedule_rep(spec, rep, LinkBackend::SlotQueue, &ListScheduler::oihsa()))
        .collect();

    let items: Vec<(LinkBackend, usize)> = spec
        .backends
        .iter()
        .flat_map(|&b| (0..roster(b).len()).map(move |i| (b, i)))
        .collect();
    parallel_map(&items, spec.threads, |&(backend, idx)| {
        let (label, scheduler) = roster(backend).swap_remove(idx);
        let mut sum = 0.0f64;
        let mut ratio_sum = 0.0f64;
        for rep in 0..spec.reps {
            let ms = schedule_rep(spec, rep, backend, scheduler.as_ref());
            sum += ms;
            ratio_sum += ms / baseline[rep];
        }
        let n = spec.reps.max(1) as f64;
        BackendRow {
            backend: backend.to_string(),
            scheduler: label,
            mean_makespan: sum / n,
            vs_slot_oihsa: ratio_sum / n,
        }
    })
}

/// Schedule one repetition's instance under one backend and return the
/// makespan.
fn schedule_rep(
    spec: &BackendCompareSpec,
    rep: usize,
    backend: LinkBackend,
    scheduler: &dyn Scheduler,
) -> f64 {
    let seed = cell_seed(spec.base_seed, spec.setting, spec.processors, spec.ccr, rep);
    let mut cfg = InstanceConfig::paper(spec.setting, spec.processors, spec.ccr, seed);
    cfg.tasks = spec.tasks;
    let inst = generate(&cfg);
    let (dag, topo) = backend.prepare(&inst.dag, &inst.topo);
    let schedule = scheduler.schedule(&dag, &topo).unwrap_or_else(|e| {
        panic!(
            "{} failed on seed {seed} ({backend}): {e}",
            scheduler.name()
        )
    });
    if spec.validate {
        validate::validate(&dag, &topo, &schedule).unwrap_or_else(|r| {
            panic!(
                "{} produced invalid schedule on seed {seed} ({backend}): {r:?}",
                scheduler.name()
            )
        });
    }
    schedule.makespan
}

/// Render rows as the Markdown table EXPERIMENTS.md embeds.
#[must_use]
pub fn markdown_table(spec: &BackendCompareSpec, rows: &[BackendRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| backend | scheduler | mean makespan | vs slot/OIHSA |\n|---|---|---:|---:|"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {:.3}× |",
            r.backend, r.scheduler, r.mean_makespan, r.vs_slot_oihsa
        );
    }
    let _ = writeln!(
        out,
        "\n({:?} setting, {} processors, CCR {}, {} reps, seed {}, tasks {:?})",
        spec.setting, spec.processors, spec.ccr, spec.reps, spec.base_seed, spec.tasks
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> BackendCompareSpec {
        let mut spec = BackendCompareSpec::paper_cell(2, Some(16), 42);
        spec.processors = 4;
        spec.threads = 2;
        spec
    }

    #[test]
    fn full_ladder_produces_one_row_per_pair() {
        let spec = tiny_spec();
        let rows = compare_backends(&spec);
        // slot×2 + fluid×1 + saf×2.
        assert_eq!(rows.len(), 5);
        let pairs: Vec<(&str, &str)> = rows
            .iter()
            .map(|r| (r.backend.as_str(), r.scheduler))
            .collect();
        assert_eq!(
            pairs,
            [
                ("slot", "ba_static"),
                ("slot", "oihsa"),
                ("fluid", "bbsa"),
                ("saf:1:0.5", "ba_static"),
                ("saf:1:0.5", "oihsa"),
            ]
        );
        for r in &rows {
            assert!(r.mean_makespan > 0.0, "{}/{}", r.backend, r.scheduler);
            assert!(r.vs_slot_oihsa > 0.0);
        }
        // The slot/OIHSA row is the baseline of its own ratio.
        assert!((rows[1].vs_slot_oihsa - 1.0).abs() < 1e-12);
        // Store-and-forward can only add work (quantization rounds up,
        // latency delays hops): its OIHSA row must not beat slot OIHSA
        // by more than scheduling noise.
        assert!(
            rows[4].vs_slot_oihsa >= 0.9,
            "saf OIHSA suspiciously fast: {}",
            rows[4].vs_slot_oihsa
        );
    }

    #[test]
    fn comparison_is_deterministic_across_thread_counts() {
        let mut spec = tiny_spec();
        let a = compare_backends(&spec);
        spec.threads = 1;
        let b = compare_backends(&spec);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mean_makespan.to_bits(), y.mean_makespan.to_bits());
            assert_eq!(x.vs_slot_oihsa.to_bits(), y.vs_slot_oihsa.to_bits());
        }
    }

    #[test]
    fn markdown_table_has_a_row_per_result() {
        let spec = tiny_spec();
        let rows = compare_backends(&spec);
        let md = markdown_table(&spec, &rows);
        assert_eq!(
            md.lines().filter(|l| l.starts_with("| ")).count(),
            rows.len() + 1
        );
        assert!(md.contains("| slot | oihsa |"));
        assert!(md.contains("| fluid | bbsa |"));
    }
}
