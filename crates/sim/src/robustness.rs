//! Robustness sweep: fault intensity × scheduler → degradation and
//! repair statistics.
//!
//! For each (scheduler, intensity) pair this module replays the
//! scheduler's output under two seeded [`FaultPlan`]s per repetition:
//!
//! * a **soft** plan (weight jitter, link degradation, transient
//!   outages) replayed with [`execute_with`] — the realized-over-
//!   scheduled makespan ratio is the *degradation*;
//! * a **hard** plan (the same soft faults plus one processor and one
//!   link hard failure) — [`execute_with`] reports how often the
//!   original schedule becomes infeasible, and [`repair()`]
//!   reports how often an audit-clean repaired schedule exists and how
//!   much makespan it costs.
//!
//! All randomness flows from [`cell_seed`] plus a fault-stream
//! constant, so a sweep is reproducible bit for bit at any thread
//! count (cells are independent; the runner preserves input order).

use crate::runner::parallel_map;
use es_core::{execute_with, repair, FaultPlan, FaultSpec, LinkBackend, ListScheduler, Scheduler};
use es_workload::{cell_seed, generate, InstanceConfig, Setting};

/// Parameters of one robustness sweep (one workload cell swept over
/// fault intensities for every scheduler under test).
#[derive(Clone, Debug)]
pub struct RobustnessSpec {
    /// Speed regime of the generated instances.
    pub setting: Setting,
    /// Processor count of the generated topologies.
    pub processors: usize,
    /// Communication-to-computation ratio of the generated DAGs.
    pub ccr: f64,
    /// Repetitions (independent instances) per (scheduler, intensity).
    pub reps: usize,
    /// Base seed; per-rep seeds come from [`cell_seed`].
    pub base_seed: u64,
    /// Override the paper's task count (for smoke runs).
    pub tasks: Option<usize>,
    /// Fault intensities to sweep, each in `[0, 1]`.
    pub intensities: Vec<f64>,
    /// Worker threads for the sweep. Callers should seed this from the
    /// one resolved [`crate::runner::Threads`] config (`ES_THREADS`
    /// override, else the CPU count) rather than consulting
    /// `default_threads()` ad hoc; the CLI inherits it through
    /// [`crate::FigureParams::default`].
    pub threads: usize,
}

/// Aggregated robustness statistics for one (scheduler, intensity)
/// pair.
#[derive(Clone, Debug)]
pub struct RobustnessCell {
    /// Scheduler label (`ba_static` or `oihsa`).
    pub scheduler: &'static str,
    /// Fault intensity this row was measured at.
    pub intensity: f64,
    /// Repetitions aggregated into this row.
    pub reps: usize,
    /// Mean realized/scheduled makespan ratio under the soft plan.
    pub mean_degradation: f64,
    /// 95th percentile of the same ratio (by sorted index).
    pub p95_degradation: f64,
    /// Share of reps where the hard plan made the original schedule
    /// infeasible (some decision outlives a dead resource).
    pub infeasible_rate: f64,
    /// Share of reps where [`repair()`] produced an audit-clean schedule.
    pub repair_success_rate: f64,
    /// Mean repaired/original makespan ratio among successful repairs
    /// (`0.0` when no repair succeeded).
    pub mean_repair_inflation: f64,
    /// Mean number of re-placed tasks among successful repairs.
    pub mean_moved_tasks: f64,
    /// Share of successful repairs that needed the basic-insertion
    /// fallback.
    pub fallback_rate: f64,
}

/// Scheduler labels swept by [`run_robustness`], in output order.
pub const ROBUSTNESS_SCHEDULERS: [&str; 2] = ["ba_static", "oihsa"];

fn scheduler_for(label: &str) -> ListScheduler {
    match label {
        "ba_static" => ListScheduler::ba_static(),
        "oihsa" => ListScheduler::oihsa(),
        other => panic!("unknown robustness scheduler {other}"),
    }
}

/// Domain-separation constant folded into every fault-stream seed so
/// fault draws never alias the instance-generation stream.
const FAULT_STREAM: u64 = 0xFA17_5EED_0000_0000;

/// Seed for the fault stream of one (instance, intensity) pair — the
/// same derivation everywhere (sweep, CLI export, CI smoke) so every
/// consumer draws the identical [`FaultPlan`].
pub fn fault_seed(instance_seed: u64, intensity: f64) -> u64 {
    instance_seed ^ FAULT_STREAM ^ intensity.to_bits().rotate_left(17)
}

/// 95th percentile by sorted index (nearest-rank); `0.0` for an empty
/// sample.
fn p95(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((samples.len() as f64) * 0.95).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

#[allow(clippy::cast_precision_loss)]
fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Run the sweep: one [`RobustnessCell`] per (scheduler, intensity),
/// schedulers outermost, in [`ROBUSTNESS_SCHEDULERS`] order.
///
/// # Panics
/// Panics if a scheduler fails on a generated instance or a slotted
/// schedule fails to replay — both indicate a bug, and the runner
/// reports the offending work item's index and message.
pub fn run_robustness(spec: &RobustnessSpec) -> Vec<RobustnessCell> {
    // The slot-queue transform is a pair of plain clones (the topology
    // keeps its signature), so delegating here is bitwise-neutral.
    run_robustness_backend(spec, LinkBackend::SlotQueue)
}

/// [`run_robustness`] against a specific link-model backend: instances
/// are transformed with [`LinkBackend::prepare`] and the schedulers'
/// switching is adapted with [`LinkBackend::adapt`] before the fault
/// sweep. The fluid backend leaves the slotted sweep schedulers
/// untouched (only BBSA runs natively on fluid links), so its cells
/// equal the slot-queue cells by construction.
pub fn run_robustness_backend(spec: &RobustnessSpec, backend: LinkBackend) -> Vec<RobustnessCell> {
    let items: Vec<(&'static str, f64)> = ROBUSTNESS_SCHEDULERS
        .iter()
        .flat_map(|&s| spec.intensities.iter().map(move |&i| (s, i)))
        .collect();
    parallel_map(&items, spec.threads, |&(label, intensity)| {
        run_pair(spec, backend, label, intensity)
    })
}

#[allow(clippy::cast_precision_loss)]
fn run_pair(
    spec: &RobustnessSpec,
    backend: LinkBackend,
    label: &'static str,
    intensity: f64,
) -> RobustnessCell {
    let scheduler = ListScheduler::with_config(backend.adapt(*scheduler_for(label).config()));
    let mut degradation = Vec::with_capacity(spec.reps);
    let mut infeasible = 0usize;
    let mut successes = 0usize;
    let mut fallbacks = 0usize;
    let mut inflation_sum = 0.0f64;
    let mut moved_sum = 0usize;

    for rep in 0..spec.reps {
        let seed = cell_seed(spec.base_seed, spec.setting, spec.processors, spec.ccr, rep);
        let mut cfg = InstanceConfig::paper(spec.setting, spec.processors, spec.ccr, seed);
        cfg.tasks = spec.tasks;
        let inst = generate(&cfg);
        let (dag, topo) = backend.prepare(&inst.dag, &inst.topo);
        let schedule = scheduler
            .schedule(&dag, &topo)
            .unwrap_or_else(|e| panic!("{label} failed on seed {seed}: {e}"));
        let fseed = fault_seed(seed, intensity);

        let soft = FaultPlan::seeded(
            &dag,
            &topo,
            &FaultSpec::soft(intensity, schedule.makespan),
            fseed,
        );
        let perturbed = execute_with(&dag, &topo, &schedule, &soft)
            .unwrap_or_else(|e| panic!("{label} replay failed on seed {seed}: {e}"));
        degradation.push(perturbed.realized_makespan() / schedule.makespan);

        let hard = FaultPlan::seeded(
            &dag,
            &topo,
            &FaultSpec {
                intensity,
                horizon: schedule.makespan,
                kill_proc: true,
                kill_link: true,
            },
            fseed.wrapping_add(1),
        );
        let under_failure = execute_with(&dag, &topo, &schedule, &hard)
            .unwrap_or_else(|e| panic!("{label} replay failed on seed {seed}: {e}"));
        if !under_failure.is_feasible() {
            infeasible += 1;
        }
        if let Ok(outcome) = repair(&dag, &topo, &schedule, &hard) {
            successes += 1;
            inflation_sum += outcome.schedule.makespan / schedule.makespan;
            moved_sum += outcome.moved_tasks.len();
            if outcome.used_fallback {
                fallbacks += 1;
            }
        }
    }

    let mean_degradation = degradation.iter().sum::<f64>() / spec.reps.max(1) as f64;
    RobustnessCell {
        scheduler: label,
        intensity,
        reps: spec.reps,
        mean_degradation,
        p95_degradation: p95(&mut degradation),
        infeasible_rate: ratio(infeasible, spec.reps),
        repair_success_rate: ratio(successes, spec.reps),
        mean_repair_inflation: if successes == 0 {
            0.0
        } else {
            inflation_sum / successes as f64
        },
        mean_moved_tasks: ratio(moved_sum, successes),
        fallback_rate: ratio(fallbacks, successes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> RobustnessSpec {
        RobustnessSpec {
            setting: Setting::Homogeneous,
            processors: 4,
            ccr: 1.0,
            reps: 3,
            base_seed: 11,
            tasks: Some(20),
            intensities: vec![0.0, 0.5],
            threads: 2,
        }
    }

    #[test]
    fn sweep_shape_and_order() {
        let cells = run_robustness(&tiny_spec());
        assert_eq!(cells.len(), ROBUSTNESS_SCHEDULERS.len() * 2);
        assert_eq!(cells[0].scheduler, "ba_static");
        assert_eq!(cells[2].scheduler, "oihsa");
        assert_eq!(cells[0].intensity.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let mut spec = tiny_spec();
        let a = run_robustness(&spec);
        spec.threads = 1;
        let b = run_robustness(&spec);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mean_degradation.to_bits(), y.mean_degradation.to_bits());
            assert_eq!(x.p95_degradation.to_bits(), y.p95_degradation.to_bits());
            assert_eq!(
                x.mean_repair_inflation.to_bits(),
                y.mean_repair_inflation.to_bits()
            );
            assert_eq!(
                x.repair_success_rate.to_bits(),
                y.repair_success_rate.to_bits()
            );
        }
    }

    #[test]
    fn zero_intensity_soft_plan_does_not_degrade() {
        let cells = run_robustness(&tiny_spec());
        for c in cells.iter().filter(|c| c.intensity < 1e-12) {
            // ASAP replay can only finish at or before the schedule.
            assert!(
                c.mean_degradation <= 1.0 + 1e-9,
                "{}: {}",
                c.scheduler,
                c.mean_degradation
            );
            assert!(c.mean_degradation > 0.0);
        }
    }

    #[test]
    fn rates_are_probabilities_and_repairs_mostly_succeed() {
        let cells = run_robustness(&tiny_spec());
        for c in &cells {
            for r in [c.infeasible_rate, c.repair_success_rate, c.fallback_rate] {
                assert!((0.0..=1.0).contains(&r), "{}: {r}", c.scheduler);
            }
            assert!(c.p95_degradation >= c.mean_degradation - 1e-9);
            assert!(
                c.repair_success_rate > 0.5,
                "{} at {}: success {}",
                c.scheduler,
                c.intensity,
                c.repair_success_rate
            );
        }
    }

    #[test]
    fn p95_nearest_rank() {
        let mut xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p95(&mut xs).to_bits(), 95.0f64.to_bits());
        let mut one = vec![7.0];
        assert_eq!(p95(&mut one).to_bits(), 7.0f64.to_bits());
        assert_eq!(p95(&mut []).to_bits(), 0.0f64.to_bits());
    }
}
