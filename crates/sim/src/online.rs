//! Online sweep: arrival rate × scheduler × backend → SLO and
//! fairness tables (DESIGN.md §15).
//!
//! Each cell materialises one seeded arrival script (same script for
//! every scheduler and backend at a given rate, so columns compare on
//! identical load), runs the online engine on one shared topology, and
//! aggregates the per-job SLO metrics. With a fault intensity set, the
//! sweep becomes the "production day" scenario: every retired job's
//! schedule is replayed under a seeded link-failure [`FaultPlan`] and,
//! when infeasible, repaired — composing the PR 2 fault model with the
//! online arrival process.
//!
//! Cells are independent and seeded from sweep coordinates, so the
//! sweep is reproducible bit for bit at any thread count (the runner
//! preserves input order).

use crate::robustness::fault_seed;
use crate::runner::parallel_map;
use es_core::online::{
    arrival_script, run_online, Admission, ArrivalSpec, JobSpec, OnlineConfig, OnlineRun,
};
use es_core::{execute_with, repair, FaultPlan, FaultSpec, LinkBackend, ListScheduler};
use es_net::gen::{random_switched_wan, WanConfig};
use es_net::Topology;
use es_workload::{cell_seed, Setting};
use rand::{rngs::StdRng, SeedableRng};

/// Scheduler labels swept by [`run_online_sweep`], in output order.
pub const ONLINE_SCHEDULERS: [&str; 2] = ["ba_static", "oihsa"];

/// Parameters of one online sweep.
#[derive(Clone, Debug)]
pub struct OnlineSweepSpec {
    /// Speed regime of the shared topology.
    pub setting: Setting,
    /// Processor count of the shared topology.
    pub processors: usize,
    /// Jobs per arrival script.
    pub jobs: usize,
    /// Tenants jobs are attributed to.
    pub tenants: u32,
    /// Arrival-rate axis: mean inter-arrival gaps to sweep (smaller =
    /// heavier load).
    pub mean_interarrivals: Vec<f64>,
    /// Link-model backends to sweep. The online engine is built on the
    /// slotted link state, so `slot` and `saf` apply; `fluid` is
    /// rejected at run time.
    pub backends: Vec<LinkBackend>,
    /// Admission policy.
    pub admission: Admission,
    /// Dispatch-slot cap.
    pub max_inflight: usize,
    /// Base seed; per-cell seeds come from [`cell_seed`].
    pub base_seed: u64,
    /// `Some(intensity)` runs the production-day fault leg: each
    /// retired job replayed under link failures, repaired when
    /// infeasible.
    pub fault_intensity: Option<f64>,
    /// Worker threads for the sweep.
    pub threads: usize,
}

impl OnlineSweepSpec {
    /// A small smoke-sized sweep (CI, tests).
    pub fn smoke(base_seed: u64, threads: usize) -> Self {
        Self {
            setting: Setting::Homogeneous,
            processors: 8,
            jobs: 12,
            tenants: 3,
            mean_interarrivals: vec![2.0, 10.0],
            backends: vec![LinkBackend::SlotQueue],
            admission: Admission::Fifo,
            max_inflight: 4,
            base_seed,
            fault_intensity: None,
            threads,
        }
    }
}

/// Aggregated SLO/fairness statistics of one (backend, rate,
/// scheduler) cell.
#[derive(Clone, Debug)]
pub struct OnlineCell {
    /// Link-model backend.
    pub backend: LinkBackend,
    /// Scheduler label.
    pub scheduler: &'static str,
    /// Mean inter-arrival gap of the cell's script.
    pub mean_interarrival: f64,
    /// Jobs completed (always the script length).
    pub jobs: usize,
    /// Mean response time.
    pub mean_response: f64,
    /// Mean queueing delay.
    pub mean_queueing: f64,
    /// Mean slowdown.
    pub mean_slowdown: f64,
    /// 95th-percentile slowdown (nearest rank, across all jobs).
    pub p95_slowdown: f64,
    /// Max/mean ratio of per-tenant mean slowdowns.
    pub fairness_ratio: f64,
    /// Latest finish across the run.
    pub horizon: f64,
    /// Link slots released by compaction.
    pub released_slots: usize,
    /// Fault leg: share of jobs whose schedule a link failure made
    /// infeasible (0.0 without a fault leg).
    pub fault_infeasible_rate: f64,
    /// Fault leg: share of infeasible jobs repair recovered (1.0
    /// when nothing was infeasible).
    pub repair_success_rate: f64,
    /// Fault leg: mean repaired/original makespan ratio among
    /// successful repairs (0.0 when none ran).
    pub mean_repair_inflation: f64,
}

fn scheduler_for(label: &str) -> ListScheduler {
    match label {
        "ba_static" => ListScheduler::ba_static(),
        "oihsa" => ListScheduler::oihsa(),
        other => panic!("unknown online scheduler {other}"),
    }
}

/// The sweep's shared topology: same WAN generator as the offline
/// experiments, seeded from the sweep coordinates only (every cell of
/// a sweep sees the identical network).
pub fn online_topology(spec: &OnlineSweepSpec) -> Topology {
    let wan = match spec.setting {
        Setting::Homogeneous => WanConfig::homogeneous(spec.processors),
        Setting::Heterogeneous => WanConfig::heterogeneous(spec.processors),
    };
    let seed = cell_seed(spec.base_seed, spec.setting, spec.processors, 0.0, 0);
    random_switched_wan(&wan, &mut StdRng::seed_from_u64(seed))
}

/// The arrival spec of one rate coordinate (same for every scheduler
/// and backend of the sweep).
pub fn online_arrivals(spec: &OnlineSweepSpec, mean_interarrival: f64) -> ArrivalSpec {
    ArrivalSpec::default_mix(
        spec.jobs,
        spec.tenants,
        mean_interarrival,
        cell_seed(
            spec.base_seed,
            spec.setting,
            spec.processors,
            mean_interarrival,
            1,
        ),
    )
}

/// Run one cell: prepare the script and topology for the backend, run
/// the online engine, aggregate, and (optionally) run the fault leg.
pub fn run_online_cell(
    spec: &OnlineSweepSpec,
    backend: LinkBackend,
    mean_interarrival: f64,
    scheduler: &'static str,
) -> OnlineCell {
    assert!(
        backend != LinkBackend::Fluid,
        "the online engine runs on the slotted link state; use slot or saf"
    );
    let topo = backend.prepare_topology(&online_topology(spec));
    let jobs: Vec<JobSpec> = arrival_script(&online_arrivals(spec, mean_interarrival))
        .into_iter()
        .map(|mut j| {
            j.dag = backend.prepare_dag(&j.dag);
            j
        })
        .collect();
    let cfg = OnlineConfig {
        scheduler: backend.adapt(*scheduler_for(scheduler).config()),
        admission: spec.admission,
        max_inflight: spec.max_inflight,
        compaction: true,
    };
    let run = run_online(&cfg, &topo, &jobs).expect("online run schedules");
    let mut cell = summarize(backend, scheduler, mean_interarrival, &run);
    if let Some(intensity) = spec.fault_intensity {
        fault_leg(spec, &topo, &jobs, &run, intensity, &mut cell);
    }
    cell
}

fn summarize(
    backend: LinkBackend,
    scheduler: &'static str,
    mean_interarrival: f64,
    run: &OnlineRun,
) -> OnlineCell {
    let mut slowdowns: Vec<f64> = run.outcomes.iter().map(|o| o.slowdown).collect();
    slowdowns.sort_by(f64::total_cmp);
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let p95 = if slowdowns.is_empty() {
        0.0
    } else {
        let rank = ((slowdowns.len() as f64) * 0.95).ceil() as usize;
        slowdowns[rank.clamp(1, slowdowns.len()) - 1]
    };
    OnlineCell {
        backend,
        scheduler,
        mean_interarrival,
        jobs: run.outcomes.len(),
        mean_response: run.mean_response(),
        mean_queueing: mean(run.outcomes.iter().map(|o| o.queueing)),
        mean_slowdown: run.mean_slowdown(),
        p95_slowdown: p95,
        fairness_ratio: run.fairness_ratio(),
        horizon: run.horizon,
        released_slots: run.released_slots,
        fault_infeasible_rate: 0.0,
        repair_success_rate: 1.0,
        mean_repair_inflation: 0.0,
    }
}

/// Production day: replay every retired job's schedule under a seeded
/// link-failure plan; repair the infeasible ones.
fn fault_leg(
    spec: &OnlineSweepSpec,
    topo: &Topology,
    jobs: &[JobSpec],
    run: &OnlineRun,
    intensity: f64,
    cell: &mut OnlineCell,
) {
    let mut infeasible = 0usize;
    let mut repaired = 0usize;
    let mut inflation = 0.0_f64;
    for o in &run.outcomes {
        let job = &jobs[o.job as usize];
        let fspec = FaultSpec {
            intensity,
            horizon: o.finish,
            kill_proc: false,
            kill_link: true,
        };
        let seed = fault_seed(spec.base_seed ^ o.job, intensity);
        let plan = FaultPlan::seeded(&job.dag, topo, &fspec, seed);
        let exec = execute_with(&job.dag, topo, &o.schedule, &plan).expect("replay");
        if exec.is_feasible() {
            continue;
        }
        infeasible += 1;
        if let Ok(out) = repair(&job.dag, topo, &o.schedule, &plan) {
            repaired += 1;
            if o.schedule.makespan > 0.0 {
                inflation += out.schedule.makespan / o.schedule.makespan;
            }
        }
    }
    cell.fault_infeasible_rate = ratio(infeasible, run.outcomes.len());
    cell.repair_success_rate = if infeasible == 0 {
        1.0
    } else {
        ratio(repaired, infeasible)
    };
    cell.mean_repair_inflation = if repaired == 0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        {
            inflation / repaired as f64
        }
    };
}

/// Run the full sweep: backend × rate × scheduler, in that output
/// order.
pub fn run_online_sweep(spec: &OnlineSweepSpec) -> Vec<OnlineCell> {
    let coords: Vec<(LinkBackend, f64, &'static str)> = spec
        .backends
        .iter()
        .flat_map(|&b| {
            spec.mean_interarrivals
                .iter()
                .flat_map(move |&rate| ONLINE_SCHEDULERS.iter().map(move |&s| (b, rate, s)))
        })
        .collect();
    parallel_map(&coords, spec.threads, |&(backend, rate, sched)| {
        run_online_cell(spec, backend, rate, sched)
    })
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0_f64;
    let mut n = 0usize;
    for x in xs {
        sum += x;
        n += 1;
    }
    #[allow(clippy::cast_precision_loss)]
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[allow(clippy::cast_precision_loss)]
fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_deterministic_across_threads() {
        let mut spec = OnlineSweepSpec::smoke(5, 1);
        spec.jobs = 8;
        let a = run_online_sweep(&spec);
        spec.threads = 4;
        let b = run_online_sweep(&spec);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 2 * ONLINE_SCHEDULERS.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scheduler, y.scheduler);
            assert_eq!(x.mean_response.to_bits(), y.mean_response.to_bits());
            assert_eq!(x.mean_slowdown.to_bits(), y.mean_slowdown.to_bits());
            assert_eq!(x.fairness_ratio.to_bits(), y.fairness_ratio.to_bits());
            assert_eq!(x.horizon.to_bits(), y.horizon.to_bits());
            assert_eq!(x.released_slots, y.released_slots);
        }
    }

    #[test]
    fn heavier_load_does_not_reduce_mean_response() {
        let mut spec = OnlineSweepSpec::smoke(9, 1);
        spec.jobs = 10;
        spec.mean_interarrivals = vec![0.5, 50.0];
        let cells = run_online_sweep(&spec);
        // Same scheduler: the near-batch arrival (gap 0.5) must respond
        // no faster than the near-idle one (gap 50) — queueing only
        // ever adds delay. Scripts differ per rate (seeded by rate), so
        // compare slowdown regimes loosely: the heavy cell must show
        // nonzero queueing.
        let (heavy_gap, idle_gap) = (spec.mean_interarrivals[0], spec.mean_interarrivals[1]);
        let heavy = cells
            .iter()
            .find(|c| {
                c.mean_interarrival.to_bits() == heavy_gap.to_bits() && c.scheduler == "oihsa"
            })
            .unwrap();
        let idle = cells
            .iter()
            .find(|c| c.mean_interarrival.to_bits() == idle_gap.to_bits() && c.scheduler == "oihsa")
            .unwrap();
        assert!(heavy.mean_queueing >= idle.mean_queueing);
        assert!(heavy.mean_slowdown >= 1.0 - 1e-9);
    }

    #[test]
    fn fault_leg_reports_rates_in_range() {
        let mut spec = OnlineSweepSpec::smoke(13, 2);
        spec.jobs = 8;
        spec.mean_interarrivals = vec![2.0];
        spec.fault_intensity = Some(0.8);
        let cells = run_online_sweep(&spec);
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.fault_infeasible_rate));
            assert!((0.0..=1.0).contains(&c.repair_success_rate));
            assert!(c.mean_repair_inflation >= 0.0);
        }
    }
}
