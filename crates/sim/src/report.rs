//! Report generation: markdown tables from figure results.
//!
//! EXPERIMENTS.md-style rendering so recorded runs paste directly into
//! documentation; also CSV assembly shared with the CLI.

use crate::experiment::{CellResult, FigureResult};
use crate::online::{OnlineCell, OnlineSweepSpec};
use crate::robustness::{RobustnessCell, RobustnessSpec};
use es_core::online::TenantSummary;
use std::fmt::Write as _;

/// Render one figure as a GitHub-flavoured markdown table.
pub fn figure_to_markdown(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {}\n", fig.title);
    let _ = writeln!(out, "| {} | OIHSA vs BA % | BBSA vs BA % |", fig.x_name);
    let _ = writeln!(out, "|---:|---:|---:|");
    for i in 0..fig.x.len() {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} |",
            fig.x[i], fig.oihsa[i], fig.bbsa[i]
        );
    }
    out
}

/// Render the per-cell detail of a figure (one row per cell) as
/// markdown — the appendix view.
pub fn cells_to_markdown(cells: &[CellResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| setting | procs | CCR | BA makespan | OIHSA % | σ | BBSA % | σ |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|");
    for c in cells {
        let _ = writeln!(
            out,
            "| {:?} | {} | {} | {:.0} | {:+.2} | {:.2} | {:+.2} | {:.2} |",
            c.spec.setting,
            c.spec.processors,
            c.spec.ccr,
            c.ba_makespan,
            c.oihsa_improvement,
            c.oihsa_stddev,
            c.bbsa_improvement,
            c.bbsa_stddev,
        );
    }
    out
}

/// The CSV header used by every per-cell export in the workspace.
pub const CELL_CSV_HEADER: &str = "figure,setting,processors,ccr,reps,ba_makespan,\
oihsa_makespan,bbsa_makespan,oihsa_improvement,bbsa_improvement,oihsa_stddev,\
bbsa_stddev,ba_probe_makespan,oihsa_probe_improvement,bbsa_probe_improvement";

/// One CSV row for a cell (no trailing newline).
pub fn cell_to_csv_row(figure: &str, c: &CellResult) -> String {
    let opt = |v: Option<f64>| v.map(|x| format!("{x:.4}")).unwrap_or_default();
    format!(
        "{},{:?},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{}",
        figure,
        c.spec.setting,
        c.spec.processors,
        c.spec.ccr,
        c.spec.reps,
        c.ba_makespan,
        c.oihsa_makespan,
        c.bbsa_makespan,
        c.oihsa_improvement,
        c.bbsa_improvement,
        c.oihsa_stddev,
        c.bbsa_stddev,
        opt(c.ba_probe_makespan),
        opt(c.oihsa_probe_improvement),
        opt(c.bbsa_probe_improvement),
    )
}

/// Full CSV for a set of figures.
pub fn figures_to_csv(figs: &[FigureResult]) -> String {
    let mut out = String::from(CELL_CSV_HEADER);
    out.push('\n');
    for f in figs {
        let tag = f.title.split(':').next().unwrap_or("");
        for c in &f.cells {
            out.push_str(&cell_to_csv_row(tag, c));
            out.push('\n');
        }
    }
    out
}

/// The CSV header for robustness-sweep exports.
pub const ROBUSTNESS_CSV_HEADER: &str = "setting,processors,ccr,reps,scheduler,intensity,\
mean_degradation,p95_degradation,infeasible_rate,repair_success_rate,\
mean_repair_inflation,mean_moved_tasks,fallback_rate";

/// One CSV row for a robustness cell (no trailing newline).
pub fn robustness_to_csv_row(spec: &RobustnessSpec, c: &RobustnessCell) -> String {
    format!(
        "{:?},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
        spec.setting,
        spec.processors,
        spec.ccr,
        c.reps,
        c.scheduler,
        c.intensity,
        c.mean_degradation,
        c.p95_degradation,
        c.infeasible_rate,
        c.repair_success_rate,
        c.mean_repair_inflation,
        c.mean_moved_tasks,
        c.fallback_rate,
    )
}

/// Full CSV for a robustness sweep.
pub fn robustness_to_csv(spec: &RobustnessSpec, cells: &[RobustnessCell]) -> String {
    let mut out = String::from(ROBUSTNESS_CSV_HEADER);
    out.push('\n');
    for c in cells {
        out.push_str(&robustness_to_csv_row(spec, c));
        out.push('\n');
    }
    out
}

/// Render a robustness sweep as a GitHub-flavoured markdown table.
pub fn robustness_to_markdown(spec: &RobustnessSpec, cells: &[RobustnessCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Robustness: {:?}, {} procs, CCR {}, {} reps\n",
        spec.setting, spec.processors, spec.ccr, spec.reps
    );
    let _ = writeln!(
        out,
        "| scheduler | intensity | mean degr. | P95 degr. | infeasible | repair ok | repair infl. | moved | fallback |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for c in cells {
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} | {:.3} | {:.0}% | {:.0}% | {:.3} | {:.1} | {:.0}% |",
            c.scheduler,
            c.intensity,
            c.mean_degradation,
            c.p95_degradation,
            c.infeasible_rate * 100.0,
            c.repair_success_rate * 100.0,
            c.mean_repair_inflation,
            c.mean_moved_tasks,
            c.fallback_rate * 100.0,
        );
    }
    out
}

/// Header of the online-sweep CSV (one row per cell).
pub const ONLINE_CSV_HEADER: &str = "setting,processors,backend,scheduler,admission,\
mean_interarrival,jobs,tenants,mean_response,mean_queueing,mean_slowdown,p95_slowdown,\
fairness_ratio,horizon,released_slots,fault_infeasible_rate,repair_success_rate,\
mean_repair_inflation";

/// One CSV row for an online cell (no trailing newline).
pub fn online_to_csv_row(spec: &OnlineSweepSpec, c: &OnlineCell) -> String {
    format!(
        "{:?},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{:.4},{:.4},{:.4}",
        spec.setting,
        spec.processors,
        c.backend,
        c.scheduler,
        spec.admission.name(),
        c.mean_interarrival,
        c.jobs,
        spec.tenants,
        c.mean_response,
        c.mean_queueing,
        c.mean_slowdown,
        c.p95_slowdown,
        c.fairness_ratio,
        c.horizon,
        c.released_slots,
        c.fault_infeasible_rate,
        c.repair_success_rate,
        c.mean_repair_inflation,
    )
}

/// Full CSV for an online sweep.
pub fn online_to_csv(spec: &OnlineSweepSpec, cells: &[OnlineCell]) -> String {
    let mut out = String::from(ONLINE_CSV_HEADER);
    out.push('\n');
    for c in cells {
        out.push_str(&online_to_csv_row(spec, c));
        out.push('\n');
    }
    out
}

/// Render an online sweep as a GitHub-flavoured markdown table.
pub fn online_to_markdown(spec: &OnlineSweepSpec, cells: &[OnlineCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Online: {:?}, {} procs, {} jobs, {} tenants, {} admission\n",
        spec.setting,
        spec.processors,
        spec.jobs,
        spec.tenants,
        spec.admission.name()
    );
    let _ = writeln!(
        out,
        "| backend | scheduler | gap | mean resp. | mean queue | mean slow. | P95 slow. | fairness | infeasible | repair ok |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for c in cells {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2} | {:.2} | {:.3} | {:.3} | {:.3} | {:.0}% | {:.0}% |",
            c.backend,
            c.scheduler,
            c.mean_interarrival,
            c.mean_response,
            c.mean_queueing,
            c.mean_slowdown,
            c.p95_slowdown,
            c.fairness_ratio,
            c.fault_infeasible_rate * 100.0,
            c.repair_success_rate * 100.0,
        );
    }
    out
}

/// Header of the per-tenant fairness CSV.
pub const TENANT_CSV_HEADER: &str =
    "tenant,jobs,mean_slowdown,p50_slowdown,p95_slowdown,max_slowdown,mean_response,mean_queueing";

/// One CSV row per tenant summary (no trailing newline).
pub fn tenant_to_csv_row(s: &TenantSummary) -> String {
    format!(
        "{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
        s.tenant,
        s.jobs,
        s.mean_slowdown,
        s.p50_slowdown,
        s.p95_slowdown,
        s.max_slowdown,
        s.mean_response,
        s.mean_queueing,
    )
}

/// Render per-tenant fairness summaries as a markdown table.
pub fn tenants_to_markdown(summaries: &[TenantSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| tenant | jobs | mean slow. | P50 | P95 | max | mean resp. | mean queue |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|---:|");
    for s in summaries {
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.2} | {:.2} |",
            s.tenant,
            s.jobs,
            s.mean_slowdown,
            s.p50_slowdown,
            s.p95_slowdown,
            s.max_slowdown,
            s.mean_response,
            s.mean_queueing,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{fig1, FigureParams};

    fn small_fig() -> FigureResult {
        fig1(&FigureParams {
            reps: 2,
            tasks: Some(25),
            base_seed: 5,
            procs: vec![4],
            ccrs: vec![1.0, 5.0],
            threads: 2,
            validate: false,
            strong_baseline: false,
            progress: false,
        })
    }

    #[test]
    fn markdown_table_shape() {
        let f = small_fig();
        let md = figure_to_markdown(&f);
        assert!(md.contains("### Figure 1"));
        assert!(md.contains("| CCR |"));
        assert_eq!(
            md.matches('\n').count(),
            4 + f.x.len(),
            "title + blank + header + separator + rows"
        );
    }

    #[test]
    fn cells_markdown_one_row_per_cell() {
        let f = small_fig();
        let md = cells_to_markdown(&f.cells);
        assert_eq!(md.lines().count(), 2 + f.cells.len());
        assert!(md.contains("Homogeneous"));
    }

    #[test]
    fn csv_round_trip_field_count() {
        let f = small_fig();
        let csv = figures_to_csv(&[f]);
        let header_fields = CELL_CSV_HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), header_fields, "{line}");
        }
    }

    #[test]
    fn robustness_csv_field_count_and_markdown_shape() {
        use crate::robustness::{run_robustness, RobustnessSpec};
        use es_workload::Setting;
        let spec = RobustnessSpec {
            setting: Setting::Homogeneous,
            processors: 4,
            ccr: 1.0,
            reps: 1,
            base_seed: 3,
            tasks: Some(15),
            intensities: vec![0.4],
            threads: 1,
        };
        let cells = run_robustness(&spec);
        let csv = robustness_to_csv(&spec, &cells);
        let header_fields = ROBUSTNESS_CSV_HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), header_fields, "{line}");
        }
        assert_eq!(csv.lines().count(), 1 + cells.len());
        let md = robustness_to_markdown(&spec, &cells);
        assert!(md.contains("### Robustness"));
        assert_eq!(md.lines().count(), 3 + cells.len() + 1);
    }

    #[test]
    fn probe_columns_empty_without_strong_baseline() {
        let f = small_fig();
        let csv = figures_to_csv(&[f]);
        for line in csv.lines().skip(1) {
            assert!(line.ends_with(",,"), "{line}");
        }
    }
}
