//! Summary statistics for experiment cells.

/// Mean / spread summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub stddev: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Summarise a sample.
    pub fn of(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        Self {
            n,
            mean,
            stddev: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of the ~95% normal-approximation confidence interval
    /// (`1.96 · s/√n`; 0 for n < 2).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }
}

/// The paper's metric: percentage improvement of `candidate` over
/// `baseline` makespan, `100 · (baseline - candidate) / baseline`.
///
/// Positive = candidate is better. Returns 0 when the baseline is 0
/// (empty schedules).
pub fn improvement_percent(baseline: f64, candidate: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        100.0 * (baseline - candidate) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        // Sample stddev with Bessel: sqrt(32/7).
        assert!((s.stddev - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_handles_empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let xs: Vec<f64> = (0..64).map(|i| 1.0 + f64::from(i % 4)).collect();
        let big = Summary::of(&xs);
        assert!(big.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn improvement_percent_signs() {
        assert_eq!(improvement_percent(100.0, 80.0), 20.0);
        assert_eq!(improvement_percent(100.0, 120.0), -20.0);
        assert_eq!(improvement_percent(100.0, 100.0), 0.0);
        assert_eq!(improvement_percent(0.0, 50.0), 0.0);
    }
}
