//! Parallel execution of independent experiment cells.
//!
//! A full paper sweep is `19 CCRs × 7 processor counts × repetitions`
//! independent scheduling runs — embarrassingly parallel. Rather than
//! pull in a work-stealing runtime, we use plain std primitives:
//! **scoped threads draining a shared atomic work counter**
//! (`std::thread::scope` so borrows of the input live safely on the
//! stack). Each worker claims the next item with a `fetch_add`, so
//! faster workers take more cells — no static partitioning imbalance —
//! and writes its result into that item's pre-allocated slot,
//! preserving input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item on up to `threads` worker threads,
/// preserving input order in the output.
///
/// `f` must be `Sync` (it is shared by reference across workers) and
/// items are handed out through a shared counter, so faster workers
/// take more cells.
///
/// `threads == 0` or `1` degrades to a sequential map (useful under
/// `cargo test` and for debugging).
///
/// # Panics
/// Propagates panics from `f` (the scope joins all workers).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                let result = f(item);
                *slots[idx].lock().expect("no poisoned slot") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned slot")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// A sensible default worker count: the number of available CPUs
/// (minimum 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..20).collect();
        let a = parallel_map(&items, 1, |&x| x + 1);
        let b = parallel_map(&items, 4, |&x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let out = parallel_map(&items, 6, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&Vec::<u64>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, 4, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        });
        assert_eq!(out[31], 31 * 31);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
