//! Parallel execution of independent experiment cells.
//!
//! The machinery itself (scoped threads draining a shared atomic work
//! counter, per-item panic capture, thread-count resolution) lives in
//! the shared [`es_runner`] crate since the scheduler core also fans
//! work out (parallel speculative probing); this module re-exports it
//! under the historical `es_sim::runner` path.

pub use es_runner::{default_threads, parallel_map, try_parallel_map, ItemPanic, Threads};
