//! Parallel execution of independent experiment cells.
//!
//! A full paper sweep is `19 CCRs × 7 processor counts × repetitions`
//! independent scheduling runs — embarrassingly parallel. Rather than
//! pull in a work-stealing runtime, we use plain std primitives:
//! **scoped threads draining a shared atomic work counter**
//! (`std::thread::scope` so borrows of the input live safely on the
//! stack). Each worker claims the next item with a `fetch_add`, so
//! faster workers take more cells — no static partitioning imbalance —
//! and writes its result into that item's pre-allocated slot,
//! preserving input order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A captured panic from one work item of [`try_parallel_map`].
#[derive(Clone, Debug)]
pub struct ItemPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the overwhelmingly
    /// common case — `panic!`/`assert!` messages); a placeholder
    /// otherwise.
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

/// Apply `f` to every item on up to `threads` worker threads,
/// preserving input order in the output.
///
/// `f` must be `Sync` (it is shared by reference across workers) and
/// items are handed out through a shared counter, so faster workers
/// take more cells.
///
/// `threads == 0` or `1` degrades to a sequential map (useful under
/// `cargo test` and for debugging).
///
/// # Panics
/// If `f` panics on any item, re-panics **after the whole sweep has
/// drained** with the item's index and the original message — one bad
/// cell no longer kills the run with an anonymous scope-join panic,
/// and the index identifies the offending parameters. Use
/// [`try_parallel_map`] to handle failures per item instead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("parallel_map: {p}")))
        .collect()
}

/// Like [`parallel_map`], but a panicking item becomes
/// `Err(`[`ItemPanic`]`)` in its output slot instead of tearing down
/// the sweep; all other items still complete.
pub fn try_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, ItemPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let guarded = |idx: usize, item: &T| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| ItemPanic {
            index: idx,
            message: panic_message(payload.as_ref()),
        })
    };
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| guarded(i, item))
            .collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<Result<R, ItemPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let next = &next;
            let slots = &slots;
            let guarded = &guarded;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                let result = guarded(idx, item);
                *slots[idx].lock().expect("no poisoned slot") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned slot")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A sensible default worker count: the number of available CPUs
/// (minimum 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..20).collect();
        let a = parallel_map(&items, 1, |&x| x + 1);
        let b = parallel_map(&items, 4, |&x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let out = parallel_map(&items, 6, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&Vec::<u64>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, 4, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        });
        assert_eq!(out[31], 31 * 31);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn try_map_isolates_a_panicking_item() {
        let items: Vec<u64> = (0..16).collect();
        let out = try_parallel_map(&items, 4, |&x| {
            assert!(x != 11, "cell x={x} exploded");
            x * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 11 {
                let p = r.as_ref().expect_err("item 11 must fail");
                assert_eq!(p.index, 11);
                assert!(p.message.contains("x=11"), "message: {}", p.message);
            } else {
                assert_eq!(*r.as_ref().expect("other items succeed"), items[i] * 2);
            }
        }
    }

    #[test]
    fn parallel_map_repanic_names_the_item() {
        let items: Vec<u64> = (0..8).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 2, |&x| {
                assert!(x != 5, "boom at x={x}");
                x
            })
        }))
        .expect_err("must re-panic");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("item 5"), "message: {msg}");
        assert!(msg.contains("boom at x=5"), "message: {msg}");
    }

    #[test]
    fn try_map_sequential_path_also_captures() {
        let items = vec![1u64];
        let out = try_parallel_map(&items, 1, |_| -> u64 { panic!("lonely") });
        assert_eq!(out[0].as_ref().expect_err("captured").index, 0);
    }
}
