//! Experiment cells and the four paper figures.
//!
//! One **cell** is `(setting, processor count, CCR)` × `reps` paired
//! instances; every instance is scheduled by BA, OIHSA and BBSA and the
//! per-instance improvement percentages over BA are averaged.
//!
//! The figures then aggregate cells exactly as the paper does:
//!
//! * **Figure 1** (homogeneous) / **Figure 3** (heterogeneous): x-axis
//!   CCR; each point averages the improvement over *all* processor
//!   counts ("results … are average value under different number of
//!   processors when CCR is 0.1–10");
//! * **Figure 2** (homogeneous) / **Figure 4** (heterogeneous): x-axis
//!   processor count; each point averages over the CCR sweep.

use crate::runner::parallel_map;
use crate::stats::{improvement_percent, Summary};
use es_core::{BbsaScheduler, ListScheduler, Scheduler};
use es_workload::{ccr_values, cell_seed, generate, proc_counts, InstanceConfig, Setting};
use serde::{Deserialize, Serialize};

/// One experiment cell: a point in the sweep grid.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Speed regime.
    pub setting: Setting,
    /// Number of processors.
    pub processors: usize,
    /// Target CCR.
    pub ccr: f64,
    /// Paired instances per cell.
    pub reps: usize,
    /// Base seed (instance seeds derive from it and the coordinates).
    pub base_seed: u64,
    /// Fixed task count; `None` = the paper's `U(40, 1000)`.
    pub tasks: Option<usize>,
    /// Re-validate every produced schedule against the model.
    pub validate: bool,
    /// Additionally run the strong-probe family (BA, OIHSA-probe,
    /// BBSA-probe) on the same instances — slower; fills the
    /// `*_probe_*` fields of [`CellResult`].
    pub strong_baseline: bool,
}

/// Aggregated results of one cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell.
    pub spec: CellSpec,
    /// Mean BA makespan.
    pub ba_makespan: f64,
    /// Mean OIHSA makespan.
    pub oihsa_makespan: f64,
    /// Mean BBSA makespan.
    pub bbsa_makespan: f64,
    /// Mean per-instance improvement % of OIHSA over BA.
    pub oihsa_improvement: f64,
    /// Mean per-instance improvement % of BBSA over BA.
    pub bbsa_improvement: f64,
    /// Sample standard deviation of the OIHSA improvement.
    pub oihsa_stddev: f64,
    /// Sample standard deviation of the BBSA improvement.
    pub bbsa_stddev: f64,
    /// Mean makespan of the strong probing BA (only with
    /// [`CellSpec::strong_baseline`]).
    pub ba_probe_makespan: Option<f64>,
    /// Mean improvement % of OIHSA-probe over the probing BA.
    pub oihsa_probe_improvement: Option<f64>,
    /// Mean improvement % of BBSA-probe over the probing BA.
    pub bbsa_probe_improvement: Option<f64>,
}

/// Run every repetition of one cell (sequentially; parallelism lives at
/// the cell level in [`FigureParams`]'s grid runner).
///
/// # Panics
/// Panics if any scheduler fails (the generated WANs are connected, so
/// a failure indicates a bug) or — with `spec.validate` — if a schedule
/// violates the model.
pub fn run_cell(spec: &CellSpec) -> CellResult {
    // The paper triple: every algorithm uses the §4.1 processor
    // criterion (see `es_core::config::ProcSelection::HybridStatic`).
    let ba = ListScheduler::ba_static();
    let oihsa = ListScheduler::oihsa();
    let bbsa = BbsaScheduler::new();
    // The strong-probe family (optional).
    let ba_probe = ListScheduler::ba();
    let oihsa_probe = ListScheduler::oihsa_probing();
    let bbsa_probe = BbsaScheduler::with_config(es_core::bbsa::BbsaConfig::probing());

    let mut ba_ms = Vec::with_capacity(spec.reps);
    let mut oi_ms = Vec::with_capacity(spec.reps);
    let mut bb_ms = Vec::with_capacity(spec.reps);
    let mut oi_impr = Vec::with_capacity(spec.reps);
    let mut bb_impr = Vec::with_capacity(spec.reps);
    let mut bap_ms = Vec::new();
    let mut oip_impr = Vec::new();
    let mut bbp_impr = Vec::new();

    for rep in 0..spec.reps {
        let seed = cell_seed(spec.base_seed, spec.setting, spec.processors, spec.ccr, rep);
        let mut cfg = InstanceConfig::paper(spec.setting, spec.processors, spec.ccr, seed);
        cfg.tasks = spec.tasks;
        let inst = generate(&cfg);

        let run = |s: &dyn Scheduler| -> f64 {
            let schedule = s
                .schedule(&inst.dag, &inst.topo)
                .unwrap_or_else(|e| panic!("{} failed on seed {seed}: {e}", s.name()));
            if spec.validate {
                if let Err(errs) = es_core::validate::validate(&inst.dag, &inst.topo, &schedule) {
                    panic!(
                        "{} produced an invalid schedule (seed {seed}): {errs:#?}",
                        s.name()
                    );
                }
            }
            schedule.makespan
        };

        let mb = run(&ba);
        let mo = run(&oihsa);
        let mbb = run(&bbsa);
        ba_ms.push(mb);
        oi_ms.push(mo);
        bb_ms.push(mbb);
        oi_impr.push(improvement_percent(mb, mo));
        bb_impr.push(improvement_percent(mb, mbb));

        if spec.strong_baseline {
            let mbp = run(&ba_probe);
            let mop = run(&oihsa_probe);
            let mbbp = run(&bbsa_probe);
            bap_ms.push(mbp);
            oip_impr.push(improvement_percent(mbp, mop));
            bbp_impr.push(improvement_percent(mbp, mbbp));
        }
    }

    CellResult {
        spec: *spec,
        ba_makespan: Summary::of(&ba_ms).mean,
        oihsa_makespan: Summary::of(&oi_ms).mean,
        bbsa_makespan: Summary::of(&bb_ms).mean,
        oihsa_improvement: Summary::of(&oi_impr).mean,
        bbsa_improvement: Summary::of(&bb_impr).mean,
        oihsa_stddev: Summary::of(&oi_impr).stddev,
        bbsa_stddev: Summary::of(&bb_impr).stddev,
        ba_probe_makespan: spec.strong_baseline.then(|| Summary::of(&bap_ms).mean),
        oihsa_probe_improvement: spec.strong_baseline.then(|| Summary::of(&oip_impr).mean),
        bbsa_probe_improvement: spec.strong_baseline.then(|| Summary::of(&bbp_impr).mean),
    }
}

/// Run a cell with **adaptive repetitions**: keep adding paired
/// instances until the 95% confidence half-width of both improvement
/// series drops below `ci_target` (percentage points) or `max_reps` is
/// reached. `spec.reps` is the minimum (and the batch growth unit).
///
/// Deterministic: repetition `k` always uses the same derived seed, so
/// an adaptive run's first `n` instances coincide with a fixed-rep run
/// of `n`.
pub fn run_cell_adaptive(spec: &CellSpec, ci_target: f64, max_reps: usize) -> CellResult {
    assert!(ci_target > 0.0 && max_reps >= spec.reps.max(2));
    let mut reps = spec.reps.max(2);
    loop {
        let mut s = *spec;
        s.reps = reps;
        let result = run_cell(&s);
        let ci = |stddev: f64| 1.96 * stddev / (reps as f64).sqrt();
        if reps >= max_reps
            || (ci(result.oihsa_stddev) <= ci_target && ci(result.bbsa_stddev) <= ci_target)
        {
            return result;
        }
        reps = (reps * 2).min(max_reps);
    }
}

/// Parameters of a figure reproduction run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FigureParams {
    /// Repetitions per cell.
    pub reps: usize,
    /// Fixed task count (`None` = paper's `U(40,1000)`; fix it to bound
    /// runtime).
    pub tasks: Option<usize>,
    /// Base seed.
    pub base_seed: u64,
    /// Processor counts to sweep (default: the paper's).
    pub procs: Vec<usize>,
    /// CCR values to sweep (default: the paper's 19 values).
    pub ccrs: Vec<f64>,
    /// Worker threads for the cell sweep. The default is the one
    /// resolved [`crate::runner::Threads`] config (`ES_THREADS`
    /// override, else the CPU count); CLI flags may still override the
    /// resolved value explicitly.
    pub threads: usize,
    /// Validate every schedule (slower; on by default in tests).
    pub validate: bool,
    /// Also run the strong-probe family on every instance (see
    /// [`CellSpec::strong_baseline`]).
    pub strong_baseline: bool,
    /// Print a progress line to stderr as each cell completes.
    pub progress: bool,
}

impl Default for FigureParams {
    fn default() -> Self {
        Self {
            reps: 3,
            tasks: None,
            base_seed: 20060810, // ICPP 2006
            procs: proc_counts(),
            ccrs: ccr_values(),
            threads: crate::runner::Threads::resolve().get(),
            validate: false,
            strong_baseline: false,
            progress: false,
        }
    }
}

/// One reproduced figure: series of improvement percentages indexed by
/// the x-axis labels.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FigureResult {
    /// Figure title (e.g. "Figure 1 …").
    pub title: String,
    /// x-axis name ("CCR" or "processors").
    pub x_name: String,
    /// x-axis labels.
    pub x: Vec<String>,
    /// Mean improvement % of OIHSA over BA per x value.
    pub oihsa: Vec<f64>,
    /// Mean improvement % of BBSA over BA per x value.
    pub bbsa: Vec<f64>,
    /// Every underlying cell (for EXPERIMENTS.md and debugging).
    pub cells: Vec<CellResult>,
}

impl FigureResult {
    /// Render the figure as a text table (what the CLI prints).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(
            out,
            "{:>12} {:>14} {:>14}",
            self.x_name, "OIHSA vs BA %", "BBSA vs BA %"
        );
        for i in 0..self.x.len() {
            let _ = writeln!(
                out,
                "{:>12} {:>14.2} {:>14.2}",
                self.x[i], self.oihsa[i], self.bbsa[i]
            );
        }
        out
    }
}

impl FigureParams {
    /// Run the full grid of cells for `setting`, in parallel.
    fn run_grid(&self, setting: Setting) -> Vec<CellResult> {
        let mut specs = Vec::new();
        for &procs in &self.procs {
            for &ccr in &self.ccrs {
                specs.push(CellSpec {
                    setting,
                    processors: procs,
                    ccr,
                    reps: self.reps,
                    base_seed: self.base_seed,
                    tasks: self.tasks,
                    validate: self.validate,
                    strong_baseline: self.strong_baseline,
                });
            }
        }
        let total = specs.len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        parallel_map(&specs, self.threads, |spec| {
            let r = run_cell(spec);
            if self.progress {
                let k = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                eprintln!(
                    "  [{k}/{total}] {:?} procs={} ccr={}: OIHSA {:+.1}% BBSA {:+.1}%",
                    spec.setting,
                    spec.processors,
                    spec.ccr,
                    r.oihsa_improvement,
                    r.bbsa_improvement
                );
            }
            r
        })
    }

    /// Aggregate a grid along one axis.
    fn aggregate<K: PartialEq + ToString>(
        cells: &[CellResult],
        keys: &[K],
        key_of: impl Fn(&CellResult) -> K,
    ) -> (Vec<String>, Vec<f64>, Vec<f64>) {
        let mut labels = Vec::new();
        let mut oihsa = Vec::new();
        let mut bbsa = Vec::new();
        for k in keys {
            let group: Vec<&CellResult> = cells.iter().filter(|c| key_of(c) == *k).collect();
            let oi: Vec<f64> = group.iter().map(|c| c.oihsa_improvement).collect();
            let bb: Vec<f64> = group.iter().map(|c| c.bbsa_improvement).collect();
            labels.push(k.to_string());
            oihsa.push(Summary::of(&oi).mean);
            bbsa.push(Summary::of(&bb).mean);
        }
        (labels, oihsa, bbsa)
    }
}

/// Figure 1: homogeneous systems, improvement vs CCR (averaged over
/// processor counts).
pub fn fig1(params: &FigureParams) -> FigureResult {
    by_ccr(
        params,
        Setting::Homogeneous,
        "Figure 1: improvement vs CCR (homogeneous)",
    )
}

/// Figure 2: homogeneous systems, improvement vs processor count
/// (averaged over the CCR sweep).
pub fn fig2(params: &FigureParams) -> FigureResult {
    by_procs(
        params,
        Setting::Homogeneous,
        "Figure 2: improvement vs processors (homogeneous)",
    )
}

/// Figure 3: heterogeneous systems, improvement vs CCR.
pub fn fig3(params: &FigureParams) -> FigureResult {
    by_ccr(
        params,
        Setting::Heterogeneous,
        "Figure 3: improvement vs CCR (heterogeneous)",
    )
}

/// Figure 4: heterogeneous systems, improvement vs processor count.
pub fn fig4(params: &FigureParams) -> FigureResult {
    by_procs(
        params,
        Setting::Heterogeneous,
        "Figure 4: improvement vs processors (heterogeneous)",
    )
}

/// Compute both figures of one setting (CCR-axis and processor-axis)
/// from a single grid of cells — the paper's Figures 1+2 share their
/// underlying experiments, as do Figures 3+4.
pub fn fig_pair(params: &FigureParams, setting: Setting) -> (FigureResult, FigureResult) {
    let cells = params.run_grid(setting);
    let (ccr_title, proc_title) = match setting {
        Setting::Homogeneous => (
            "Figure 1: improvement vs CCR (homogeneous)",
            "Figure 2: improvement vs processors (homogeneous)",
        ),
        Setting::Heterogeneous => (
            "Figure 3: improvement vs CCR (heterogeneous)",
            "Figure 4: improvement vs processors (heterogeneous)",
        ),
    };
    let (x, oihsa, bbsa) = FigureParams::aggregate(&cells, &params.ccrs, |c| c.spec.ccr);
    let by_ccr = FigureResult {
        title: ccr_title.to_string(),
        x_name: "CCR".to_string(),
        x,
        oihsa,
        bbsa,
        cells: cells.clone(),
    };
    let (x, oihsa, bbsa) = FigureParams::aggregate(&cells, &params.procs, |c| c.spec.processors);
    let by_procs = FigureResult {
        title: proc_title.to_string(),
        x_name: "processors".to_string(),
        x,
        oihsa,
        bbsa,
        cells,
    };
    (by_ccr, by_procs)
}

fn by_ccr(params: &FigureParams, setting: Setting, title: &str) -> FigureResult {
    let cells = params.run_grid(setting);
    let (x, oihsa, bbsa) = FigureParams::aggregate(&cells, &params.ccrs, |c| c.spec.ccr);
    FigureResult {
        title: title.to_string(),
        x_name: "CCR".to_string(),
        x,
        oihsa,
        bbsa,
        cells,
    }
}

fn by_procs(params: &FigureParams, setting: Setting, title: &str) -> FigureResult {
    let cells = params.run_grid(setting);
    let (x, oihsa, bbsa) = FigureParams::aggregate(&cells, &params.procs, |c| c.spec.processors);
    FigureResult {
        title: title.to_string(),
        x_name: "processors".to_string(),
        x,
        oihsa,
        bbsa,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> FigureParams {
        FigureParams {
            reps: 2,
            tasks: Some(30),
            base_seed: 1,
            procs: vec![2, 4],
            ccrs: vec![0.5, 5.0],
            threads: 2,
            validate: true,
            strong_baseline: false,
            progress: false,
        }
    }

    #[test]
    fn run_cell_produces_consistent_numbers() {
        let spec = CellSpec {
            setting: Setting::Homogeneous,
            processors: 4,
            ccr: 1.0,
            reps: 2,
            base_seed: 7,
            tasks: Some(25),
            validate: true,
            strong_baseline: true,
        };
        let r = run_cell(&spec);
        assert!(r.ba_makespan > 0.0);
        assert!(r.oihsa_makespan > 0.0);
        assert!(r.bbsa_makespan > 0.0);
        // Improvements are consistent with the mean makespans in sign
        // (they are means of per-instance ratios, so only sanity-check
        // the range).
        assert!(r.oihsa_improvement.abs() <= 100.0);
        assert!(r.bbsa_improvement.abs() <= 100.0);
    }

    #[test]
    fn run_cell_is_deterministic() {
        let spec = CellSpec {
            setting: Setting::Heterogeneous,
            processors: 4,
            ccr: 2.0,
            reps: 2,
            base_seed: 3,
            tasks: Some(25),
            validate: false,
            strong_baseline: false,
        };
        let a = run_cell(&spec);
        let b = run_cell(&spec);
        assert_eq!(a.ba_makespan, b.ba_makespan);
        assert_eq!(a.oihsa_improvement, b.oihsa_improvement);
        assert_eq!(a.bbsa_improvement, b.bbsa_improvement);
    }

    #[test]
    fn fig1_has_one_point_per_ccr() {
        let p = tiny_params();
        let f = fig1(&p);
        assert_eq!(f.x.len(), 2);
        assert_eq!(f.oihsa.len(), 2);
        assert_eq!(f.bbsa.len(), 2);
        assert_eq!(f.cells.len(), 4, "2 procs × 2 ccrs");
        assert!(f.to_table().contains("CCR"));
    }

    #[test]
    fn fig2_has_one_point_per_proc_count() {
        let p = tiny_params();
        let f = fig2(&p);
        assert_eq!(f.x, vec!["2", "4"]);
    }

    #[test]
    fn figures_cover_both_settings() {
        let p = tiny_params();
        let f3 = fig3(&p);
        let f4 = fig4(&p);
        assert!(f3
            .cells
            .iter()
            .all(|c| c.spec.setting == Setting::Heterogeneous));
        assert!(f4
            .cells
            .iter()
            .all(|c| c.spec.setting == Setting::Heterogeneous));
    }

    #[test]
    fn adaptive_cell_stops_at_max_or_ci() {
        let spec = CellSpec {
            setting: Setting::Homogeneous,
            processors: 4,
            ccr: 1.0,
            reps: 2,
            base_seed: 21,
            tasks: Some(25),
            validate: false,
            strong_baseline: false,
        };
        // Absurdly tight CI: must stop at max_reps.
        let r = run_cell_adaptive(&spec, 1e-9, 8);
        assert_eq!(r.spec.reps, 8);
        // Absurdly loose CI: stops at the minimum.
        let r = run_cell_adaptive(&spec, 1e9, 8);
        assert_eq!(r.spec.reps, 2);
    }

    #[test]
    fn adaptive_prefix_matches_fixed_run() {
        let spec = CellSpec {
            setting: Setting::Heterogeneous,
            processors: 4,
            ccr: 2.0,
            reps: 3,
            base_seed: 77,
            tasks: Some(25),
            validate: false,
            strong_baseline: false,
        };
        let adaptive = run_cell_adaptive(&spec, 1e9, 6); // stops at 3 reps
        let fixed = run_cell(&spec);
        assert_eq!(adaptive.ba_makespan.to_bits(), fixed.ba_makespan.to_bits());
    }

    #[test]
    fn fig_pair_matches_individual_figures() {
        let p = tiny_params();
        let (f1, f2) = fig_pair(&p, Setting::Homogeneous);
        let f1_solo = fig1(&p);
        let f2_solo = fig2(&p);
        assert_eq!(f1.x, f1_solo.x);
        assert_eq!(f2.x, f2_solo.x);
        for (a, b) in f1.oihsa.iter().zip(&f1_solo.oihsa) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in f2.bbsa.iter().zip(&f2_solo.bbsa) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(f1.cells.len(), f2.cells.len());
    }

    #[test]
    fn proposed_algorithms_win_on_average_in_tiny_sweep() {
        // The headline claim, at toy scale: averaged over a small grid,
        // OIHSA and BBSA do not lose to BA.
        let p = FigureParams {
            reps: 3,
            tasks: Some(40),
            base_seed: 99,
            procs: vec![4],
            ccrs: vec![2.0, 5.0],
            threads: 2,
            validate: true,
            strong_baseline: false,
            progress: false,
        };
        let f = fig1(&p);
        let mean_oi: f64 = f.oihsa.iter().sum::<f64>() / f.oihsa.len() as f64;
        let mean_bb: f64 = f.bbsa.iter().sum::<f64>() / f.bbsa.len() as f64;
        assert!(mean_oi > -5.0, "OIHSA mean improvement {mean_oi}");
        assert!(mean_bb > -5.0, "BBSA mean improvement {mean_bb}");
    }
}
