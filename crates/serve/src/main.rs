//! The `es-serve` binary: `driver`, `worker` and `bench` subcommands
//! over [`es_serve::run_cli`]. Workers spawned by a driver launched
//! from this binary re-exec it with the `worker` subcommand.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(es_serve::run_cli(&args, &["worker"]));
}
