//! Driver configuration: defaults, `ES_SERVE_*` environment
//! overrides, and CLI-flag parsing — all through the typed
//! [`EnvError`] diagnostics of `es-runner`, so a malformed knob is
//! logged and replaced by its default instead of panicking the
//! service at startup (DESIGN.md §13.4).

use crate::chaos::ChaosSpec;
use es_runner::{env_parse, env_usize, EnvError};
use std::path::PathBuf;
use std::time::Duration;

/// What to do when a request arrives and the admission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the arriving request (`Overloaded` to the newcomer);
    /// admitted work is never dropped. The default.
    RejectNewest,
    /// Admit the newcomer and shed the oldest *queued* request
    /// (`Overloaded` to its client) — freshest-first service.
    /// Dispatched work is still never dropped.
    RejectOldest,
}

impl ShedPolicy {
    /// Parse a policy name as used by `ES_SERVE_SHED` / `--shed`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "reject-newest" => Some(Self::RejectNewest),
            "reject-oldest" => Some(Self::RejectOldest),
            _ => None,
        }
    }

    /// The name [`ShedPolicy::parse`] accepts for this policy.
    pub fn name(self) -> &'static str {
        match self {
            Self::RejectNewest => "reject-newest",
            Self::RejectOldest => "reject-oldest",
        }
    }
}

/// Full driver configuration. Every field has a default; the
/// environment (`ES_SERVE_*`) and CLI flags override it.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix-domain socket path the driver listens on.
    pub socket: PathBuf,
    /// Worker processes to keep alive (`ES_SERVE_WORKERS`, ≥ 1).
    pub workers: usize,
    /// Admission-queue capacity (`ES_SERVE_QUEUE_CAP`, ≥ 1); beyond
    /// it the shed policy applies.
    pub queue_cap: usize,
    /// Shed policy when the queue is full (`ES_SERVE_SHED`).
    pub shed: ShedPolicy,
    /// Default per-request deadline, applied when a request carries
    /// `deadline_ms == 0` (`ES_SERVE_DEADLINE_MS`).
    pub deadline_ms: u64,
    /// Maximum attempts per admitted request (`ES_SERVE_RETRY_MAX`,
    /// ≥ 1); beyond it the request is rejected `RetriesExhausted`.
    pub retry_max: u32,
    /// Base of the exponential retry backoff
    /// (`ES_SERVE_BACKOFF_MS`): attempt *n* waits
    /// `backoff_base_ms × 2^(n-1)` before re-dispatch.
    pub backoff_base_ms: u64,
    /// Heartbeat-ping period for idle workers
    /// (`ES_SERVE_HEARTBEAT_MS`).
    pub heartbeat_ms: u64,
    /// Supervision timeout (`ES_SERVE_STALL_MS`): an idle worker
    /// whose last pong is older than this, or a busy worker holding
    /// one attempt longer than this, is declared stalled and killed.
    pub stall_timeout_ms: u64,
    /// Optional chaos injection (`--chaos`; never read from the
    /// environment — chaos is an explicit harness decision).
    pub chaos: Option<ChaosSpec>,
}

impl ServeConfig {
    /// Defaults for a driver listening on `socket`. Tuned for the
    /// workspace's instance sizes: scheduling one service-mix
    /// instance is milliseconds, so second-scale deadlines and
    /// half-second stall detection are generous in release builds.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            workers: 2,
            queue_cap: 64,
            shed: ShedPolicy::RejectNewest,
            deadline_ms: 30_000,
            retry_max: 4,
            backoff_base_ms: 10,
            heartbeat_ms: 100,
            stall_timeout_ms: 2_000,
            chaos: None,
        }
    }

    /// Apply `ES_SERVE_*` environment overrides. Malformed values are
    /// returned as typed diagnostics and the field keeps its previous
    /// value — the service starts with the operator told exactly what
    /// was ignored, rather than dying or silently misbehaving.
    pub fn apply_env(&mut self) -> Vec<EnvError> {
        let mut diags = Vec::new();
        let mut take_usize = |var: &str, slot: &mut usize| match env_usize(var) {
            Ok(Some(v)) => *slot = v,
            Ok(None) => {}
            Err(e) => diags.push(e),
        };
        take_usize("ES_SERVE_WORKERS", &mut self.workers);
        take_usize("ES_SERVE_QUEUE_CAP", &mut self.queue_cap);
        let mut take_u64 = |var: &str, slot: &mut u64| match env_parse::<u64>(var) {
            Ok(Some(v)) => *slot = v,
            Ok(None) => {}
            Err(e) => diags.push(e),
        };
        take_u64("ES_SERVE_DEADLINE_MS", &mut self.deadline_ms);
        take_u64("ES_SERVE_BACKOFF_MS", &mut self.backoff_base_ms);
        take_u64("ES_SERVE_HEARTBEAT_MS", &mut self.heartbeat_ms);
        take_u64("ES_SERVE_STALL_MS", &mut self.stall_timeout_ms);
        match env_parse::<u32>("ES_SERVE_RETRY_MAX") {
            Ok(Some(v)) if v >= 1 => self.retry_max = v,
            Ok(Some(zero)) => diags.push(EnvError {
                var: "ES_SERVE_RETRY_MAX".to_string(),
                value: zero.to_string(),
                reason: "expected a positive integer".to_string(),
            }),
            Ok(None) => {}
            Err(e) => diags.push(e),
        }
        match env_parse::<String>("ES_SERVE_SHED") {
            Ok(Some(s)) => match ShedPolicy::parse(&s) {
                Some(p) => self.shed = p,
                None => diags.push(EnvError {
                    var: "ES_SERVE_SHED".to_string(),
                    value: s,
                    reason: "expected `reject-newest` or `reject-oldest`".to_string(),
                }),
            },
            Ok(None) => {}
            Err(e) => diags.push(e),
        }
        diags
    }

    /// The effective deadline for a request-level override (`0` means
    /// "use the driver default").
    pub fn effective_deadline(&self, request_deadline_ms: u32) -> Duration {
        if request_deadline_ms == 0 {
            Duration::from_millis(self.deadline_ms)
        } else {
            Duration::from_millis(u64::from(request_deadline_ms))
        }
    }

    /// Backoff before re-dispatching attempt `next_attempt` (≥ 2):
    /// `backoff_base_ms × 2^(next_attempt - 2)`, i.e. the first retry
    /// waits one base period, each further retry doubles it.
    pub fn backoff(&self, next_attempt: u32) -> Duration {
        let doublings = next_attempt.saturating_sub(2).min(16);
        Duration::from_millis(self.backoff_base_ms.saturating_mul(1 << doublings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_policy_parses_its_own_names() {
        for p in [ShedPolicy::RejectNewest, ShedPolicy::RejectOldest] {
            assert_eq!(ShedPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(ShedPolicy::parse("drop-table"), None);
    }

    #[test]
    fn env_overrides_apply_and_malformed_ones_diagnose() {
        // Process-global env: use keys unique to this test.
        std::env::set_var("ES_SERVE_WORKERS", "5");
        std::env::set_var("ES_SERVE_QUEUE_CAP", "banana");
        std::env::set_var("ES_SERVE_SHED", "reject-oldest");
        std::env::set_var("ES_SERVE_RETRY_MAX", "0");
        let mut cfg = ServeConfig::new("/tmp/es-serve-test.sock");
        let before_cap = cfg.queue_cap;
        let before_retry = cfg.retry_max;
        let diags = cfg.apply_env();
        assert_eq!(cfg.workers, 5);
        assert_eq!(cfg.queue_cap, before_cap, "malformed value keeps default");
        assert_eq!(cfg.shed, ShedPolicy::RejectOldest);
        assert_eq!(cfg.retry_max, before_retry, "zero retries rejected");
        let vars: Vec<&str> = diags.iter().map(|d| d.var.as_str()).collect();
        assert!(vars.contains(&"ES_SERVE_QUEUE_CAP"), "diags: {vars:?}");
        assert!(vars.contains(&"ES_SERVE_RETRY_MAX"), "diags: {vars:?}");
        std::env::remove_var("ES_SERVE_WORKERS");
        std::env::remove_var("ES_SERVE_QUEUE_CAP");
        std::env::remove_var("ES_SERVE_SHED");
        std::env::remove_var("ES_SERVE_RETRY_MAX");
    }

    #[test]
    fn env_edge_cases_keep_defaults_and_diagnose() {
        // Empty, blank, overflowing, and garbage values must each keep
        // the field's default and yield a typed diagnostic naming the
        // variable — never a silent default or a panic. (Uses only
        // vars no other test writes, since the environment is
        // process-global and tests run in parallel.)
        std::env::set_var("ES_SERVE_DEADLINE_MS", "");
        std::env::set_var("ES_SERVE_BACKOFF_MS", "   ");
        std::env::set_var("ES_SERVE_HEARTBEAT_MS", "99999999999999999999999");
        std::env::set_var("ES_SERVE_STALL_MS", "soon");
        let mut cfg = ServeConfig::new("/tmp/es-serve-edge.sock");
        let defaults = cfg.clone();
        let diags = cfg.apply_env();
        assert_eq!(cfg.deadline_ms, defaults.deadline_ms);
        assert_eq!(cfg.backoff_base_ms, defaults.backoff_base_ms);
        assert_eq!(cfg.heartbeat_ms, defaults.heartbeat_ms);
        assert_eq!(cfg.stall_timeout_ms, defaults.stall_timeout_ms);
        let mut vars: Vec<&str> = diags.iter().map(|d| d.var.as_str()).collect();
        vars.sort_unstable();
        for var in [
            "ES_SERVE_BACKOFF_MS",
            "ES_SERVE_DEADLINE_MS",
            "ES_SERVE_HEARTBEAT_MS",
            "ES_SERVE_STALL_MS",
        ] {
            assert!(
                vars.contains(&var),
                "missing diagnostic for {var}: {vars:?}"
            );
        }
        for d in &diags {
            let shown = d.to_string();
            assert!(shown.contains("using default"), "display: {shown}");
        }
        std::env::remove_var("ES_SERVE_DEADLINE_MS");
        std::env::remove_var("ES_SERVE_BACKOFF_MS");
        std::env::remove_var("ES_SERVE_HEARTBEAT_MS");
        std::env::remove_var("ES_SERVE_STALL_MS");
    }

    #[test]
    fn deadlines_and_backoff_shapes() {
        let cfg = ServeConfig::new("/tmp/s.sock");
        assert_eq!(
            cfg.effective_deadline(0),
            Duration::from_millis(cfg.deadline_ms)
        );
        assert_eq!(cfg.effective_deadline(250), Duration::from_millis(250));
        // Attempt 2 (first retry) waits one base period; 3 doubles it.
        assert_eq!(cfg.backoff(2), Duration::from_millis(cfg.backoff_base_ms));
        assert_eq!(
            cfg.backoff(3),
            Duration::from_millis(cfg.backoff_base_ms * 2)
        );
        assert_eq!(
            cfg.backoff(4),
            Duration::from_millis(cfg.backoff_base_ms * 4)
        );
    }
}
