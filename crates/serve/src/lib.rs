//! es-serve: fault-tolerant scheduling-as-a-service (DESIGN.md §13).
//!
//! A **driver** listens on a Unix domain socket, admits scheduling
//! requests into a bounded queue with an explicit shed policy, and
//! partitions them across a pool of supervised **worker** processes —
//! stateless wrappers over `es_core` scheduling + repair speaking
//! the es-wire-v1 format on stdin/stdout. Supervision covers
//! per-request deadlines, heartbeats, exponential backoff with a
//! bounded retry budget, and automatic respawn of dead workers.
//!
//! The crate also ships the **bench** harness (`es-serve bench`): a
//! deterministic load generator with a seeded chaos mode
//! (`--chaos kill-worker:p,stall-worker:q`) that proves every
//! admitted request completes with a schedule bitwise-identical to a
//! single-process run of the same compute path.
//!
//! Layout:
//! - [`config`] — driver configuration (`ES_SERVE_*` env + CLI);
//! - [`chaos`] — seeded, deterministic fault injection;
//! - [`driver`] — the single-owner event loop and worker supervision;
//! - [`worker`] — the stateless compute process;
//! - [`client`] — a small synchronous client;
//! - [`bench`] — the load generator + bitwise verifier.

pub mod bench;
pub mod chaos;
pub mod client;
pub mod config;
pub mod driver;
pub mod worker;

pub use bench::{run_bench, BenchOpts, BenchReport};
pub use chaos::{ChaosAction, ChaosSpec};
pub use client::Client;
pub use config::{ServeConfig, ShedPolicy};
pub use driver::{run_driver, WorkerCommand};
pub use worker::{compute_reply, compute_schedule, run_worker};

use std::path::PathBuf;

const USAGE: &str = "\
usage: es-serve <driver|worker|bench> [options]

  driver   --socket PATH [--workers N] [--queue-cap N]
           [--shed reject-newest|reject-oldest] [--deadline-ms N]
           [--retry-max N] [--backoff-ms N] [--heartbeat-ms N]
           [--stall-ms N] [--chaos SPEC] [--chaos-seed N]
  worker   (no options; speaks es-wire-v1 on stdin/stdout)
  bench    [--requests N] [--clients N] [--workers N] [--queue-cap N]
           [--seed N] [--chaos SPEC] [--chaos-seed N]
           [--socket PATH] [--out FILE]

SPEC is `kill-worker:P,stall-worker:Q` with probabilities in [0, 1].
ES_SERVE_* environment variables set driver defaults; CLI flags win.";

/// Pull `--name value` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{name} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    name: &str,
) -> Result<Option<T>, String> {
    match take_flag(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{name} value `{v}` is not valid")),
    }
}

/// Parse the optional `--chaos SPEC [--chaos-seed N]` pair.
fn take_chaos(args: &mut Vec<String>) -> Result<Option<ChaosSpec>, String> {
    let seed = take_parsed::<u64>(args, "--chaos-seed")?.unwrap_or(7);
    match take_flag(args, "--chaos")? {
        None => Ok(None),
        Some(spec) => ChaosSpec::parse(&spec, seed).map(Some),
    }
}

fn reject_unknown(args: &[String]) -> Result<(), String> {
    match args.first() {
        None => Ok(()),
        Some(stray) => Err(format!("unrecognized argument `{stray}`")),
    }
}

/// CLI entry point shared by the `es-serve` binary and the es-cli
/// `serve` subcommand. `args` excludes the program/subcommand prefix;
/// `worker_argv` is how a driver launched from this binary should
/// start its workers (`["worker"]` for es-serve itself,
/// `["serve", "worker"]` for es-cli). Returns the process exit code.
pub fn run_cli(args: &[String], worker_argv: &[&str]) -> i32 {
    match run_cli_inner(args, worker_argv) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("es-serve: {message}");
            eprintln!("{USAGE}");
            2
        }
    }
}

fn run_cli_inner(args: &[String], worker_argv: &[&str]) -> Result<i32, String> {
    let Some(sub) = args.first() else {
        return Err("missing subcommand".to_string());
    };
    let mut rest: Vec<String> = args[1..].to_vec();
    match sub.as_str() {
        "worker" => {
            reject_unknown(&rest)?;
            run_worker().map_err(|e| format!("worker failed: {e}"))?;
            Ok(0)
        }
        "driver" => {
            let socket = take_flag(&mut rest, "--socket")?
                .map_or_else(|| PathBuf::from("/tmp/es-serve.sock"), PathBuf::from);
            let mut cfg = ServeConfig::new(&socket);
            for diag in cfg.apply_env() {
                eprintln!("es-serve: {diag}");
            }
            if let Some(v) = take_parsed(&mut rest, "--workers")? {
                cfg.workers = v;
            }
            if let Some(v) = take_parsed(&mut rest, "--queue-cap")? {
                cfg.queue_cap = v;
            }
            if let Some(v) = take_flag(&mut rest, "--shed")? {
                cfg.shed = ShedPolicy::parse(&v).ok_or(format!("unknown shed policy `{v}`"))?;
            }
            if let Some(v) = take_parsed(&mut rest, "--deadline-ms")? {
                cfg.deadline_ms = v;
            }
            if let Some(v) = take_parsed(&mut rest, "--retry-max")? {
                cfg.retry_max = v;
            }
            if let Some(v) = take_parsed(&mut rest, "--backoff-ms")? {
                cfg.backoff_base_ms = v;
            }
            if let Some(v) = take_parsed(&mut rest, "--heartbeat-ms")? {
                cfg.heartbeat_ms = v;
            }
            if let Some(v) = take_parsed(&mut rest, "--stall-ms")? {
                cfg.stall_timeout_ms = v;
            }
            cfg.chaos = take_chaos(&mut rest)?;
            reject_unknown(&rest)?;
            let worker_cmd = WorkerCommand::current_exe(worker_argv).map_err(|e| e.to_string())?;
            eprintln!(
                "es-serve: driver on {} ({} workers, queue {}, shed {})",
                cfg.socket.display(),
                cfg.workers,
                cfg.queue_cap,
                cfg.shed.name()
            );
            let stats = run_driver(cfg, worker_cmd).map_err(|e| format!("driver: {e}"))?;
            eprintln!(
                "es-serve: drained; admitted {}, completed {}, shed {}, retries {}, \
                 respawns {}",
                stats.admitted, stats.completed, stats.shed, stats.retries, stats.worker_respawns
            );
            Ok(0)
        }
        "bench" => {
            let socket = take_flag(&mut rest, "--socket")?.map_or_else(
                || std::env::temp_dir().join(format!("es-serve-bench-{}.sock", std::process::id())),
                PathBuf::from,
            );
            let opts = BenchOpts {
                requests: take_parsed(&mut rest, "--requests")?.unwrap_or(48),
                clients: take_parsed(&mut rest, "--clients")?.unwrap_or(4),
                workers: take_parsed(&mut rest, "--workers")?.unwrap_or(2),
                queue_cap: take_parsed(&mut rest, "--queue-cap")?.unwrap_or(64),
                chaos: take_chaos(&mut rest)?,
                seed: take_parsed(&mut rest, "--seed")?.unwrap_or(0x5e57_11ce),
                socket,
                out: take_flag(&mut rest, "--out")?.map(PathBuf::from),
                worker_cmd: WorkerCommand::current_exe(worker_argv).map_err(|e| e.to_string())?,
            };
            reject_unknown(&rest)?;
            let report = run_bench(&opts)?;
            println!("{}", bench::render_summary(&report));
            if let Some(out) = &report.opts.out {
                std::fs::write(out, bench::render_json(&report))
                    .map_err(|e| format!("writing {}: {e}", out.display()))?;
                eprintln!("es-serve: report written to {}", out.display());
            }
            Ok(i32::from(report.lost != 0 || report.mismatched != 0))
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_flag_extracts_pairs() {
        let mut args: Vec<String> = ["--workers", "3", "--socket", "/tmp/x"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            take_flag(&mut args, "--socket").expect("ok"),
            Some("/tmp/x".to_string())
        );
        assert_eq!(
            take_parsed::<usize>(&mut args, "--workers").expect("ok"),
            Some(3)
        );
        assert!(args.is_empty());
        assert_eq!(take_flag(&mut args, "--socket").expect("ok"), None);
    }

    #[test]
    fn take_flag_rejects_missing_value() {
        let mut args = vec!["--workers".to_string()];
        assert!(take_flag(&mut args, "--workers").is_err());
    }

    #[test]
    fn cli_rejects_unknown_subcommand_and_strays() {
        assert_eq!(run_cli(&["frobnicate".to_string()], &["worker"]), 2);
        assert_eq!(
            run_cli(&["driver".to_string(), "--bogus".to_string()], &["worker"]),
            2
        );
    }
}
