//! Seeded, deterministic chaos injection (DESIGN.md §13.5).
//!
//! Chaos mode proves the driver's fault tolerance *measurably*: with
//! `--chaos kill-worker:p,stall-worker:q` the driver itself sabotages
//! a seeded fraction of first attempts — SIGKILLing the worker right
//! after dispatch, or wedging it past the supervision timeout — and
//! the bench then asserts that every admitted request still completes
//! with a bitwise-identical schedule.
//!
//! Decisions are a pure hash of `(seed, job id)`: independent of
//! timing, thread interleaving and worker identity, so a chaos run is
//! exactly reproducible from its config. Chaos strikes only the
//! *first* attempt of a job — one injected fault per request — which
//! keeps the completion guarantee provable with a bounded retry
//! budget (a single retry already clears every injected fault).

/// What the driver does to the worker right after dispatching a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Dispatch normally.
    None,
    /// SIGKILL the worker immediately after writing the request —
    /// the in-flight attempt dies with it.
    KillWorker,
    /// Prepend a `Stall` frame so the worker sleeps past the
    /// supervision timeout; the driver must detect and kill it.
    StallWorker,
}

/// Parsed `--chaos` specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosSpec {
    /// Probability a job's first attempt gets [`ChaosAction::KillWorker`].
    pub kill_worker: f64,
    /// Probability a job's first attempt gets [`ChaosAction::StallWorker`].
    pub stall_worker: f64,
    /// Decision seed; equal seeds make equal runs.
    pub seed: u64,
}

impl ChaosSpec {
    /// Parse `kill-worker:P,stall-worker:Q` (either term optional,
    /// any order; probabilities in `[0, 1]` summing to ≤ 1).
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut kill = 0.0f64;
        let mut stall = 0.0f64;
        for term in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let (name, prob) = term
                .trim()
                .split_once(':')
                .ok_or_else(|| format!("chaos term `{term}` is not name:probability"))?;
            let p: f64 = prob
                .trim()
                .parse()
                .map_err(|_| format!("chaos probability `{prob}` is not a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("chaos probability {p} outside [0, 1]"));
            }
            match name.trim() {
                "kill-worker" => kill = p,
                "stall-worker" => stall = p,
                other => return Err(format!("unknown chaos fault `{other}`")),
            }
        }
        if kill + stall > 1.0 {
            return Err(format!("chaos probabilities sum to {} > 1", kill + stall));
        }
        Ok(Self {
            kill_worker: kill,
            stall_worker: stall,
            seed,
        })
    }

    /// The action for `job`'s first attempt. A pure function: hash
    /// `(seed, job)` to a uniform draw in `[0, 1)`, carve it into
    /// `[0, kill)`, `[kill, kill+stall)`, rest.
    pub fn decide(&self, job: u64) -> ChaosAction {
        let h = splitmix64(self.seed ^ job.wrapping_mul(0x2545_F491_4F6C_DD1D));
        // 53 uniform bits — exactly representable in f64.
        #[allow(clippy::cast_precision_loss)]
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.kill_worker {
            ChaosAction::KillWorker
        } else if u < self.kill_worker + self.stall_worker {
            ChaosAction::StallWorker
        } else {
            ChaosAction::None
        }
    }
}

/// SplitMix64 finalizer — the same bit mixer the workload generator's
/// seeding uses; full-period and well-distributed for sequential ids.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_partial_specs() {
        let c = ChaosSpec::parse("kill-worker:0.2,stall-worker:0.1", 7).expect("valid");
        assert!((c.kill_worker - 0.2).abs() < 1e-12);
        assert!((c.stall_worker - 0.1).abs() < 1e-12);
        let c = ChaosSpec::parse("stall-worker:1.0", 7).expect("valid");
        assert!(c.kill_worker.abs() < 1e-12);
        let c = ChaosSpec::parse("", 7).expect("empty spec = no chaos");
        assert_eq!(c.decide(42), ChaosAction::None);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ChaosSpec::parse("kill-worker", 0).is_err());
        assert!(ChaosSpec::parse("kill-worker:2.0", 0).is_err());
        assert!(ChaosSpec::parse("rm-rf:0.1", 0).is_err());
        assert!(ChaosSpec::parse("kill-worker:0.7,stall-worker:0.7", 0).is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = ChaosSpec::parse("kill-worker:0.5", 1).expect("valid");
        let b = ChaosSpec::parse("kill-worker:0.5", 2).expect("valid");
        let da: Vec<ChaosAction> = (0..64).map(|j| a.decide(j)).collect();
        assert_eq!(da, (0..64).map(|j| a.decide(j)).collect::<Vec<_>>());
        assert_ne!(da, (0..64).map(|j| b.decide(j)).collect::<Vec<_>>());
    }

    #[test]
    fn rates_are_roughly_honored() {
        let c = ChaosSpec::parse("kill-worker:0.3,stall-worker:0.2", 99).expect("valid");
        let n = 10_000u64;
        let mut kills = 0;
        let mut stalls = 0;
        for j in 0..n {
            match c.decide(j) {
                ChaosAction::KillWorker => kills += 1,
                ChaosAction::StallWorker => stalls += 1,
                ChaosAction::None => {}
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let (k, s) = (f64::from(kills) / n as f64, f64::from(stalls) / n as f64);
        assert!((k - 0.3).abs() < 0.02, "kill rate {k}");
        assert!((s - 0.2).abs() < 0.02, "stall rate {s}");
    }

    #[test]
    fn extreme_probabilities_are_exact() {
        let all = ChaosSpec::parse("kill-worker:1.0", 3).expect("valid");
        assert!((0..500).all(|j| all.decide(j) == ChaosAction::KillWorker));
        let none = ChaosSpec::parse("kill-worker:0,stall-worker:0", 3).expect("valid");
        assert!((0..500).all(|j| none.decide(j) == ChaosAction::None));
    }
}
