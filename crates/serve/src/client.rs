//! A small synchronous client for the es-serve driver socket, used by
//! the load generator, the e2e tests, and anyone scripting the
//! service from Rust.

use es_wire::{read_frame, read_preamble, write_frame, write_preamble, Frame, WireError};
use std::io::{BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One connection to a driver: frames out, frames in, strictly in
/// the order the driver answers (the driver replies per request id,
/// so callers matching on ids may pipeline freely).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl Client {
    /// Connect and exchange preambles.
    pub fn connect(socket: &Path) -> Result<Self, WireError> {
        let stream = UnixStream::connect(socket).map_err(WireError::from)?;
        let read_half = stream.try_clone().map_err(WireError::from)?;
        let mut writer = BufWriter::new(stream);
        write_preamble(&mut writer)?;
        std::io::Write::flush(&mut writer)?;
        let mut reader = BufReader::new(read_half);
        read_preamble(&mut reader)?;
        Ok(Self { reader, writer })
    }

    /// Send one frame (flushed on return).
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        write_frame(&mut self.writer, frame)
    }

    /// Receive the next frame; `Ok(None)` when the driver closed the
    /// connection.
    pub fn recv(&mut self) -> Result<Option<Frame>, WireError> {
        read_frame(&mut self.reader)
    }

    /// Send a frame and block for the next reply, treating an EOF as
    /// a protocol error (for callers that know a reply is due).
    pub fn round_trip(&mut self, frame: &Frame) -> Result<Frame, WireError> {
        self.send(frame)?;
        self.recv()?
            .ok_or(WireError::Truncated { need: 1, have: 0 })
    }
}
