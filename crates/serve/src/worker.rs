//! The worker process: a thin, stateless wrapper over `es_core`
//! scheduling (+ fault-injected repair) speaking es-wire-v1 on
//! stdin/stdout (DESIGN.md §13.3).
//!
//! A worker holds **no state between requests** — each request
//! carries deterministic generator coordinates, so any worker, on any
//! attempt, after any number of respawns, computes the same bits.
//! That is the whole determinism-under-chaos argument: the driver may
//! kill and retry freely because attempts are interchangeable.
//!
//! The bench's single-process reference runs [`compute_reply`]
//! directly — the *same function* the worker runs — so a bitwise
//! mismatch can only come from transport or supervision, never from a
//! diverging reference implementation.

use es_core::{repair, FaultPlan, FaultSpec};
use es_wire::{
    read_frame, read_preamble, write_frame, write_preamble, Frame, RejectReason, Request,
    ScheduleReply, WireError, WireSchedule,
};
use std::io::{BufReader, BufWriter, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Compute the schedule a request asks for: regenerate the instance
/// from its spec, run the named scheduler, and — when the request
/// carries a fault leg — overlay the seeded fault plan and repair.
/// Every step is deterministic in the request's own fields.
pub fn compute_schedule(req: &Request) -> Result<WireSchedule, RejectReason> {
    let cfg = req.instance.to_config();
    if cfg.processors == 0 {
        return Err(RejectReason::BadRequest {
            detail: "instance has zero processors".to_string(),
        });
    }
    let inst = es_workload::generate(&cfg);
    let scheduler = req.algo.build(req.tuning.to_tuning());
    let schedule =
        scheduler
            .schedule(&inst.dag, &inst.topo)
            .map_err(|e| RejectReason::Scheduler {
                detail: e.to_string(),
            })?;
    let final_schedule = match &req.fault {
        None => schedule,
        Some(f) => {
            let spec = FaultSpec {
                intensity: f.intensity,
                horizon: schedule.makespan,
                kill_proc: f.kill_proc,
                kill_link: f.kill_link,
            };
            let plan = FaultPlan::seeded(&inst.dag, &inst.topo, &spec, f.seed);
            repair(&inst.dag, &inst.topo, &schedule, &plan)
                .map(|outcome| outcome.schedule)
                .map_err(|e| RejectReason::Scheduler {
                    detail: format!("repair failed: {e}"),
                })?
        }
    };
    Ok(WireSchedule::from_schedule(&final_schedule))
}

/// [`compute_schedule`] with panic isolation, shaped as the reply
/// frame the driver expects: `Schedule` on success, `Reject`
/// otherwise. A panicking scheduler becomes a typed
/// [`RejectReason::WorkerPanic`] — the worker survives to serve the
/// next request, and the driver decides whether to retry.
pub fn compute_reply(req: &Request) -> Frame {
    let id = req.id;
    match catch_unwind(AssertUnwindSafe(|| compute_schedule(req))) {
        Ok(Ok(schedule)) => Frame::Schedule(ScheduleReply {
            id,
            attempts: 0, // the driver fills in its own attempt count
            schedule,
        }),
        Ok(Err(reason)) => Frame::Reject { id, reason },
        Err(payload) => Frame::Reject {
            id,
            reason: RejectReason::WorkerPanic {
                detail: panic_text(payload.as_ref()),
            },
        },
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The worker main loop over arbitrary transport (stdin/stdout in
/// production; in-memory pipes in tests). Answers `Ping` with `Pong`,
/// serves `Request`s via [`compute_reply`], honors `Stall` (the chaos
/// harness's wedge simulation) by sleeping, and exits cleanly on
/// `Shutdown` or end-of-stream.
pub fn serve_streams<R: Read, W: Write>(input: R, output: W) -> Result<(), WireError> {
    let mut input = BufReader::new(input);
    let mut output = BufWriter::new(output);
    write_preamble(&mut output)?;
    output.flush()?;
    read_preamble(&mut input)?;
    while let Some(frame) = read_frame(&mut input)? {
        match frame {
            Frame::Ping { nonce } => write_frame(&mut output, &Frame::Pong { nonce })?,
            Frame::Stall { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            Frame::Request(req) => write_frame(&mut output, &compute_reply(&req))?,
            Frame::Shutdown => break,
            // Anything else is not addressed to a worker; ignore it
            // rather than dying mid-burst.
            _ => {}
        }
    }
    Ok(())
}

/// Entry point for the `worker` subcommand: serve stdin/stdout until
/// shutdown or EOF. The unlocked handles are fine here — the worker
/// is single-threaded and [`serve_streams`] adds its own buffering.
pub fn run_worker() -> Result<(), WireError> {
    serve_streams(std::io::stdin(), std::io::stdout())
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_wire::{AlgoId, WireFault, WireInstance, WireTuning};

    fn sample_request(id: u64, algo: AlgoId, fault: Option<WireFault>) -> Request {
        Request {
            id,
            deadline_ms: 0,
            tenant: 0,
            algo,
            tuning: WireTuning::current_default(),
            instance: WireInstance {
                heterogeneous: true,
                processors: 4,
                ccr: 1.0,
                tasks: Some(25),
                seed: 0xC0FFEE,
            },
            fault,
        }
    }

    #[test]
    fn compute_is_deterministic_across_calls() {
        for algo in AlgoId::ALL {
            let req = sample_request(1, algo, None);
            let a = compute_schedule(&req).expect("schedulable");
            let b = compute_schedule(&req).expect("schedulable");
            assert_eq!(a, b, "{algo:?} not reproducible");
        }
    }

    #[test]
    fn fault_leg_repairs_deterministically() {
        let fault = WireFault {
            intensity: 0.4,
            kill_proc: true,
            kill_link: true,
            seed: 77,
        };
        let req = sample_request(2, AlgoId::Oihsa, Some(fault));
        let a = compute_schedule(&req).expect("repairable");
        let b = compute_schedule(&req).expect("repairable");
        assert_eq!(a, b);
        // The fault leg actually changes the answer.
        let clean = compute_schedule(&sample_request(2, AlgoId::Oihsa, None)).expect("ok");
        assert_ne!(a, clean, "fault leg was a no-op");
    }

    #[test]
    fn bad_request_is_a_typed_reject() {
        let mut req = sample_request(3, AlgoId::Ba, None);
        req.instance.processors = 0;
        match compute_reply(&req) {
            Frame::Reject {
                id: 3,
                reason: RejectReason::BadRequest { .. },
            } => {}
            other => panic!("expected BadRequest reject, got {other:?}"),
        }
    }

    #[test]
    fn serve_streams_answers_pings_and_requests() {
        // Drive a worker loop through in-memory pipes.
        let mut input = Vec::new();
        write_preamble(&mut input).expect("vec");
        write_frame(&mut input, &Frame::Ping { nonce: 9 }).expect("vec");
        let req = sample_request(5, AlgoId::BaStatic, None);
        write_frame(&mut input, &Frame::Request(req.clone())).expect("vec");
        write_frame(&mut input, &Frame::Shutdown).expect("vec");

        let mut output = Vec::new();
        serve_streams(input.as_slice(), &mut output).expect("clean run");

        let mut cur = std::io::Cursor::new(output);
        read_preamble(&mut cur).expect("preamble");
        assert_eq!(
            read_frame(&mut cur).expect("pong"),
            Some(Frame::Pong { nonce: 9 })
        );
        match read_frame(&mut cur).expect("reply") {
            Some(Frame::Schedule(reply)) => {
                assert_eq!(reply.id, 5);
                assert_eq!(reply.schedule, compute_schedule(&req).expect("ok"));
            }
            other => panic!("expected schedule, got {other:?}"),
        }
        assert_eq!(read_frame(&mut cur).expect("eof"), None);
    }
}
