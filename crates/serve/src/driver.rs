//! The es-serve driver: admission, partitioning, supervision and
//! fault tolerance (DESIGN.md §13.2).
//!
//! ## Architecture: one owner, no shared state
//!
//! Every piece of mutable driver state — the admission queue, the job
//! table, the worker table, the stats — is owned by a **single event
//! loop** fed by an mpsc channel. Listener, per-connection readers,
//! per-worker readers and the ticker are I/O pumps that only convert
//! bytes/time into [`Event`]s; client writer threads only convert
//! frames back into bytes. No mutex guards any driver state, so
//! there is nothing to poison, no lock ordering to get wrong, and the
//! supervision logic is exactly as testable as a pure state machine.
//!
//! ## Supervision state machine (per worker)
//!
//! ```text
//!           spawn                 dispatch
//!   (dead) ───────▶ idle ───────────────────▶ busy(job, since)
//!     ▲              │ pong age > stall_t       │
//!     │              ▼                          │ reply ──▶ idle
//!     │  respawn   killed ◀──── busy age > stall_t (wedged)
//!     └──────────────┘      ◀──── stdout EOF (crashed/killed)
//! ```
//!
//! A worker death while busy turns the in-flight attempt into a
//! retry: the job re-enters the queue front after an exponential
//! backoff, until its deadline or the retry budget runs out. Workers
//! are stateless (requests carry generator coordinates), so a retry
//! on any worker reproduces the same schedule bit for bit.

use crate::chaos::ChaosAction;
use crate::config::{ServeConfig, ShedPolicy};
use es_wire::{
    read_frame, read_preamble, write_frame, write_preamble, DriverStats, Frame, RejectReason,
    Request,
};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to launch a worker process. The default is this binary's own
/// `worker` subcommand; es-cli substitutes `es-experiments serve
/// worker`.
#[derive(Clone, Debug)]
pub struct WorkerCommand {
    /// Program to execute.
    pub program: PathBuf,
    /// Arguments selecting the worker entry point.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// Launch the current executable with the given subcommand argv.
    pub fn current_exe(args: &[&str]) -> std::io::Result<Self> {
        Ok(Self {
            program: std::env::current_exe()?,
            args: args.iter().map(ToString::to_string).collect(),
        })
    }
}

/// Everything that can happen to the driver, funneled into the event
/// loop's channel by the I/O pump threads.
enum Event {
    /// A client connected; `tx` feeds its writer thread.
    ClientConnected { conn: u64, tx: Sender<Frame> },
    /// A frame arrived from a client connection.
    ClientFrame { conn: u64, frame: Frame },
    /// A client connection ended (EOF or error).
    ClientGone { conn: u64 },
    /// A frame arrived from a worker's stdout.
    WorkerFrame { worker: u64, frame: Frame },
    /// A worker's stdout closed: the process crashed, was killed, or
    /// exited.
    WorkerGone { worker: u64 },
    /// Periodic timer: deadlines, backoff release, heartbeats.
    Tick,
}

/// One admitted, not-yet-answered request.
struct Job {
    conn: u64,
    client_id: u64,
    request: Request,
    attempts: u32,
    admitted: Instant,
    deadline: Instant,
    /// Set while the job waits out a retry backoff.
    not_before: Option<Instant>,
}

/// One live worker process.
struct WorkerSlot {
    child: Child,
    stdin: BufWriter<ChildStdin>,
    /// `Some((job, dispatched_at))` while an attempt is in flight.
    busy: Option<(u64, Instant)>,
    last_ping: Instant,
    last_pong: Instant,
    /// Chaos-killed: the SIGKILL is racing the worker, which may still
    /// flush a reply first. Replies from a doomed worker are dropped
    /// so the attempt dies with it and the retry path takes over.
    doomed: bool,
}

struct Core {
    cfg: ServeConfig,
    worker_cmd: WorkerCommand,
    events: Sender<Event>,
    conns: BTreeMap<u64, Sender<Frame>>,
    workers: BTreeMap<u64, WorkerSlot>,
    jobs: BTreeMap<u64, Job>,
    /// Dispatch order; retries enter at the front.
    queue: VecDeque<u64>,
    /// Jobs waiting out a retry backoff.
    delayed: Vec<u64>,
    stats: DriverStats,
    draining: bool,
    next_worker: u64,
    next_job: u64,
}

/// Run the driver until a client sends `Shutdown` and all admitted
/// work has drained. Returns the final stats (also queryable live via
/// `StatsRequest`).
pub fn run_driver(cfg: ServeConfig, worker_cmd: WorkerCommand) -> std::io::Result<DriverStats> {
    let _ = std::fs::remove_file(&cfg.socket);
    let listener = UnixListener::bind(&cfg.socket)?;
    let (tx, rx) = channel::<Event>();
    let stop = Arc::new(AtomicBool::new(false));

    let accept_thread = spawn_acceptor(listener, tx.clone(), Arc::clone(&stop));
    spawn_ticker(tx.clone(), tick_period(&cfg));

    let mut core = Core {
        worker_cmd,
        events: tx,
        conns: BTreeMap::new(),
        workers: BTreeMap::new(),
        jobs: BTreeMap::new(),
        queue: VecDeque::new(),
        delayed: Vec::new(),
        stats: DriverStats::default(),
        draining: false,
        next_worker: 0,
        next_job: 0,
        cfg,
    };
    for _ in 0..core.cfg.workers.max(1) {
        core.spawn_worker()?;
    }

    core.pump(&rx);

    // Drained: stop the acceptor (a dummy connection unblocks
    // `accept`), shut workers down, remove the socket.
    stop.store(true, Ordering::SeqCst);
    let _ = UnixStream::connect(&core.cfg.socket);
    let _ = accept_thread.join();
    for (_, mut slot) in std::mem::take(&mut core.workers) {
        let _ = write_frame(&mut slot.stdin, &Frame::Shutdown);
        drop(slot.stdin);
        let _ = slot.child.wait();
    }
    let _ = std::fs::remove_file(&core.cfg.socket);
    Ok(core.stats)
}

/// Tick period: fine enough to honor heartbeats and backoffs with
/// useful resolution, coarse enough to stay off the profile.
fn tick_period(cfg: &ServeConfig) -> Duration {
    Duration::from_millis((cfg.heartbeat_ms / 4).clamp(1, 50))
}

fn spawn_acceptor(
    listener: UnixListener,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut next_conn = 0u64;
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { break };
            next_conn += 1;
            if wire_up_client(next_conn, stream, &tx).is_err() {
                break; // event loop is gone
            }
        }
    })
}

/// Set up the reader + writer pump threads for one client connection.
/// `Err(())` means the event loop is gone (its receiver hung up).
fn wire_up_client(conn: u64, stream: UnixStream, events: &Sender<Event>) -> Result<(), ()> {
    let write_half = stream.try_clone().ok();
    let (frame_tx, frame_rx) = channel::<Frame>();
    events
        .send(Event::ClientConnected { conn, tx: frame_tx })
        .map_err(|_| ())?;

    if let Some(write_half) = write_half {
        std::thread::spawn(move || client_writer(write_half, &frame_rx));
    }
    let events = events.clone();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        if read_preamble(&mut reader).is_ok() {
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                if events.send(Event::ClientFrame { conn, frame }).is_err() {
                    return;
                }
            }
        }
        let _ = events.send(Event::ClientGone { conn });
    });
    Ok(())
}

fn client_writer(stream: UnixStream, frames: &Receiver<Frame>) {
    let mut writer = BufWriter::new(stream);
    if write_preamble(&mut writer).is_err() || writer.flush().is_err() {
        return;
    }
    while let Ok(frame) = frames.recv() {
        if write_frame(&mut writer, &frame).is_err() {
            return;
        }
    }
}

fn spawn_ticker(tx: Sender<Event>, period: Duration) {
    std::thread::spawn(move || {
        while tx.send(Event::Tick).is_ok() {
            std::thread::sleep(period);
        }
    });
}

impl Core {
    /// The event loop: runs until draining completes.
    fn pump(&mut self, rx: &Receiver<Event>) {
        while let Ok(event) = rx.recv() {
            match event {
                Event::ClientConnected { conn, tx } => {
                    self.conns.insert(conn, tx);
                }
                Event::ClientGone { conn } => {
                    self.conns.remove(&conn);
                }
                Event::ClientFrame { conn, frame } => self.on_client_frame(conn, frame),
                Event::WorkerFrame { worker, frame } => self.on_worker_frame(worker, frame),
                Event::WorkerGone { worker } => self.on_worker_death(worker),
                Event::Tick => self.on_tick(),
            }
            if self.draining && self.jobs.is_empty() {
                return;
            }
        }
    }

    fn reply(&mut self, conn: u64, frame: Frame) {
        if let Some(tx) = self.conns.get(&conn) {
            // A send error means the client vanished; its reply is
            // undeliverable, which is its problem, not ours.
            let _ = tx.send(frame);
        }
    }

    fn on_client_frame(&mut self, conn: u64, frame: Frame) {
        match frame {
            Frame::Request(request) => self.admit(conn, request),
            Frame::StatsRequest => {
                self.refresh_gauges();
                let stats = self.stats.clone();
                self.reply(conn, Frame::Stats(stats));
            }
            Frame::Shutdown => {
                self.draining = true;
            }
            Frame::Ping { nonce } => self.reply(conn, Frame::Pong { nonce }),
            // Clients have no business sending worker/driver reply
            // frames; ignore instead of tearing the connection down.
            _ => {}
        }
    }

    /// Admission control: bounded queue with an explicit shed policy.
    fn admit(&mut self, conn: u64, request: Request) {
        if self.draining {
            self.stats.rejected += 1;
            let id = request.id;
            self.reply(
                conn,
                Frame::Reject {
                    id,
                    reason: RejectReason::ShuttingDown,
                },
            );
            return;
        }
        let pending = self.queue.len() + self.delayed.len();
        if pending >= self.cfg.queue_cap {
            match self.cfg.shed {
                ShedPolicy::RejectNewest => {
                    self.stats.count_shed(request.tenant);
                    let id = request.id;
                    let queue_len = u32::try_from(pending).unwrap_or(u32::MAX);
                    self.reply(conn, Frame::Overloaded { id, queue_len });
                    return;
                }
                ShedPolicy::RejectOldest => self.shed_oldest_queued(),
            }
        }
        let now = Instant::now();
        self.next_job += 1;
        let job_id = self.next_job;
        let deadline = now + self.cfg.effective_deadline(request.deadline_ms);
        self.jobs.insert(
            job_id,
            Job {
                conn,
                client_id: request.id,
                request,
                attempts: 0,
                admitted: now,
                deadline,
                not_before: None,
            },
        );
        self.queue.push_back(job_id);
        self.stats.admitted += 1;
        self.dispatch_ready();
    }

    /// Shed the earliest-admitted *queued* job (retries in the
    /// backoff pen and dispatched work are never shed).
    fn shed_oldest_queued(&mut self) {
        let oldest = self
            .queue
            .iter()
            .copied()
            .min_by_key(|id| self.jobs.get(id).map(|j| j.admitted))
            .into_iter()
            .chain(self.delayed.iter().copied())
            .min_by_key(|id| self.jobs.get(id).map(|j| j.admitted));
        let Some(victim) = oldest else { return };
        self.queue.retain(|&id| id != victim);
        self.delayed.retain(|&id| id != victim);
        if let Some(job) = self.jobs.remove(&victim) {
            self.stats.count_shed(job.request.tenant);
            let queue_len = u32::try_from(self.queue.len()).unwrap_or(u32::MAX);
            self.reply(
                job.conn,
                Frame::Overloaded {
                    id: job.client_id,
                    queue_len,
                },
            );
        }
    }

    fn on_worker_frame(&mut self, worker: u64, frame: Frame) {
        match frame {
            Frame::Pong { .. } => {
                if let Some(slot) = self.workers.get_mut(&worker) {
                    slot.last_pong = Instant::now();
                }
            }
            Frame::Schedule(mut reply) => {
                let job_id = reply.id;
                if self.clear_busy(worker, job_id) {
                    if let Some(job) = self.jobs.remove(&job_id) {
                        self.stats.completed += 1;
                        reply.id = job.client_id;
                        reply.attempts = job.attempts;
                        self.reply(job.conn, Frame::Schedule(reply));
                    }
                    self.dispatch_ready();
                }
            }
            // A deterministic compute rejection (bad request,
            // scheduler error, panic) would repeat on retry;
            // forward it instead of burning the retry budget.
            Frame::Reject { id, reason } if self.clear_busy(worker, id) => {
                if let Some(job) = self.jobs.remove(&id) {
                    self.stats.rejected += 1;
                    self.reply(
                        job.conn,
                        Frame::Reject {
                            id: job.client_id,
                            reason,
                        },
                    );
                }
                self.dispatch_ready();
            }
            _ => {}
        }
    }

    /// Mark `worker` idle if it was busy on `job`. Returns false for
    /// stale frames (e.g. a reply racing a supervision kill, arriving
    /// after the job was already requeued) and for doomed workers (a
    /// chaos-killed attempt must die even if its reply won the race
    /// against the signal).
    fn clear_busy(&mut self, worker: u64, job: u64) -> bool {
        match self.workers.get_mut(&worker) {
            Some(slot) if !slot.doomed && matches!(slot.busy, Some((j, _)) if j == job) => {
                slot.busy = None;
                true
            }
            _ => false,
        }
    }

    /// A worker's stdout closed: recover its in-flight attempt (if
    /// any) into the retry path, then respawn a replacement.
    fn on_worker_death(&mut self, worker: u64) {
        let Some(slot) = self.workers.remove(&worker) else {
            return; // stale event for an already-replaced worker
        };
        self.reap(slot);
        if let Err(e) = self.spawn_worker() {
            eprintln!("es-serve: respawn failed: {e}");
        } else {
            self.stats.worker_respawns += 1;
        }
        self.dispatch_ready();
    }

    /// Take a dead/killed worker's slot apart: wait the child and
    /// route its in-flight job into retry/backoff.
    fn reap(&mut self, mut slot: WorkerSlot) {
        let _ = slot.child.kill();
        let _ = slot.child.wait();
        if let Some((job_id, _)) = slot.busy {
            self.retry_or_reject(job_id);
        }
    }

    /// An attempt failed without a worker verdict (death or stall
    /// kill): requeue with exponential backoff, unless the deadline
    /// or the retry budget says otherwise.
    fn retry_or_reject(&mut self, job_id: u64) {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return;
        };
        let now = Instant::now();
        if now >= job.deadline {
            let (conn, id) = (job.conn, job.client_id);
            self.jobs.remove(&job_id);
            self.stats.deadline_rejected += 1;
            self.reply(
                conn,
                Frame::Reject {
                    id,
                    reason: RejectReason::DeadlineExceeded,
                },
            );
            return;
        }
        if job.attempts >= self.cfg.retry_max {
            let (conn, id, attempts) = (job.conn, job.client_id, job.attempts);
            self.jobs.remove(&job_id);
            self.stats.rejected += 1;
            self.reply(
                conn,
                Frame::Reject {
                    id,
                    reason: RejectReason::RetriesExhausted {
                        detail: format!("lost after {attempts} attempts"),
                    },
                },
            );
            return;
        }
        job.not_before = Some(now + self.cfg.backoff(job.attempts + 1));
        self.stats.retries += 1;
        self.delayed.push(job_id);
    }

    fn spawn_worker(&mut self) -> std::io::Result<()> {
        let mut child = Command::new(&self.worker_cmd.program)
            .args(&self.worker_cmd.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut stdin = BufWriter::new(stdin);
        write_preamble(&mut stdin).map_err(|e| std::io::Error::other(e.to_string()))?;
        stdin.flush()?;

        self.next_worker += 1;
        let worker = self.next_worker;
        let events = self.events.clone();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stdout);
            if read_preamble(&mut reader).is_ok() {
                while let Ok(Some(frame)) = read_frame(&mut reader) {
                    if events.send(Event::WorkerFrame { worker, frame }).is_err() {
                        return;
                    }
                }
            }
            let _ = events.send(Event::WorkerGone { worker });
        });

        let now = Instant::now();
        self.workers.insert(
            worker,
            WorkerSlot {
                child,
                stdin,
                busy: None,
                last_ping: now,
                last_pong: now,
                doomed: false,
            },
        );
        Ok(())
    }

    /// Dispatch queued jobs onto idle workers, applying chaos to
    /// first attempts when configured.
    fn dispatch_ready(&mut self) {
        loop {
            let Some(worker) = self
                .workers
                .iter()
                .find(|(_, s)| s.busy.is_none())
                .map(|(&id, _)| id)
            else {
                return;
            };
            let Some(job_id) = self.queue.pop_front() else {
                return;
            };
            let Some(job) = self.jobs.get_mut(&job_id) else {
                continue; // shed/expired while queued
            };
            job.attempts += 1;
            job.not_before = None;
            let attempts = job.attempts;
            let mut request = job.request.clone();
            request.id = job_id;

            let chaos = match self.cfg.chaos {
                Some(spec) if attempts == 1 => spec.decide(job_id),
                _ => ChaosAction::None,
            };
            let stall_ms = self.cfg.stall_timeout_ms.saturating_mul(3);
            let slot = self.workers.get_mut(&worker).expect("worker id just seen");
            slot.busy = Some((job_id, Instant::now()));
            let sent = (|| -> Result<(), es_wire::WireError> {
                if chaos == ChaosAction::StallWorker {
                    write_frame(&mut slot.stdin, &Frame::Stall { millis: stall_ms })?;
                }
                write_frame(&mut slot.stdin, &Frame::Request(request))
            })();
            match chaos {
                ChaosAction::KillWorker => {
                    self.stats.chaos_kills += 1;
                    let slot = self.workers.get_mut(&worker).expect("still present");
                    // A fast worker can compute and flush the reply
                    // before the SIGKILL lands; dooming the slot makes
                    // such a reply stale so the attempt reliably dies.
                    slot.doomed = true;
                    let _ = slot.child.kill();
                    // Death reaches us as WorkerGone via its reader.
                }
                ChaosAction::StallWorker => self.stats.chaos_stalls += 1,
                ChaosAction::None => {}
            }
            if sent.is_err() {
                // The pipe is already broken — treat as a death now
                // rather than waiting for the reader's EOF event.
                self.on_worker_death(worker);
            }
        }
    }

    /// Timer duties: release backoffs, expire deadlines, heartbeat
    /// idle workers, kill wedged ones, top up dispatch.
    fn on_tick(&mut self) {
        let now = Instant::now();

        // Backoff pen → queue front (retries beat fresh admissions).
        let mut released: Vec<u64> = Vec::new();
        self.delayed.retain(|&id| {
            let ready = self
                .jobs
                .get(&id)
                .is_none_or(|j| j.not_before.is_none_or(|t| t <= now));
            if ready {
                released.push(id);
            }
            !ready
        });
        for id in released {
            if self.jobs.contains_key(&id) {
                self.queue.push_front(id);
            }
        }

        // Deadline scan over queued jobs (in-flight attempts run to
        // completion; their deadline is enforced on the retry path).
        let expired: Vec<u64> = self
            .queue
            .iter()
            .copied()
            .filter(|id| self.jobs.get(id).is_some_and(|j| now >= j.deadline))
            .collect();
        for id in expired {
            self.queue.retain(|&q| q != id);
            if let Some(job) = self.jobs.remove(&id) {
                self.stats.deadline_rejected += 1;
                self.reply(
                    job.conn,
                    Frame::Reject {
                        id: job.client_id,
                        reason: RejectReason::DeadlineExceeded,
                    },
                );
            }
        }

        // Supervision: wedged-busy and silent-idle workers die here.
        let stall = Duration::from_millis(self.cfg.stall_timeout_ms);
        let heartbeat = Duration::from_millis(self.cfg.heartbeat_ms);
        let worker_ids: Vec<u64> = self.workers.keys().copied().collect();
        for id in worker_ids {
            let Some(slot) = self.workers.get_mut(&id) else {
                continue;
            };
            let wedged = match slot.busy {
                Some((_, since)) => now.duration_since(since) > stall,
                None => now.duration_since(slot.last_pong) > stall + heartbeat,
            };
            if wedged {
                self.stats.worker_kills += 1;
                if let Some(slot) = self.workers.remove(&id) {
                    self.reap(slot);
                }
                if self.spawn_worker().is_ok() {
                    self.stats.worker_respawns += 1;
                }
                continue;
            }
            if slot.busy.is_none() && now.duration_since(slot.last_ping) >= heartbeat {
                slot.last_ping = now;
                let nonce = id;
                if write_frame(&mut slot.stdin, &Frame::Ping { nonce }).is_err() {
                    self.on_worker_death(id);
                }
            }
        }

        self.dispatch_ready();
    }

    /// Refresh the instantaneous gauges before exporting stats.
    fn refresh_gauges(&mut self) {
        self.stats.queue_len =
            u32::try_from(self.queue.len() + self.delayed.len()).unwrap_or(u32::MAX);
        self.stats.workers_alive = u32::try_from(self.workers.len()).unwrap_or(u32::MAX);
        self.stats.inflight =
            u32::try_from(self.workers.values().filter(|s| s.busy.is_some()).count())
                .unwrap_or(u32::MAX);
    }
}
