//! Load generator + chaos verifier (`es-serve bench`, DESIGN.md
//! §13.6).
//!
//! Drives a real driver (in-process thread; workers are real child
//! processes) with a deterministic [`ServiceMix`] over real client
//! connections, then checks the chaos invariant: **every admitted
//! request's outcome is bitwise-identical to the single-process
//! reference** — the same [`crate::worker::compute_schedule`] run
//! locally, compared by encoded frame bytes. Records requests/sec,
//! P50/P99 latency, shed/retry/kill counters into a committed JSON
//! report (`SERVE_PR7.json`), and fails loudly on any lost or
//! mismatched request — which is what the CI serve-smoke job asserts.

use crate::chaos::ChaosSpec;
use crate::client::Client;
use crate::config::ServeConfig;
use crate::driver::{run_driver, WorkerCommand};
use crate::worker::compute_schedule;
use es_sim::robustness::fault_seed;
use es_sim::service::{ServiceMix, ServiceRequest};
use es_wire::{
    AlgoId, DriverStats, Frame, RejectReason, Request, ScheduleReply, WireFault, WireInstance,
    WireSchedule, WireTuning,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Bench parameters (all CLI-settable).
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Requests in the generated mix.
    pub requests: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Worker processes under the driver.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_cap: usize,
    /// Chaos injection for the driver (kill/stall probabilities).
    pub chaos: Option<ChaosSpec>,
    /// Service-mix master seed.
    pub seed: u64,
    /// Driver socket path.
    pub socket: PathBuf,
    /// Where to write the JSON report (stdout summary always prints).
    pub out: Option<PathBuf>,
    /// How to launch workers.
    pub worker_cmd: WorkerCommand,
}

/// One request's observed outcome.
enum Outcome {
    Schedule(WireSchedule),
    Rejected(String),
    /// Driver-level loss: retries exhausted, deadline, no reply —
    /// exactly what the chaos invariant forbids.
    Lost(String),
}

/// Aggregated bench result.
pub struct BenchReport {
    /// Requests answered with a schedule.
    pub completed: usize,
    /// Requests with a deterministic compute rejection matching the
    /// reference (e.g. an unrepairable fault leg) — not losses.
    pub rejected_matching: usize,
    /// Driver-level losses (must be 0 for the invariant).
    pub lost: usize,
    /// Schedules differing from the reference bits (must be 0).
    pub mismatched: usize,
    /// Wall-clock for the whole request phase, milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Median request latency (first send → final reply), ms.
    pub p50_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
    /// `Overloaded` replies absorbed by client-side resubmission.
    pub overload_retries: u64,
    /// Driver counters sampled right before shutdown.
    pub driver: DriverStats,
    /// The options the run used.
    pub opts: BenchOpts,
}

/// Convert one service-mix entry into its wire request. The fault
/// seed derives from the instance seed exactly as the robustness
/// sweep does, so service fault legs and sweep cells agree.
pub fn to_wire_request(id: u64, req: &ServiceRequest) -> Request {
    let algo = AlgoId::parse(req.algo).expect("service mix uses wire algo ids");
    Request {
        id,
        deadline_ms: req.deadline_ms,
        tenant: req.tenant,
        algo,
        tuning: WireTuning::current_default(),
        instance: WireInstance::from_config(&req.instance),
        fault: req.fault_intensity.map(|intensity| WireFault {
            intensity,
            kill_proc: true,
            kill_link: true,
            seed: fault_seed(req.instance.seed, intensity),
        }),
    }
}

/// The byte string whose equality defines "bitwise-identical": the
/// schedule re-encoded in a normalized frame (id/attempts zeroed —
/// those are transport metadata, not schedule content).
fn schedule_bytes(schedule: &WireSchedule) -> Vec<u8> {
    Frame::Schedule(ScheduleReply {
        id: 0,
        attempts: 0,
        schedule: schedule.clone(),
    })
    .encode()
}

/// Run the bench. `Err` carries a human-readable reason when the
/// harness itself fails (socket, worker spawn); invariant violations
/// are reported in the `BenchReport` (and by [`render_json`]) so the
/// caller can both persist the evidence and exit nonzero.
pub fn run_bench(opts: &BenchOpts) -> Result<BenchReport, String> {
    let mix = ServiceMix {
        requests: opts.requests,
        seed: opts.seed,
        ..ServiceMix::default()
    };
    let stream = mix.generate();
    let wire_requests: Vec<Request> = stream
        .iter()
        .enumerate()
        .map(|(i, r)| to_wire_request(i as u64, r))
        .collect();

    let mut cfg = ServeConfig::new(&opts.socket);
    cfg.workers = opts.workers;
    cfg.queue_cap = opts.queue_cap;
    cfg.chaos = opts.chaos;
    cfg.deadline_ms = 120_000;
    cfg.heartbeat_ms = 50;
    cfg.stall_timeout_ms = 1_000;
    cfg.retry_max = 6;
    cfg.backoff_base_ms = 5;
    let socket = cfg.socket.clone();
    let worker_cmd = opts.worker_cmd.clone();
    let driver = std::thread::spawn(move || run_driver(cfg, worker_cmd));

    // Wait for the socket to accept.
    let mut probe = None;
    for _ in 0..200 {
        match Client::connect(&socket) {
            Ok(c) => {
                probe = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut probe = probe.ok_or_else(|| "driver socket never came up".to_string())?;

    // Request phase: `clients` threads, round-robin partition, one
    // synchronous request at a time per connection; `Overloaded` is
    // absorbed by resubmission with a client-side backoff.
    let started = Instant::now();
    let results: Vec<(usize, Outcome, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients.max(1))
            .map(|c| {
                let socket = &socket;
                let wire_requests = &wire_requests;
                scope.spawn(move || client_run(c, opts.clients.max(1), socket, wire_requests))
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            match h.join() {
                Ok(Ok(part)) => all.extend(part),
                Ok(Err(e)) => all.push((usize::MAX, Outcome::Lost(e), 0.0)),
                Err(_) => all.push((
                    usize::MAX,
                    Outcome::Lost("client thread panicked".to_string()),
                    0.0,
                )),
            }
        }
        all
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // Sample driver stats, then shut it down and wait for drain.
    let driver_stats = match probe.round_trip(&Frame::StatsRequest) {
        Ok(Frame::Stats(s)) => s,
        _ => DriverStats::default(),
    };
    let _ = probe.send(&Frame::Shutdown);
    let final_stats = driver
        .join()
        .map_err(|_| "driver thread panicked".to_string())?
        .map_err(|e| format!("driver failed: {e}"))?;
    let driver_stats = if final_stats.admitted >= driver_stats.admitted {
        DriverStats {
            queue_len: driver_stats.queue_len,
            workers_alive: driver_stats.workers_alive,
            inflight: driver_stats.inflight,
            ..final_stats
        }
    } else {
        driver_stats
    };

    // Verification phase: recompute every request single-process and
    // compare outcomes bit for bit.
    let mut completed = 0usize;
    let mut rejected_matching = 0usize;
    let mut lost = 0usize;
    let mut mismatched = 0usize;
    let mut latencies: Vec<f64> = Vec::with_capacity(results.len());
    for (index, outcome, latency_ms) in &results {
        if *index == usize::MAX {
            lost += 1;
            continue;
        }
        let reference = compute_schedule(&wire_requests[*index]);
        match (outcome, reference) {
            (Outcome::Schedule(got), Ok(want)) => {
                if schedule_bytes(got) == schedule_bytes(&want) {
                    completed += 1;
                    latencies.push(*latency_ms);
                } else {
                    mismatched += 1;
                    eprintln!("bench: request {index} schedule differs from reference");
                }
            }
            (Outcome::Rejected(got), Err(want)) => {
                if *got == want.to_string() {
                    rejected_matching += 1;
                } else {
                    mismatched += 1;
                    eprintln!("bench: request {index} rejection `{got}` != reference `{want}`");
                }
            }
            (Outcome::Schedule(_), Err(want)) => {
                mismatched += 1;
                eprintln!("bench: request {index} got a schedule, reference rejects: {want}");
            }
            (Outcome::Rejected(got), Ok(_)) => {
                mismatched += 1;
                eprintln!("bench: request {index} rejected `{got}`, reference schedules");
            }
            (Outcome::Lost(why), _) => {
                lost += 1;
                eprintln!("bench: request {index} LOST: {why}");
            }
        }
    }
    // The driver's shed counter is the authoritative count of
    // Overloaded replies the clients absorbed by resubmitting.
    let overloads = driver_stats.shed;

    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((latencies.len() as f64) * p).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    #[allow(clippy::cast_precision_loss)]
    let requests_per_sec = if wall_ms > 0.0 {
        completed as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };

    Ok(BenchReport {
        completed,
        rejected_matching,
        lost,
        mismatched,
        wall_ms,
        requests_per_sec,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        overload_retries: overloads,
        driver: driver_stats,
        opts: opts.clone(),
    })
}

/// One client thread: its share of the mix, strictly sequential.
fn client_run(
    client: usize,
    clients: usize,
    socket: &std::path::Path,
    requests: &[Request],
) -> Result<Vec<(usize, Outcome, f64)>, String> {
    let mut conn = Client::connect(socket).map_err(|e| format!("client connect: {e}"))?;
    let mut out = Vec::new();
    for (index, request) in requests
        .iter()
        .enumerate()
        .skip(client)
        .step_by(clients.max(1))
    {
        let started = Instant::now();
        let mut overload_round = 0u32;
        let outcome = loop {
            let reply = conn
                .round_trip(&Frame::Request(request.clone()))
                .map_err(|e| format!("client {client} io: {e}"))?;
            match reply {
                Frame::Schedule(reply) if reply.id == request.id => {
                    break Outcome::Schedule(reply.schedule);
                }
                Frame::Overloaded { id, .. } if id == request.id => {
                    overload_round += 1;
                    if overload_round > 1_000 {
                        break Outcome::Lost("overloaded forever".to_string());
                    }
                    std::thread::sleep(Duration::from_millis(
                        2u64.saturating_mul(u64::from(overload_round.min(6))),
                    ));
                }
                Frame::Reject { id, reason } if id == request.id => {
                    break match reason {
                        RejectReason::Scheduler { .. } | RejectReason::BadRequest { .. } => {
                            Outcome::Rejected(reason.to_string())
                        }
                        other => Outcome::Lost(other.to_string()),
                    };
                }
                other => {
                    break Outcome::Lost(format!("unexpected reply {other:?}"));
                }
            }
        };
        let latency_ms = started.elapsed().as_secs_f64() * 1e3;
        out.push((index, outcome, latency_ms));
    }
    Ok(out)
}

/// Render the committed JSON report.
pub fn render_json(r: &BenchReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"PR7\",\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str(&format!("  \"requests\": {},\n", r.opts.requests));
    s.push_str(&format!("  \"clients\": {},\n", r.opts.clients));
    s.push_str(&format!("  \"workers\": {},\n", r.opts.workers));
    s.push_str(&format!("  \"queue_cap\": {},\n", r.opts.queue_cap));
    s.push_str(&format!("  \"mix_seed\": {},\n", r.opts.seed));
    match r.opts.chaos {
        Some(c) => {
            s.push_str(&format!(
                "  \"chaos\": \"kill-worker:{},stall-worker:{}\",\n",
                c.kill_worker, c.stall_worker
            ));
            s.push_str(&format!("  \"chaos_seed\": {},\n", c.seed));
        }
        None => s.push_str("  \"chaos\": null,\n"),
    }
    let identity_ok = r.lost == 0 && r.mismatched == 0;
    s.push_str(&format!("  \"identity_ok\": {identity_ok},\n"));
    s.push_str(&format!("  \"completed\": {},\n", r.completed));
    s.push_str(&format!(
        "  \"rejected_matching\": {},\n",
        r.rejected_matching
    ));
    s.push_str(&format!("  \"lost\": {},\n", r.lost));
    s.push_str(&format!("  \"mismatched\": {},\n", r.mismatched));
    s.push_str(&format!("  \"wall_ms\": {:.3},\n", r.wall_ms));
    s.push_str(&format!(
        "  \"requests_per_sec\": {:.2},\n",
        r.requests_per_sec
    ));
    s.push_str(&format!("  \"p50_ms\": {:.3},\n", r.p50_ms));
    s.push_str(&format!("  \"p99_ms\": {:.3},\n", r.p99_ms));
    s.push_str(&format!(
        "  \"overload_retries\": {},\n",
        r.overload_retries
    ));
    let d = &r.driver;
    s.push_str("  \"driver\": {");
    s.push_str(&format!(
        "\"admitted\": {}, \"completed\": {}, \"shed\": {}, \"deadline_rejected\": {}, \
         \"rejected\": {}, \"retries\": {}, \"worker_kills\": {}, \"worker_respawns\": {}, \
         \"chaos_kills\": {}, \"chaos_stalls\": {}",
        d.admitted,
        d.completed,
        d.shed,
        d.deadline_rejected,
        d.rejected,
        d.retries,
        d.worker_kills,
        d.worker_respawns,
        d.chaos_kills,
        d.chaos_stalls
    ));
    s.push_str("}\n");
    s.push_str("}\n");
    s
}

/// One-screen stdout summary.
pub fn render_summary(r: &BenchReport) -> String {
    let d = &r.driver;
    format!(
        "es-serve bench: {} requests, {} clients, {} workers{}\n\
         completed {} (+{} matching rejections), lost {}, mismatched {}\n\
         wall {:.0} ms, {:.1} req/s, latency p50 {:.1} ms / p99 {:.1} ms\n\
         driver: shed {}, retries {}, kills {} (chaos {}), stalls (chaos) {}, respawns {}\n\
         chaos invariant: {}",
        r.opts.requests,
        r.opts.clients,
        r.opts.workers,
        r.opts
            .chaos
            .map(|c| format!(
                ", chaos kill {:.2}/stall {:.2} seed {}",
                c.kill_worker, c.stall_worker, c.seed
            ))
            .unwrap_or_default(),
        r.completed,
        r.rejected_matching,
        r.lost,
        r.mismatched,
        r.wall_ms,
        r.requests_per_sec,
        r.p50_ms,
        r.p99_ms,
        d.shed,
        d.retries,
        d.worker_kills,
        d.chaos_kills,
        d.chaos_stalls,
        d.worker_respawns,
        if r.lost == 0 && r.mismatched == 0 {
            "HOLDS (every admitted request matched the single-process reference bitwise)"
        } else {
            "VIOLATED"
        }
    )
}
