//! End-to-end tests: a real driver (in-process event loop) with real
//! worker child processes (the compiled `es-serve` binary's `worker`
//! subcommand) over a real Unix socket.
//!
//! The chaos tests here are the crate's load-bearing guarantee: with
//! every first attempt sabotaged, every admitted request must still
//! complete bitwise-identically to the single-process reference.

use es_serve::worker::compute_schedule;
use es_serve::{run_driver, ChaosSpec, Client, ServeConfig, WorkerCommand};
use es_wire::{AlgoId, Frame, Request, WireInstance, WireTuning};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn worker_cmd() -> WorkerCommand {
    WorkerCommand {
        program: PathBuf::from(env!("CARGO_BIN_EXE_es-serve")),
        args: vec!["worker".to_string()],
    }
}

fn test_socket(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("es-serve-e2e-{}-{name}.sock", std::process::id()))
}

fn fast_cfg(socket: &Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(socket);
    cfg.workers = 2;
    cfg.heartbeat_ms = 25;
    cfg.stall_timeout_ms = 400;
    cfg.backoff_base_ms = 5;
    cfg.retry_max = 5;
    cfg
}

fn sample_request(id: u64) -> Request {
    Request {
        id,
        deadline_ms: 0,
        tenant: u32::try_from(id % 3).unwrap(),
        algo: AlgoId::ALL[(id as usize) % AlgoId::ALL.len()],
        tuning: WireTuning::current_default(),
        instance: WireInstance {
            heterogeneous: id.is_multiple_of(2),
            processors: 3,
            ccr: 1.0,
            tasks: Some(12),
            seed: 0xE2E0 + id,
        },
        fault: None,
    }
}

/// Like [`sample_request`], but sized so one compute takes
/// milliseconds rather than microseconds: the shed tests pipeline a
/// burst at a single worker and need it to genuinely fall behind,
/// otherwise (release mode, fast machine) the queue never fills and
/// nothing sheds.
fn heavy_request(id: u64) -> Request {
    let mut req = sample_request(id);
    req.instance.tasks = Some(150);
    req
}

/// Start a driver thread and wait for its socket to accept.
fn start_driver(
    cfg: ServeConfig,
) -> (
    std::thread::JoinHandle<std::io::Result<es_wire::DriverStats>>,
    PathBuf,
) {
    let socket = cfg.socket.clone();
    let handle = std::thread::spawn(move || run_driver(cfg, worker_cmd()));
    for _ in 0..400 {
        if Client::connect(&socket).is_ok() {
            return (handle, socket);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("driver socket never came up at {}", socket.display());
}

#[test]
fn round_trip_matches_single_process_reference() {
    let (driver, socket) = start_driver(fast_cfg(&test_socket("roundtrip")));
    let mut client = Client::connect(&socket).expect("connect");
    for id in 0..5u64 {
        let req = sample_request(id);
        let reply = client
            .round_trip(&Frame::Request(req.clone()))
            .expect("reply");
        match reply {
            Frame::Schedule(reply) => {
                assert_eq!(reply.id, id);
                assert_eq!(reply.attempts, 1, "no chaos, no retries");
                let reference = compute_schedule(&req).expect("schedulable");
                assert_eq!(reply.schedule, reference, "request {id} diverged");
            }
            other => panic!("expected schedule for {id}, got {other:?}"),
        }
    }
    client.send(&Frame::Shutdown).expect("shutdown");
    let stats = driver.join().expect("no panic").expect("clean run");
    assert_eq!(stats.admitted, 5);
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.retries, 0);
}

#[test]
fn chaos_kill_every_first_attempt_loses_nothing() {
    let mut cfg = fast_cfg(&test_socket("chaoskill"));
    cfg.chaos = Some(ChaosSpec::parse("kill-worker:1.0", 11).expect("valid"));
    let (driver, socket) = start_driver(cfg);
    let mut client = Client::connect(&socket).expect("connect");
    let n = 6u64;
    for id in 0..n {
        let req = sample_request(id);
        let reply = client
            .round_trip(&Frame::Request(req.clone()))
            .expect("reply");
        match reply {
            Frame::Schedule(reply) => {
                assert_eq!(reply.id, id);
                assert!(
                    reply.attempts >= 2,
                    "first attempt was chaos-killed, so request {id} must retry"
                );
                let reference = compute_schedule(&req).expect("schedulable");
                assert_eq!(
                    reply.schedule, reference,
                    "request {id} diverged after chaos retries"
                );
            }
            other => panic!("expected schedule for {id}, got {other:?}"),
        }
    }
    client.send(&Frame::Shutdown).expect("shutdown");
    let stats = driver.join().expect("no panic").expect("clean run");
    assert_eq!(stats.completed, n, "every admitted request completed");
    assert_eq!(stats.chaos_kills, n);
    assert!(stats.retries >= n);
    assert!(stats.worker_respawns >= n);
    assert_eq!(stats.deadline_rejected, 0);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn chaos_stall_is_detected_and_retried() {
    let mut cfg = fast_cfg(&test_socket("chaosstall"));
    cfg.stall_timeout_ms = 250;
    cfg.chaos = Some(ChaosSpec::parse("stall-worker:1.0", 5).expect("valid"));
    let (driver, socket) = start_driver(cfg);
    let mut client = Client::connect(&socket).expect("connect");
    let req = sample_request(0);
    let reply = client
        .round_trip(&Frame::Request(req.clone()))
        .expect("reply");
    match reply {
        Frame::Schedule(reply) => {
            assert!(reply.attempts >= 2, "stalled attempt must be retried");
            assert_eq!(reply.schedule, compute_schedule(&req).expect("ok"));
        }
        other => panic!("expected schedule, got {other:?}"),
    }
    client.send(&Frame::Shutdown).expect("shutdown");
    let stats = driver.join().expect("no panic").expect("clean run");
    assert_eq!(stats.chaos_stalls, 1);
    assert!(
        stats.worker_kills >= 1,
        "supervisor must kill the wedged worker"
    );
    assert_eq!(stats.completed, 1);
}

#[test]
fn overload_sheds_with_explicit_reply() {
    let mut cfg = fast_cfg(&test_socket("overload"));
    cfg.workers = 1;
    cfg.queue_cap = 1;
    let (driver, socket) = start_driver(cfg);
    let mut client = Client::connect(&socket).expect("connect");
    // Pipeline a burst without reading replies: with one worker and a
    // one-slot queue, some of these must shed.
    let n = 8u64;
    for id in 0..n {
        client
            .send(&Frame::Request(heavy_request(id)))
            .expect("send");
    }
    let mut schedules = 0u64;
    let mut overloaded = 0u64;
    for _ in 0..n {
        match client.recv().expect("reply").expect("stream open") {
            Frame::Schedule(reply) => {
                let reference = compute_schedule(&heavy_request(reply.id)).expect("ok");
                assert_eq!(reply.schedule, reference);
                schedules += 1;
            }
            Frame::Overloaded { .. } => overloaded += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(schedules + overloaded, n, "every request got a reply");
    assert!(overloaded > 0, "burst over a 1-slot queue must shed");
    assert!(schedules > 0, "admitted requests still complete");
    client.send(&Frame::Shutdown).expect("shutdown");
    let stats = driver.join().expect("no panic").expect("clean run");
    assert_eq!(stats.shed, overloaded);
    assert_eq!(stats.completed, schedules);
}

/// Mixed-tenant stream under both shed policies: every answered
/// request is bitwise identical to the single-process reference, and
/// the driver's per-tenant shed counters match the tenants of the
/// `Overloaded` replies the client saw, summing to `shed`.
#[test]
fn mixed_tenant_stream_sheds_with_per_tenant_counts() {
    for (policy_name, policy) in [
        ("reject-newest", es_serve::ShedPolicy::RejectNewest),
        ("reject-oldest", es_serve::ShedPolicy::RejectOldest),
    ] {
        let mut cfg = fast_cfg(&test_socket(&format!("tenants-{policy_name}")));
        cfg.workers = 1;
        cfg.queue_cap = 1;
        cfg.shed = policy;
        let (driver, socket) = start_driver(cfg);
        let mut client = Client::connect(&socket).expect("connect");
        // Burst three tenants' requests without reading replies: with
        // one worker and a one-slot queue some of each burst must shed.
        let n = 9u64;
        for id in 0..n {
            client
                .send(&Frame::Request(heavy_request(id)))
                .expect("send");
        }
        let mut shed_seen = [0u64; 3];
        let mut schedules = 0u64;
        for _ in 0..n {
            match client.recv().expect("reply").expect("stream open") {
                Frame::Schedule(reply) => {
                    let req = heavy_request(reply.id);
                    let reference = compute_schedule(&req).expect("schedulable");
                    assert_eq!(
                        reply.schedule, reference,
                        "{policy_name}: request {} diverged",
                        reply.id
                    );
                    schedules += 1;
                }
                Frame::Overloaded { id, .. } => shed_seen[(id % 3) as usize] += 1,
                other => panic!("{policy_name}: unexpected reply {other:?}"),
            }
        }
        client.send(&Frame::Shutdown).expect("shutdown");
        let stats = driver.join().expect("no panic").expect("clean run");
        let total_shed: u64 = shed_seen.iter().sum();
        assert!(total_shed > 0, "{policy_name}: burst must shed");
        assert!(schedules > 0, "{policy_name}: admitted requests complete");
        assert_eq!(stats.shed, total_shed, "{policy_name}");
        assert_eq!(
            stats.shed_by_tenant.iter().map(|&(_, c)| c).sum::<u64>(),
            stats.shed,
            "{policy_name}: per-tenant counts must sum to shed"
        );
        for &(tenant, count) in &stats.shed_by_tenant {
            assert_eq!(
                count, shed_seen[tenant as usize],
                "{policy_name}: tenant {tenant} count disagrees with replies"
            );
        }
    }
}

#[test]
fn stats_frame_reports_progress() {
    let (driver, socket) = start_driver(fast_cfg(&test_socket("stats")));
    let mut client = Client::connect(&socket).expect("connect");
    let reply = client
        .round_trip(&Frame::Request(sample_request(3)))
        .expect("reply");
    assert!(matches!(reply, Frame::Schedule(_)));
    match client.round_trip(&Frame::StatsRequest).expect("stats") {
        Frame::Stats(stats) => {
            assert_eq!(stats.admitted, 1);
            assert_eq!(stats.completed, 1);
            assert_eq!(stats.workers_alive, 2);
            assert_eq!(stats.inflight, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    client.send(&Frame::Shutdown).expect("shutdown");
    driver.join().expect("no panic").expect("clean run");
}

#[test]
fn draining_driver_rejects_new_work() {
    let mut cfg = fast_cfg(&test_socket("draining"));
    cfg.workers = 1;
    let (driver, socket) = start_driver(cfg);
    let mut client = Client::connect(&socket).expect("connect");
    // Put one slow-ish job in flight so the drain isn't instant, then
    // shut down and try to sneak another request in.
    client
        .send(&Frame::Request(sample_request(0)))
        .expect("send");
    client.send(&Frame::Shutdown).expect("shutdown");
    client
        .send(&Frame::Request(sample_request(1)))
        .expect("send");
    let mut saw_schedule = false;
    let mut saw_shutdown_reject = false;
    while let Ok(Some(frame)) = client.recv() {
        match frame {
            Frame::Schedule(reply) if reply.id == 0 => saw_schedule = true,
            Frame::Reject {
                id: 1,
                reason: es_wire::RejectReason::ShuttingDown,
            } => saw_shutdown_reject = true,
            other => panic!("unexpected reply {other:?}"),
        }
        if saw_schedule && saw_shutdown_reject {
            break;
        }
    }
    assert!(saw_schedule, "in-flight work drains to completion");
    assert!(saw_shutdown_reject, "post-shutdown work is refused, typed");
    driver.join().expect("no panic").expect("clean run");
}
