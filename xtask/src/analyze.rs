//! The `xtask analyze` workspace pass: orchestrates the token-level
//! lints (L1–L5), the syntax-aware passes (N1–N5, see
//! [`crate::passes`]), the optional runtime determinism audit
//! ([`crate::determinism`]), and the suppression file
//! ([`crate::report`]).
//!
//! Token-level lints (DESIGN.md §8):
//!
//! * **L1 / ES-A001** — no `HashMap`/`HashSet` in scheduler /
//!   link-scheduler sources (`crates/core`, `crates/linksched`,
//!   `crates/route`). Hash iteration order is randomized per process;
//!   any tie broken by it makes schedules irreproducible.
//! * **L2 / ES-A002** — no bare `==`/`!=` with an f64 literal operand
//!   anywhere outside `crates/linksched/src/time.rs` (the EPS
//!   helpers).
//! * **L3 / ES-A003** — every `ES-Exxx` diagnostic code that appears
//!   in `crates/core` sources must be documented in DESIGN.md's
//!   diagnostics table, and vice versa.
//! * **L4 / ES-A004** — no `Vec::new` / `.collect()` inside the loop
//!   bodies of the probe/rebuild functions in `crates/core/src/list.rs`
//!   and `crates/core/src/repair.rs`.
//! * **L5 / ES-A007** — no per-iteration heap allocation (`Box::new`,
//!   `String::new`, `vec!`, `format!`, `.to_vec()`, `.to_string()`,
//!   `.to_owned()`) and no `BTreeMap`/`BTreeSet` access inside the
//!   loop bodies of the batch-probe hot path (`list.rs` probe walk,
//!   `slotted.rs` route/placement/rollback machinery — DESIGN.md §16).
//!
//! Syntax-aware passes (DESIGN.md §12): N1 nondeterminism taint, N2
//! epoch discipline, N3 twin drift, N4 unsafe audit, N5 lock
//! discipline.
//!
//! Findings print as `CODE PASS file:line — message` (or as one
//! `es-analyze-v1` JSON document with `--json`) and the process exits
//! 1 if any non-suppressed findings were produced.

use crate::determinism;
use crate::lexer::{Token, TokenKind};
use crate::passes::Model;
use crate::report::{self, Finding};
use std::path::{Path, PathBuf};

/// Entry point for `xtask analyze`; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let mut json = false;
    let mut run_determinism = false;
    let mut root: Option<PathBuf> = None;
    let mut suppressions: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--determinism" => run_determinism = true,
            "--root" => {
                let Some(dir) = it.next() else {
                    eprintln!("--root requires a directory argument");
                    return 2;
                };
                root = Some(PathBuf::from(dir));
            }
            "--suppressions" => {
                let Some(p) = it.next() else {
                    eprintln!("--suppressions requires a file argument");
                    return 2;
                };
                suppressions = Some(PathBuf::from(p));
            }
            other => {
                eprintln!("unknown `analyze` option `{other}`");
                return 2;
            }
        }
    }
    let root = root.unwrap_or_else(detect_root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!("no Cargo.toml under {} — wrong --root?", root.display());
        return 2;
    }

    let mut findings = analyze_workspace(&root);
    if run_determinism {
        eprintln!(
            "running determinism audit (schedulers, perturbed replay, and repair twice per seeded instance)..."
        );
        for d in determinism::audit() {
            findings.push(Finding {
                code: "ES-A005",
                pass: "DET",
                file: String::new(),
                line: 0,
                message: format!(
                    "{} nondeterministic on {}: {}",
                    d.scheduler, d.instance, d.detail
                ),
            });
        }
    }

    // Suppression file: explicit allows with mandatory justifications.
    let sup_path = suppressions.unwrap_or_else(|| root.join("analyze-suppressions.txt"));
    let sup_rel = sup_path
        .strip_prefix(&root)
        .unwrap_or(&sup_path)
        .to_string_lossy()
        .replace('\\', "/");
    let sup_text = std::fs::read_to_string(&sup_path).unwrap_or_default();
    let (mut entries, malformed) = report::parse_suppressions(&sup_text, &sup_rel);
    let (mut active, suppressed) = report::apply_suppressions(findings, &mut entries, &sup_rel);
    active.extend(malformed);
    active.sort_by(|a, b| (a.code, &a.file, a.line).cmp(&(b.code, &b.file, b.line)));

    if json {
        println!(
            "{}",
            report::render_report(&root.to_string_lossy(), &active, &suppressed)
        );
    } else {
        for f in &active {
            if f.file.is_empty() {
                println!("{} {}  {}", f.code, f.pass, f.message);
            } else {
                println!(
                    "{} {}  {}:{} — {}",
                    f.code, f.pass, f.file, f.line, f.message
                );
            }
        }
        if active.is_empty() {
            println!(
                "analyze: clean (L1-L5, N1-N5{} pass; {} suppressed)",
                if run_determinism { ", DET" } else { "" },
                suppressed.len()
            );
        }
    }
    if active.is_empty() {
        0
    } else {
        eprintln!(
            "analyze: {} finding(s) ({} suppressed)",
            active.len(),
            suppressed.len()
        );
        1
    }
}

/// All static findings for the workspace at `root` (L1–L5 and N1–N5),
/// before suppression handling; sorted by (code, file, line).
pub fn analyze_workspace(root: &Path) -> Vec<Finding> {
    let files = rust_sources(root);
    let model = Model::load(root, &files);
    let mut findings = Vec::new();

    let mut core_code_sites: Vec<(String, u32, String)> = Vec::new(); // (code, line, file)
    for file in &model.files {
        let rel = file.rel.as_str();
        if in_hot_path(rel) {
            lint_l1(rel, &file.tokens, &mut findings);
        }
        if rel != "crates/linksched/src/time.rs" {
            lint_l2(rel, &file.tokens, &mut findings);
        }
        let l4_targets = probe_fns(rel);
        if !l4_targets.is_empty() {
            lint_l4(rel, l4_targets, &file.tokens, &mut findings);
        }
        let l5_targets = batch_probe_fns(rel);
        if !l5_targets.is_empty() {
            lint_l5(rel, l5_targets, &file.tokens, &mut findings);
        }
        if rel.starts_with("crates/core/src/") {
            for (code, line) in scan_codes(&file.src) {
                core_code_sites.push((code, line, rel.to_string()));
            }
        }
    }
    lint_l3(&model.design, &core_code_sites, &mut findings);

    findings.extend(model.run_passes());

    findings.sort_by(|a, b| (a.code, &a.file, a.line).cmp(&(b.code, &b.file, b.line)));
    findings
}

/// L1 scope: sources whose iteration order feeds scheduling decisions.
fn in_hot_path(rel: &str) -> bool {
    rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/linksched/src/")
        || rel.starts_with("crates/route/src/")
}

fn lint_l1(rel: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for t in tokens {
        if let TokenKind::Ident(name) = &t.kind {
            if name == "HashMap" || name == "HashSet" {
                findings.push(Finding {
                    code: "ES-A001",
                    pass: "L1",
                    file: rel.to_string(),
                    line: t.line,
                    message: format!(
                        "`{name}` in a scheduling hot path — hash iteration order is \
                         nondeterministic; use BTreeMap/BTreeSet or a sorted Vec"
                    ),
                });
            }
        }
    }
}

fn lint_l2(rel: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let TokenKind::Op(op) = &t.kind else { continue };
        if op != "==" && op != "!=" {
            continue;
        }
        let float_left = i > 0 && tokens[i - 1].kind == TokenKind::Float;
        let float_right = i + 1 < tokens.len() && tokens[i + 1].kind == TokenKind::Float;
        if float_left || float_right {
            findings.push(Finding {
                code: "ES-A002",
                pass: "L2",
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "bare `{op}` with an f64 literal — use the es_linksched::time \
                     EPS helpers (approx_eq / approx_le / ...) or an exact \
                     formulation that avoids float equality"
                ),
            });
        }
    }
}

/// L4 scope: the functions whose loops form the per-task probe/rebuild
/// hot paths — one entry per task × processor candidate (× in-edge).
fn probe_fns(rel: &str) -> &'static [&'static str] {
    match rel {
        "crates/core/src/list.rs" => &[
            "pick_by_probe",
            "pick_by_probe_serial",
            "pick_by_probe_overlay",
            "pick_by_hybrid_criterion",
            "schedule_in_edges",
            "prepare_probe_edges",
            "probe_in_edges",
            "rollback_probe_edges",
            "order_in_edges",
        ],
        "crates/core/src/repair.rs" => &["rebuild", "pick_target"],
        _ => &[],
    }
}

/// L5 scope: the batch-probe loop bodies of the arena/SoA hot path
/// (DESIGN.md §16) — the per-candidate probe walk in `list.rs` plus
/// the per-hop route/placement/rollback machinery in `slotted.rs`.
fn batch_probe_fns(rel: &str) -> &'static [&'static str] {
    match rel {
        "crates/core/src/list.rs" => &[
            "pick_by_probe_serial",
            "pick_by_probe_overlay",
            "prepare_probe_edges",
            "probe_in_edges",
            "rollback_probe_edges",
        ],
        "crates/core/src/slotted.rs" => &[
            "schedule_comm",
            "pick_route_into",
            "place_on_route",
            "warm_route_searches",
            "snap_save",
            "restore",
            "pick_restore_mode",
            "unschedule",
            "release_comms",
            "route_for",
        ],
        _ => &[],
    }
}

/// Shared walker for the loop-body lints (L4, L5). Tracks function and
/// loop extents by brace depth over the token stream: `fn <target>`
/// arms a function frame at its body `{`; `for` / `while` / `loop` arm
/// a loop frame at theirs; `on_ident(i, fn_name, token)` fires for
/// every identifier token while at least one loop frame is open inside
/// a target function.
fn scan_target_loop_idents(
    targets: &[&str],
    tokens: &[Token],
    mut on_ident: impl FnMut(usize, &str, &Token),
) {
    // Brace stack: true = this `{` opened a loop body.
    let mut braces: Vec<bool> = Vec::new();
    let mut loop_depth = 0usize;
    // (name, brace depth at body open) of the target fn we are inside.
    let mut active: Option<(String, usize)> = None;
    let mut pending_fn: Option<String> = None;
    let mut pending_loop = false;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Ident(id) if id == "fn" => {
                if let Some(Token {
                    kind: TokenKind::Ident(name),
                    ..
                }) = tokens.get(i + 1)
                {
                    pending_fn = Some(name.clone());
                    i += 2;
                    continue;
                }
            }
            TokenKind::Ident(id)
                if active.is_some() && (id == "for" || id == "while" || id == "loop") =>
            {
                pending_loop = true;
            }
            TokenKind::Op(op) if op == "{" => {
                braces.push(std::mem::take(&mut pending_loop));
                if *braces.last().expect("just pushed") {
                    loop_depth += 1;
                }
                if let Some(name) = pending_fn.take() {
                    if active.is_none() && targets.contains(&name.as_str()) {
                        active = Some((name, braces.len()));
                    }
                }
            }
            TokenKind::Op(op) if op == "}" => {
                if let Some(was_loop) = braces.pop() {
                    if was_loop {
                        loop_depth -= 1;
                    }
                }
                if active.as_ref().is_some_and(|&(_, d)| braces.len() < d) {
                    active = None;
                }
            }
            TokenKind::Ident(_) if loop_depth > 0 => {
                let name = active.as_ref().map_or("", |(n, _)| n.as_str());
                on_ident(i, name, t);
            }
            _ => {}
        }
        i += 1;
    }
}

/// `ident :: new` at token position `i`?
fn is_path_new(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i + 1), Some(Token { kind: TokenKind::Op(o), .. }) if o == "::")
        && matches!(tokens.get(i + 2), Some(Token { kind: TokenKind::Ident(n), .. }) if n == "new")
}

/// `ident !` at token position `i` (macro invocation)?
fn is_macro_bang(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i + 1), Some(Token { kind: TokenKind::Op(o), .. }) if o == "!")
}

/// L4: `Vec::new` / `.collect()` inside a loop body of a probe/rebuild
/// function allocates O(tasks × candidates) times per schedule.
fn lint_l4(rel: &str, targets: &[&str], tokens: &[Token], findings: &mut Vec<Finding>) {
    scan_target_loop_idents(targets, tokens, |i, name, t| {
        let TokenKind::Ident(id) = &t.kind else {
            return;
        };
        let what = if id == "collect" {
            "`.collect()`"
        } else if id == "Vec" && is_path_new(tokens, i) {
            "`Vec::new`"
        } else {
            return;
        };
        findings.push(Finding {
            code: "ES-A004",
            pass: "L4",
            file: rel.to_string(),
            line: t.line,
            message: format!(
                "{what} inside a loop of `{name}` — this runs O(tasks × candidates) \
                 times; hoist the buffer out of the loop and reuse it \
                 (clear-don't-drop)"
            ),
        });
    });
}

/// L5: per-iteration heap allocation (`Box::new`, `String::new`,
/// `vec!` / `format!`, `.to_vec()` / `.to_string()` / `.to_owned()`)
/// or a `BTreeMap`/`BTreeSet` touch inside a loop body of the
/// batch-probe hot path (DESIGN.md §16). The arena/SoA layout exists
/// precisely so these loops stay allocation- and tree-walk-free; a
/// reintroduced map lookup or per-hop allocation silently costs the
/// bench multiplier long before a test fails.
fn lint_l5(rel: &str, targets: &[&str], tokens: &[Token], findings: &mut Vec<Finding>) {
    scan_target_loop_idents(targets, tokens, |i, name, t| {
        let TokenKind::Ident(id) = &t.kind else {
            return;
        };
        let what = if ((id == "Box" || id == "String") && is_path_new(tokens, i))
            || ((id == "vec" || id == "format") && is_macro_bang(tokens, i))
            || id == "to_vec"
            || id == "to_string"
            || id == "to_owned"
        {
            "heap allocation"
        } else if id == "BTreeMap" || id == "BTreeSet" {
            "tree-map access"
        } else {
            return;
        };
        findings.push(Finding {
            code: "ES-A007",
            pass: "L5",
            file: rel.to_string(),
            line: t.line,
            message: format!(
                "{what} (`{id}`) inside a loop of `{name}` — the batch-probe hot \
                 path must stay allocation- and tree-walk-free; use the arena/SoA \
                 columns and hoisted scratch buffers (DESIGN.md §16)"
            ),
        });
    });
}

/// Extract `ES-Exxx` code occurrences (with their lines) from raw text.
fn scan_codes(src: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let b = line.as_bytes();
        let mut from = 0usize;
        while let Some(pos) = line[from..].find("ES-E") {
            let at = from + pos;
            let digits = &b[at + 4..];
            if digits.len() >= 3 && digits[..3].iter().all(u8::is_ascii_digit) {
                out.push((line[at..at + 7].to_string(), lineno as u32 + 1));
            }
            from = at + 4;
        }
    }
    out
}

/// L3: cross-check codes in core sources against DESIGN.md's table.
fn lint_l3(design: &str, sites: &[(String, u32, String)], findings: &mut Vec<Finding>) {
    let documented: Vec<String> = {
        let mut v: Vec<String> = scan_codes(design).into_iter().map(|(c, _)| c).collect();
        v.sort();
        v.dedup();
        v
    };

    let mut constructed: Vec<(String, u32, String)> = sites.to_vec();
    constructed.sort();
    let mut seen: Vec<String> = Vec::new();
    for (code, line, file) in &constructed {
        if seen.last() == Some(code) {
            continue;
        }
        seen.push(code.clone());
        if !documented.contains(code) {
            findings.push(Finding {
                code: "ES-A003",
                pass: "L3",
                file: file.clone(),
                line: *line,
                message: format!(
                    "diagnostic code {code} is constructed in core but missing \
                     from DESIGN.md's diagnostics table"
                ),
            });
        }
    }
    for code in &documented {
        if !seen.contains(code) {
            findings.push(Finding {
                code: "ES-A003",
                pass: "L3",
                file: "DESIGN.md".to_string(),
                line: 0,
                message: format!(
                    "diagnostic code {code} is documented but never constructed \
                     in crates/core — stale table row?"
                ),
            });
        }
    }
}

/// Every `.rs` file under the workspace except vendored stubs, build
/// artifacts, the known-bad fixture corpus, and VCS metadata; sorted
/// for deterministic reports.
pub fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    "vendor" | "target" | ".git" | ".github" | "fixtures"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Workspace root: parent of the xtask crate when built by cargo,
/// otherwise the current directory.
fn detect_root() -> PathBuf {
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(parent) = p.parent() {
            return parent.to_path_buf();
        }
    }
    std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn l2_flags_float_literal_comparisons() {
        let toks = lex("if x == 0.0 { } if 1e-6 != y { } if a == b { }");
        let mut f = Vec::new();
        lint_l2("t.rs", &toks, &mut f);
        assert_eq!(
            f.len(),
            2,
            "{:?}",
            f.iter().map(|x| &x.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn l2_ignores_int_comparisons_and_strings() {
        let toks = lex(r#"if n == 0 { } let s = "x == 0.0"; // y == 1.0"#);
        let mut f = Vec::new();
        lint_l2("t.rs", &toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn l1_flags_hash_collections() {
        let toks = lex("use std::collections::HashMap; let s: HashSet<u32>;");
        let mut f = Vec::new();
        lint_l1("crates/core/src/x.rs", &toks, &mut f);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.code == "ES-A001"));
    }

    #[test]
    fn code_scanner_finds_codes_with_lines() {
        let src = "// ES-E001 here\nlet c = \"ES-E008\"; // and ES-E00 is not a code\n";
        let codes = scan_codes(src);
        assert_eq!(
            codes,
            vec![("ES-E001".to_string(), 1), ("ES-E008".to_string(), 2)]
        );
    }

    #[test]
    fn l4_flags_allocations_inside_probe_loops() {
        let src = "fn pick_by_probe(&mut self) {\n\
                   for p in procs {\n\
                   let v = Vec::new();\n\
                   let c: Vec<f64> = xs.iter().collect();\n\
                   }\n\
                   }";
        let toks = lex(src);
        let mut f = Vec::new();
        lint_l4(
            "crates/core/src/list.rs",
            probe_fns("crates/core/src/list.rs"),
            &toks,
            &mut f,
        );
        assert_eq!(
            f.len(),
            2,
            "{:?}",
            f.iter().map(|x| &x.message).collect::<Vec<_>>()
        );
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
    }

    #[test]
    fn l4_allows_hoisted_buffers_and_non_probe_fns() {
        // Allocations before/after the loop (the hoisted buffers) and
        // in non-target functions are fine; clear/extend/resize_with
        // inside the loop are the intended pattern.
        let src = "fn rebuild() {\n\
                   let mut buf: Vec<f64> = Vec::new();\n\
                   for t in tasks {\n\
                   buf.clear();\n\
                   buf.extend(xs);\n\
                   idx.resize_with(3, Default::default);\n\
                   }\n\
                   let out: Vec<f64> = buf.iter().copied().collect();\n\
                   }\n\
                   fn helper() { for x in ys { let v = Vec::new(); } }";
        let toks = lex(src);
        let mut f = Vec::new();
        lint_l4(
            "crates/core/src/repair.rs",
            probe_fns("crates/core/src/repair.rs"),
            &toks,
            &mut f,
        );
        assert!(
            f.is_empty(),
            "{:?}",
            f.iter().map(|x| &x.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn l4_is_scoped_to_probe_files() {
        assert!(probe_fns("crates/core/src/slotted.rs").is_empty());
        assert!(!probe_fns("crates/core/src/list.rs").is_empty());
    }

    #[test]
    fn l5_flags_allocations_and_tree_maps_in_batch_probe_loops() {
        let src = "fn probe_in_edges(&mut self) {\n\
                   for pe in edges {\n\
                   let b = Box::new(pe);\n\
                   let s = format!(\"{pe:?}\");\n\
                   let v = route.to_vec();\n\
                   let hit = self.cache.get(&key);\n\
                   let m: BTreeMap<u64, f64> = BTreeMap::new();\n\
                   }\n\
                   }";
        let toks = lex(src);
        let mut f = Vec::new();
        lint_l5(
            "crates/core/src/list.rs",
            batch_probe_fns("crates/core/src/list.rs"),
            &toks,
            &mut f,
        );
        assert_eq!(
            f.len(),
            5,
            "{:?}",
            f.iter().map(|x| &x.message).collect::<Vec<_>>()
        );
        assert!(f.iter().all(|x| x.code == "ES-A007" && x.pass == "L5"));
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
        assert_eq!(f[2].line, 5);
        // Two hits on line 7: the type ascription and the constructor.
        assert_eq!(f[3].line, 7);
        assert_eq!(f[4].line, 7);
    }

    #[test]
    fn l5_allows_arena_columns_and_hoisted_scratch() {
        // The sanctioned batch-probe patterns: clear-don't-drop reuse,
        // slice copies into hoisted buffers, and arena indexing. Also:
        // allocations outside loops and in non-target functions stay
        // legal.
        let src = "fn place_on_route(&mut self) {\n\
                   let mut out: Vec<Hop> = Vec::new();\n\
                   for hop in route {\n\
                   out.clear();\n\
                   out.extend_from_slice(hops);\n\
                   let q = &mut self.queues[hop.link.index()];\n\
                   }\n\
                   let s = format!(\"done {out:?}\");\n\
                   }\n\
                   fn helper() { for x in ys { let v = x.to_vec(); } }";
        let toks = lex(src);
        let mut f = Vec::new();
        lint_l5(
            "crates/core/src/slotted.rs",
            batch_probe_fns("crates/core/src/slotted.rs"),
            &toks,
            &mut f,
        );
        assert!(
            f.is_empty(),
            "{:?}",
            f.iter().map(|x| &x.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn l5_is_scoped_to_batch_probe_files() {
        assert!(batch_probe_fns("crates/core/src/repair.rs").is_empty());
        assert!(!batch_probe_fns("crates/core/src/slotted.rs").is_empty());
        assert!(!batch_probe_fns("crates/core/src/list.rs").is_empty());
    }
}
