//! Finding model, pass registry, suppression file, and the
//! `es-analyze-v1` machine-readable report (DESIGN.md §12.4).
//!
//! Every pass emits [`Finding`]s with a stable `ES-A0xx` code from the
//! [`PASSES`] registry. Findings can be suppressed only through the
//! explicit suppression file (`analyze-suppressions.txt` at the
//! workspace root) — each entry names the code, the file (optionally a
//! line), and a mandatory justification. Unused or malformed entries
//! are themselves findings (`ES-A006`), so the suppression file can
//! never rot silently.

use std::fmt::Write as _;

/// One analysis finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Stable finding code (`ES-A0xx`), from the [`PASSES`] registry.
    pub code: &'static str,
    /// Pass identifier (`L1`…`L4`, `N1`…`N5`, `DET`, `SUP`).
    pub pass: &'static str,
    /// Path relative to the workspace root (empty for runtime audits).
    pub file: String,
    /// 1-based line, 0 when not applicable.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// One row of the pass registry.
pub struct PassDesc {
    /// Pass identifier.
    pub id: &'static str,
    /// Finding codes the pass may emit.
    pub codes: &'static [&'static str],
    /// One-line description.
    pub title: &'static str,
}

/// The pass registry: ids, finding codes, and one-line invariants.
/// DESIGN.md §12.2 documents each in full.
pub const PASSES: &[PassDesc] = &[
    PassDesc {
        id: "L1",
        codes: &["ES-A001"],
        title: "no HashMap/HashSet in scheduler hot-path crates",
    },
    PassDesc {
        id: "L2",
        codes: &["ES-A002"],
        title: "no bare ==/!= against f64 literals outside the EPS layer",
    },
    PassDesc {
        id: "L3",
        codes: &["ES-A003"],
        title: "ES-Exxx diagnostic codes documented in DESIGN.md both ways",
    },
    PassDesc {
        id: "L4",
        codes: &["ES-A004"],
        title: "no per-candidate allocations in probe/repair loop bodies",
    },
    PassDesc {
        id: "L5",
        codes: &["ES-A007"],
        title: "no per-iteration heap allocation or BTree access in \
                batch-probe loop bodies",
    },
    PassDesc {
        id: "DET",
        codes: &["ES-A005"],
        title: "runtime determinism audit (double-run schedule diff)",
    },
    PassDesc {
        id: "SUP",
        codes: &["ES-A006"],
        title: "suppression-file hygiene (unused or malformed entries)",
    },
    PassDesc {
        id: "N1",
        codes: &["ES-A010"],
        title: "nondeterminism taint: no unordered state observed on paths \
                reachable from schedule/execute/repair entry points",
    },
    PassDesc {
        id: "N2",
        codes: &["ES-A020"],
        title: "epoch discipline: SlotQueue mutation sites pair with an \
                epoch bump / cache invalidation",
    },
    PassDesc {
        id: "N3",
        codes: &["ES-A030", "ES-A031"],
        title: "twin drift: TWIN-delimited reference/optimized regions stay \
                token-identical modulo declared divergences",
    },
    PassDesc {
        id: "N4",
        codes: &["ES-A040", "ES-A041", "ES-A042"],
        title: "unsafe audit: SAFETY comments on every unsafe site, \
                cross-checked against the DESIGN.md registry",
    },
    PassDesc {
        id: "N5",
        codes: &["ES-A050", "ES-A051"],
        title: "lock discipline: no lock held across dispatch/park, no \
                nested lock acquisition in es-runner and es-serve",
    },
];

/// One parsed suppression-file entry.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Finding code this entry suppresses.
    pub code: String,
    /// File path the finding must match.
    pub file: String,
    /// Optional line restriction.
    pub line: Option<u32>,
    /// Mandatory justification text.
    pub justification: String,
    /// 1-based line in the suppression file (for ES-A006 reporting).
    pub at_line: u32,
    /// Set once a finding matched this entry.
    pub used: bool,
}

/// Parse the suppression file. Format, one entry per line:
///
/// ```text
/// ES-A0xx <file>[:<line>] -- <justification>
/// ```
///
/// Blank lines and `#` comments are ignored. Malformed lines (missing
/// fields or empty justification) become `ES-A006` findings.
pub fn parse_suppressions(text: &str, sup_file: &str) -> (Vec<Suppression>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let at_line = u32::try_from(idx).unwrap_or(u32::MAX - 1) + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let malformed = |msg: &str, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                code: "ES-A006",
                pass: "SUP",
                file: sup_file.to_string(),
                line: at_line,
                message: format!("malformed suppression entry: {msg} (in `{line}`)"),
            });
        };
        let Some((head, justification)) = line.split_once("--") else {
            malformed("missing ` -- <justification>`", &mut findings);
            continue;
        };
        let justification = justification.trim();
        if justification.is_empty() {
            malformed("empty justification", &mut findings);
            continue;
        }
        let mut parts = head.split_whitespace();
        let (Some(code), Some(target)) = (parts.next(), parts.next()) else {
            malformed("expected `<CODE> <file>[:<line>]`", &mut findings);
            continue;
        };
        if !code.starts_with("ES-A") {
            malformed("code must be ES-A0xx", &mut findings);
            continue;
        }
        let (file, line_no) = match target.rsplit_once(':') {
            Some((f, l)) if l.chars().all(|c| c.is_ascii_digit()) && !l.is_empty() => {
                (f.to_string(), l.parse::<u32>().ok())
            }
            _ => (target.to_string(), None),
        };
        entries.push(Suppression {
            code: code.to_string(),
            file,
            line: line_no,
            justification: justification.to_string(),
            at_line,
            used: false,
        });
    }
    (entries, findings)
}

/// Split `findings` into (active, suppressed-with-justification) and
/// append `ES-A006` findings for entries that matched nothing.
pub fn apply_suppressions(
    findings: Vec<Finding>,
    entries: &mut [Suppression],
    sup_file: &str,
) -> (Vec<Finding>, Vec<(Finding, String)>) {
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let hit = entries
            .iter_mut()
            .find(|e| e.code == f.code && e.file == f.file && e.line.is_none_or(|l| l == f.line));
        if let Some(e) = hit {
            e.used = true;
            suppressed.push((f, e.justification.clone()));
        } else {
            active.push(f);
        }
    }
    for e in entries.iter().filter(|e| !e.used) {
        active.push(Finding {
            code: "ES-A006",
            pass: "SUP",
            file: sup_file.to_string(),
            line: e.at_line,
            message: format!(
                "unused suppression entry `{} {}` — the finding it suppressed \
                 is gone; delete the entry",
                e.code, e.file
            ),
        });
    }
    (active, suppressed)
}

/// Render the full `es-analyze-v1` report as a JSON document.
pub fn render_report(root: &str, active: &[Finding], suppressed: &[(Finding, String)]) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"schema\":\"es-analyze-v1\",\"root\":{},",
        json_str(root)
    );
    s.push_str("\"passes\":[");
    for (i, p) in PASSES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let codes = p
            .codes
            .iter()
            .map(|c| json_str(c))
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(
            s,
            "{{\"id\":{},\"codes\":[{}],\"title\":{}}}",
            json_str(p.id),
            codes,
            json_str(p.title)
        );
    }
    s.push_str("],\"findings\":[");
    let mut first = true;
    let mut emit = |s: &mut String, f: &Finding, sup: Option<&str>| {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(
            s,
            "{{\"code\":{},\"pass\":{},\"file\":{},\"line\":{},\"message\":{},\
             \"suppressed\":{},\"justification\":{}}}",
            json_str(f.code),
            json_str(f.pass),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            sup.is_some(),
            sup.map_or_else(|| "null".to_string(), json_str),
        );
    };
    for f in active {
        emit(&mut s, f, None);
    }
    for (f, j) in suppressed {
        emit(&mut s, f, Some(j));
    }
    let _ = write!(
        s,
        "],\"summary\":{{\"active\":{},\"suppressed\":{},\"total\":{}}}}}",
        active.len(),
        suppressed.len(),
        active.len() + suppressed.len()
    );
    s
}

/// JSON-escape a string (used by the report writer and tests).
pub fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

/// A minimal JSON reader, enough to round-trip the `es-analyze-v1`
/// report in tests without a serde runtime. Not a general-purpose
/// parser: no surrogate-pair decoding, numbers as f64 only.
pub mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (f64 representation).
        Num(f64),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object member lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        /// String contents, if a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// Array elements, if an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
        /// Numeric value, if a number.
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Parse a JSON document; the whole input must be one value.
    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                let mut members = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(Value::Obj(members));
                }
                loop {
                    skip_ws(b, i);
                    let Value::Str(key) = value(b, i)? else {
                        return Err(format!("object key must be a string at byte {i}"));
                    };
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected `:` at byte {i}"));
                    }
                    *i += 1;
                    members.push((key, value(b, i)?));
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(Value::Obj(members));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {i}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                let mut items = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, i)?);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {i}")),
                    }
                }
            }
            Some(b'"') => {
                *i += 1;
                let mut out = String::new();
                while *i < b.len() {
                    match b[*i] {
                        b'"' => {
                            *i += 1;
                            return Ok(Value::Str(out));
                        }
                        b'\\' => {
                            *i += 1;
                            match b.get(*i) {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                Some(b'/') => out.push('/'),
                                Some(b'n') => out.push('\n'),
                                Some(b't') => out.push('\t'),
                                Some(b'r') => out.push('\r'),
                                Some(b'b') => out.push('\u{8}'),
                                Some(b'f') => out.push('\u{c}'),
                                Some(b'u') => {
                                    let hex = std::str::from_utf8(
                                        b.get(*i + 1..*i + 5).ok_or("truncated \\u escape")?,
                                    )
                                    .map_err(|e| e.to_string())?;
                                    let cp =
                                        u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                                    out.push(char::from_u32(cp).ok_or("invalid \\u codepoint")?);
                                    *i += 4;
                                }
                                _ => return Err(format!("bad escape at byte {i}")),
                            }
                            *i += 1;
                        }
                        _ => {
                            // Copy the full UTF-8 sequence.
                            let start = *i;
                            *i += 1;
                            while *i < b.len() && (b[*i] & 0xC0) == 0x80 {
                                *i += 1;
                            }
                            out.push_str(
                                std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?,
                            );
                        }
                    }
                }
                Err("unterminated string".to_string())
            }
            Some(b't') if b[*i..].starts_with(b"true") => {
                *i += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*i..].starts_with(b"false") => {
                *i += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*i..].starts_with(b"null") => {
                *i += 4;
                Ok(Value::Null)
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = *i;
                *i += 1;
                while *i < b.len()
                    && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    *i += 1;
                }
                std::str::from_utf8(&b[start..*i])
                    .map_err(|e| e.to_string())?
                    .parse::<f64>()
                    .map(Value::Num)
                    .map_err(|e| e.to_string())
            }
            _ => Err(format!("unexpected byte at {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: &'static str, pass: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            code,
            pass,
            file: file.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn suppression_parse_and_match() {
        let text = "\
            # comment\n\
            \n\
            ES-A010 crates/core/src/list.rs:42 -- known benign, tracked in #7\n\
            ES-A020 crates/core/src/slotted.rs -- file-wide\n";
        let (mut entries, bad) = parse_suppressions(text, "sup.txt");
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].line, Some(42));
        assert_eq!(entries[1].line, None);

        let findings = vec![
            finding("ES-A010", "N1", "crates/core/src/list.rs", 42),
            finding("ES-A010", "N1", "crates/core/src/list.rs", 99), // different line
            finding("ES-A020", "N2", "crates/core/src/slotted.rs", 7),
        ];
        let (active, suppressed) = apply_suppressions(findings, &mut entries, "sup.txt");
        assert_eq!(suppressed.len(), 2);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].line, 99);
    }

    #[test]
    fn malformed_and_unused_entries_fire_es_a006() {
        let (entries, bad) = parse_suppressions("ES-A010 foo.rs\nES-A010 -- x\n", "sup.txt");
        assert!(entries.is_empty());
        assert_eq!(bad.len(), 2);
        assert!(bad.iter().all(|f| f.code == "ES-A006"));

        let (mut entries, bad) =
            parse_suppressions("ES-A010 crates/x.rs -- justified\n", "sup.txt");
        assert!(bad.is_empty());
        let (active, suppressed) = apply_suppressions(Vec::new(), &mut entries, "sup.txt");
        assert!(suppressed.is_empty());
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].code, "ES-A006");
        assert!(active[0].message.contains("unused"));
    }

    #[test]
    fn report_round_trips_through_the_json_reader() {
        let active = vec![finding("ES-A030", "N3", "crates/core/src/slotted.rs", 3)];
        let suppressed = vec![(
            finding("ES-A010", "N1", "a \"quoted\"\npath.rs", 1),
            "because".to_string(),
        )];
        let doc = render_report("/root/repo", &active, &suppressed);
        let v = json::parse(&doc).expect("report must be valid JSON");
        assert_eq!(
            v.get("schema").and_then(json::Value::as_str),
            Some("es-analyze-v1")
        );
        let findings = v.get("findings").and_then(json::Value::as_arr).unwrap();
        assert_eq!(findings.len(), 2);
        assert_eq!(
            findings[0].get("code").and_then(json::Value::as_str),
            Some("ES-A030")
        );
        assert_eq!(
            findings[1].get("suppressed"),
            Some(&json::Value::Bool(true))
        );
        assert_eq!(
            findings[1].get("file").and_then(json::Value::as_str),
            Some("a \"quoted\"\npath.rs")
        );
        let summary = v.get("summary").unwrap();
        assert_eq!(
            summary.get("active").and_then(json::Value::as_num),
            Some(1.0)
        );
        assert_eq!(
            summary.get("total").and_then(json::Value::as_num),
            Some(2.0)
        );
        assert_eq!(
            v.get("passes")
                .and_then(json::Value::as_arr)
                .map(<[json::Value]>::len),
            Some(super::PASSES.len())
        );
    }

    #[test]
    fn json_reader_rejects_garbage() {
        assert!(json::parse("{\"a\":}").is_err());
        assert!(json::parse("[1,2").is_err());
        assert!(json::parse("{} trailing").is_err());
    }
}
