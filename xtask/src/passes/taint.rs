//! **N1 — nondeterminism taint** (`ES-A010`).
//!
//! Starting from the scheduler entry points (`schedule`, `execute`,
//! `execute_with`, `repair`, `repair_with`, and the online
//! shared-network entry points `run_online` and `arrival_script`, all
//! in `crates/core/src/`),
//! walk the name-resolved call graph across all crate `src/` trees and
//! flag, in every reachable non-test function, observations of
//! unordered or ambient state that would make schedules
//! irreproducible:
//!
//! * iteration over `HashMap`/`HashSet` locals (`.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, `.retain()`, `for _ in &map`, …) —
//!   hash order is randomized per process;
//! * wall-clock reads: `Instant::now()`, `SystemTime::now()`,
//!   `.elapsed()`;
//! * thread-identity observation: `thread::current`, `ThreadId`;
//! * pointer-as-integer observation: `as_ptr()`/`from_ref()`/
//!   `addr_of!`-family results cast `as usize`-like, or `.addr()` —
//!   allocator addresses differ run to run;
//! * unordered float reductions: `sum`/`product`/`fold` over a hash
//!   container in a float context — float addition is not
//!   associative, so reduction order changes the result.
//!
//! Resolution is by callee *name* (no type inference): same file
//! first, then same crate, then any crate. That over-approximates
//! reachability — safe for a determinism lint (false positives are
//! visible, false negatives are not). Locals only: hash containers
//! reaching a fn through parameters or fields are L1's territory
//! (hot-path crates ban them outright).

use super::{crate_of, in_crate_src, Model};
use crate::lexer::TokenKind;
use crate::parser::ParsedFile;
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Call-graph roots: the scheduler/executor/repair entry points, plus
/// the online shared-network entry points (the event loop and the
/// arrival-script generator both feed bitwise-pinned outcomes).
const ROOT_FNS: [&str; 7] = [
    "schedule",
    "execute",
    "execute_with",
    "repair",
    "repair_with",
    "run_online",
    "arrival_script",
];

/// Methods that iterate a hash container in arbitrary order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Functions producing pointers whose integer value is address-derived.
const PTR_FNS: [&str; 7] = [
    "as_ptr",
    "as_mut_ptr",
    "addr_of",
    "addr_of_mut",
    "from_ref",
    "from_mut",
    "dangling",
];

/// Integer types a pointer cast to which observes the address.
const INT_CASTS: [&str; 5] = ["usize", "u64", "isize", "i64", "u128"];

/// Run N1 over the model.
pub fn run(model: &Model) -> Vec<Finding> {
    // Index every non-test fn in crate src trees by name.
    let mut index: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, file) in model.files.iter().enumerate() {
        if !in_crate_src(&file.rel) {
            continue;
        }
        for (fj, f) in file.fns.iter().enumerate() {
            if !f.is_test {
                index.entry(f.name.as_str()).or_default().push((fi, fj));
            }
        }
    }

    // BFS from the entry points, remembering which root reached each fn.
    let mut origin: BTreeMap<(usize, usize), String> = BTreeMap::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for (&name, sites) in &index {
        if !ROOT_FNS.contains(&name) {
            continue;
        }
        for &(fi, fj) in sites {
            if model.files[fi].rel.starts_with("crates/core/src/") {
                origin.insert((fi, fj), name.to_string());
                queue.push_back((fi, fj));
            }
        }
    }
    while let Some((fi, fj)) = queue.pop_front() {
        let root = origin[&(fi, fj)].clone();
        let calls: Vec<String> = model.files[fi].fns[fj]
            .calls
            .iter()
            .map(|c| c.callee.clone())
            .collect();
        for callee in calls {
            let Some(candidates) = index.get(callee.as_str()) else {
                continue;
            };
            // Same file, else same crate, else anywhere.
            let same_file: Vec<_> = candidates.iter().filter(|&&(f, _)| f == fi).collect();
            let resolved: Vec<(usize, usize)> = if same_file.is_empty() {
                let here = crate_of(&model.files[fi].rel);
                let same_crate: Vec<_> = candidates
                    .iter()
                    .filter(|&&(f, _)| crate_of(&model.files[f].rel) == here)
                    .copied()
                    .collect();
                if same_crate.is_empty() {
                    candidates.clone()
                } else {
                    same_crate
                }
            } else {
                same_file.into_iter().copied().collect()
            };
            for key in resolved {
                if let std::collections::btree_map::Entry::Vacant(e) = origin.entry(key) {
                    e.insert(root.clone());
                    queue.push_back(key);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (&(fi, fj), root) in &origin {
        scan_fn(&model.files[fi], fj, root, &mut findings);
    }
    findings
}

/// Scan one reachable fn for nondeterminism hazards.
#[allow(clippy::too_many_lines)]
fn scan_fn(file: &ParsedFile, fj: usize, root: &str, findings: &mut Vec<Finding>) {
    let f = &file.fns[fj];
    let toks = &file.tokens;
    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let op = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Op(o)) => Some(o.as_str()),
            _ => None,
        }
    };
    let mut flag = |line: u32, what: &str, detail: &str| {
        findings.push(Finding {
            code: "ES-A010",
            pass: "N1",
            file: file.rel.clone(),
            line,
            message: format!(
                "{what} in `{}` (reachable from scheduler entry point `{root}`) — {detail}",
                f.name
            ),
        });
    };

    // Hash-container locals bound by `let` in this body.
    let mut hash_locals: BTreeSet<String> = BTreeSet::new();
    for k in f.body.clone() {
        if !matches!(ident(k), Some("HashMap" | "HashSet")) {
            continue;
        }
        // Walk back to the `let` of the enclosing statement.
        let mut j = k;
        while j > f.body.start {
            j -= 1;
            match toks[j].kind {
                TokenKind::Op(ref o) if o == ";" || o == "{" || o == "}" => break,
                TokenKind::Ident(ref s) if s == "let" => {
                    let mut n = j + 1;
                    if ident(n) == Some("mut") {
                        n += 1;
                    }
                    if let Some(name) = ident(n) {
                        hash_locals.insert(name.to_string());
                    }
                    break;
                }
                _ => {}
            }
        }
    }

    // (a) hash iteration through method calls and `for … in` loops.
    for c in &f.calls {
        if c.method && ITER_METHODS.contains(&c.callee.as_str()) && c.tok >= 2 {
            if let Some(recv) = ident(c.tok - 2) {
                if hash_locals.contains(recv) {
                    flag(
                        c.line,
                        &format!("hash-order iteration `{recv}.{}()`", c.callee),
                        "HashMap/HashSet iteration order is randomized per process; \
                         use BTreeMap/BTreeSet or sort first",
                    );
                }
            }
        }
    }
    let mut k = f.body.start;
    while k < f.body.end {
        if ident(k) == Some("for") {
            // `for <pat> in [&][mut] <ident> {`
            let mut j = k + 1;
            let limit = (k + 24).min(f.body.end);
            while j < limit && ident(j) != Some("in") && op(j) != Some("{") {
                j += 1;
            }
            if ident(j) == Some("in") {
                let mut n = j + 1;
                while matches!(op(n), Some("&")) || matches!(ident(n), Some("mut")) {
                    n += 1;
                }
                if let Some(name) = ident(n) {
                    if hash_locals.contains(name) && matches!(op(n + 1), Some("{" | ".") | None) {
                        flag(
                            toks[n].line,
                            &format!("hash-order iteration `for … in {name}`"),
                            "HashMap/HashSet iteration order is randomized per process; \
                             use BTreeMap/BTreeSet or sort first",
                        );
                    }
                }
            }
        }
        // (b) wall clocks: `Instant::now()` / `SystemTime::now()`.
        if matches!(ident(k), Some("Instant" | "SystemTime"))
            && op(k + 1) == Some("::")
            && ident(k + 2) == Some("now")
        {
            flag(
                toks[k].line,
                &format!("wall-clock read `{}::now()`", ident(k).unwrap_or_default()),
                "ambient time makes scheduling decisions irreproducible; \
                 thread timing through explicit model parameters",
            );
        }
        // (c) thread identity.
        if ident(k) == Some("thread") && op(k + 1) == Some("::") && ident(k + 2) == Some("current")
        {
            flag(
                toks[k].line,
                "thread-identity observation `thread::current`",
                "worker identity varies run to run; key decisions on lane \
                 indices, not thread ids",
            );
        }
        if ident(k) == Some("ThreadId") {
            flag(
                toks[k].line,
                "thread-identity type `ThreadId`",
                "worker identity varies run to run; key decisions on lane \
                 indices, not thread ids",
            );
        }
        k += 1;
    }

    for c in &f.calls {
        // (b) `.elapsed()` duration reads.
        if c.method && c.callee == "elapsed" {
            flag(
                c.line,
                "wall-clock read `.elapsed()`",
                "ambient time makes scheduling decisions irreproducible; \
                 thread timing through explicit model parameters",
            );
        }
        // (d) pointer-as-integer: `<ptr fn>(…) as usize` or `.addr()`.
        if c.method && c.callee == "addr" {
            flag(
                c.line,
                "pointer-address observation `.addr()`",
                "allocator addresses differ run to run; derive ordering keys \
                 from stable ids instead",
            );
        }
        if PTR_FNS.contains(&c.callee.as_str()) {
            // Find the call's `(`, skipping an optional turbofish.
            let mut j = c.tok + 1;
            let limit = (c.tok + 8).min(f.body.end);
            while j < limit && op(j) != Some("(") {
                j += 1;
            }
            if op(j) == Some("(") {
                let mut depth = 0i32;
                while j < f.body.end {
                    match op(j) {
                        Some("(") => depth += 1,
                        Some(")") => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if ident(j + 1) == Some("as")
                    && ident(j + 2).is_some_and(|t| INT_CASTS.contains(&t))
                {
                    flag(
                        c.line,
                        &format!("pointer-as-integer cast `{}(…) as …`", c.callee),
                        "allocator addresses differ run to run; derive ordering \
                         keys from stable ids instead",
                    );
                }
            }
        }
        // (e) unordered float reductions over hash containers.
        if c.method && matches!(c.callee.as_str(), "sum" | "product" | "fold") {
            let start = statement_start(file, f.body.start, c.tok);
            let end = statement_end(file, c.tok, f.body.end);
            let mut saw_hash_local = false;
            let mut saw_float = false;
            for j in start..end {
                match &toks[j].kind {
                    TokenKind::Ident(s) if hash_locals.contains(s) => saw_hash_local = true,
                    TokenKind::Ident(s) if s == "f64" || s == "f32" => saw_float = true,
                    TokenKind::Float => saw_float = true,
                    _ => {}
                }
            }
            if saw_hash_local && saw_float {
                flag(
                    c.line,
                    &format!("unordered float reduction `.{}(…)`", c.callee),
                    "float addition/multiplication is not associative; reducing \
                     in hash order changes the result bitwise — sort first",
                );
            }
        }
    }
}

/// Token index of the start of the statement containing `at`.
fn statement_start(file: &ParsedFile, body_start: usize, at: usize) -> usize {
    let mut j = at;
    while j > body_start {
        if let TokenKind::Op(ref o) = file.tokens[j - 1].kind {
            if o == ";" || o == "{" || o == "}" {
                break;
            }
        }
        j -= 1;
    }
    j
}

/// Token index one past the end of the statement containing `at`.
fn statement_end(file: &ParsedFile, at: usize, body_end: usize) -> usize {
    let mut j = at;
    while j < body_end {
        if let TokenKind::Op(ref o) = file.tokens[j].kind {
            if o == ";" || o == "{" || o == "}" {
                break;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> Model {
        Model::from_sources(
            vec![("crates/core/src/t.rs".to_string(), src.to_string())],
            String::new(),
        )
    }

    #[test]
    fn unreachable_hazards_stay_silent() {
        let m = model(
            "pub fn execute() -> u32 { 1 }\n\
             fn island() { let m = std::collections::HashMap::new(); for v in &m { use_(v); } }\n",
        );
        assert!(run(&m).is_empty());
    }

    #[test]
    fn reachable_hash_iteration_fires() {
        let m = model(
            "pub fn execute() -> u32 { helper() }\n\
             fn helper() -> u32 {\n\
               let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();\n\
               let mut acc = 0;\n\
               for (_k, v) in &m { acc += v; }\n\
               acc\n\
             }\n",
        );
        let f = run(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "ES-A010");
        assert!(f[0].message.contains("`helper`"));
        assert!(f[0].message.contains("`execute`"));
    }

    #[test]
    fn arrival_curve_instant_variant_is_not_a_clock() {
        // `ArrivalCurve::Instant` (an enum variant in es-linksched) must
        // not trip the wall-clock rule — only `Instant::now()` does.
        let m = model("pub fn schedule() { let c = ArrivalCurve::Instant; use_(c); }\n");
        assert!(run(&m).is_empty());
    }

    #[test]
    fn ordered_float_max_fold_is_not_flagged() {
        // `fold(0.0, f64::max)` over an ordered Vec is order-insensitive
        // enough for our twin paths and must not fire the reduction rule
        // (no hash container involved).
        let m = model(
            "pub fn schedule(xs: &[f64]) -> f64 { xs.iter().copied().fold(0.0_f64, f64::max) }\n",
        );
        assert!(run(&m).is_empty());
    }
}
