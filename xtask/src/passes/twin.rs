//! **N3 — twin drift** (`ES-A030` drift, `ES-A031` marker structure).
//!
//! The determinism story rests on "statement-identical twins": the
//! reference implementations (serial probe, `SlottedState` route
//! pick/placement) and their optimized counterparts (overlay probe,
//! `OverlayState`) must make *bitwise identical* decisions. PR 4/5
//! made that claim testable at runtime (differential suites); this
//! pass makes it checkable at the source level.
//!
//! Regions are delimited with line markers:
//!
//! ```text
//! // TWIN(<name>): begin [map a=b,c=d]
//! …
//! // TWIN(<name>): end
//! ```
//!
//! Each `<name>` must appear exactly twice in the workspace (the
//! reference and the optimized region). The two regions' token
//! streams must be identical after (a) dropping lines carrying a
//! `// TWIN-OK: <reason>` marker — the *declared* divergences, reason
//! mandatory — and (b) renaming identifiers through the region's
//! `map` clause (e.g. `map ws=self` on the overlay side). Comments
//! and whitespace never participate (the comparison is token-level).

use super::Model;
use crate::lexer::{lex, TokenKind};
use crate::report::Finding;
use std::collections::BTreeMap;

struct Region {
    file: String,
    begin_line: u32,
    map: Vec<(String, String)>,
    /// Kept lines: (absolute 1-based line, text).
    kept: Vec<(u32, String)>,
}

/// Run N3 over the model.
pub fn run(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut groups: BTreeMap<String, Vec<Region>> = BTreeMap::new();

    for file in &model.files {
        // Twins are a crates/ concern; scoping also keeps marker-shaped
        // text in xtask's own tests (raw string fixtures) out of scope.
        if file.rel.starts_with("crates/") {
            collect_regions(&file.rel, &file.src, &mut groups, &mut findings);
        }
    }

    for (name, regions) in &groups {
        if regions.len() != 2 {
            for r in regions {
                findings.push(Finding {
                    code: "ES-A031",
                    pass: "N3",
                    file: r.file.clone(),
                    line: r.begin_line,
                    message: format!(
                        "twin `{name}` has {} region(s) — exactly 2 required \
                         (one reference, one optimized)",
                        regions.len()
                    ),
                });
            }
            continue;
        }
        compare(name, &regions[0], &regions[1], &mut findings);
    }
    findings
}

/// Scan one file's lines for TWIN markers, accumulating regions.
fn collect_regions(
    rel: &str,
    src: &str,
    groups: &mut BTreeMap<String, Vec<Region>>,
    findings: &mut Vec<Finding>,
) {
    let mut open: Option<(String, Region)> = None;
    let structure = |line: u32, msg: String, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            code: "ES-A031",
            pass: "N3",
            file: rel.to_string(),
            line,
            message: msg,
        });
    };
    for (idx, raw) in src.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let trimmed = raw.trim_start();
        if let Some(rest) = trimmed.strip_prefix("// TWIN(") {
            let Some((name, tail)) = rest.split_once(')') else {
                structure(
                    lineno,
                    "malformed TWIN marker: missing `)` after name".to_string(),
                    findings,
                );
                continue;
            };
            let tail = tail.trim_start_matches(':').trim();
            if tail == "end" {
                match open.take() {
                    Some((open_name, region)) if open_name == name => {
                        groups.entry(open_name).or_default().push(region);
                    }
                    Some((open_name, _)) => structure(
                        lineno,
                        format!(
                            "TWIN end for `{name}` while `{open_name}` is open — \
                             regions cannot interleave"
                        ),
                        findings,
                    ),
                    None => structure(
                        lineno,
                        format!("TWIN end for `{name}` with no matching begin"),
                        findings,
                    ),
                }
            } else if let Some(map_clause) = tail.strip_prefix("begin") {
                if let Some((prev_name, region)) = open.take() {
                    structure(
                        region.begin_line,
                        format!(
                            "TWIN `{prev_name}` begun here is never ended before \
                             `{name}` begins"
                        ),
                        findings,
                    );
                }
                let mut map = Vec::new();
                let clause = map_clause.trim();
                if let Some(pairs) = clause.strip_prefix("map") {
                    for pair in pairs.split(',') {
                        let pair = pair.trim();
                        if pair.is_empty() {
                            continue;
                        }
                        match pair.split_once('=') {
                            Some((a, b)) if !a.trim().is_empty() && !b.trim().is_empty() => {
                                map.push((a.trim().to_string(), b.trim().to_string()));
                            }
                            _ => structure(
                                lineno,
                                format!("malformed TWIN map entry `{pair}` — want `a=b`"),
                                findings,
                            ),
                        }
                    }
                } else if !clause.is_empty() {
                    structure(
                        lineno,
                        format!("unexpected text after TWIN begin: `{clause}`"),
                        findings,
                    );
                }
                open = Some((
                    name.to_string(),
                    Region {
                        file: rel.to_string(),
                        begin_line: lineno,
                        map,
                        kept: Vec::new(),
                    },
                ));
            } else {
                structure(
                    lineno,
                    format!("malformed TWIN marker: want `begin [map …]` or `end`, got `{tail}`"),
                    findings,
                );
            }
            continue;
        }
        if let Some((_, region)) = open.as_mut() {
            if let Some(pos) = raw.find("// TWIN-OK") {
                let reason = raw[pos + "// TWIN-OK".len()..]
                    .trim_start_matches(':')
                    .trim();
                if reason.is_empty() {
                    structure(
                        lineno,
                        "TWIN-OK divergence marker requires a reason: \
                         `// TWIN-OK: <why this line may differ>`"
                            .to_string(),
                        findings,
                    );
                }
                // Declared divergence: the whole line is excluded.
                continue;
            }
            region.kept.push((lineno, raw.to_string()));
        }
    }
    if let Some((name, region)) = open {
        structure(
            region.begin_line,
            format!("TWIN `{name}` begun here is never ended"),
            findings,
        );
    }
}

/// Token-compare two regions after normalization.
fn compare(name: &str, a: &Region, b: &Region, findings: &mut Vec<Finding>) {
    let ta = normalize(a);
    let tb = normalize(b);
    let n = ta.len().min(tb.len());
    for i in 0..n {
        if ta[i].1 != tb[i].1 {
            findings.push(Finding {
                code: "ES-A030",
                pass: "N3",
                file: b.file.clone(),
                line: tb[i].0,
                message: format!(
                    "twin `{name}` drifted from its reference: `{}` here vs `{}` \
                     at {}:{} — twins must stay token-identical modulo declared \
                     TWIN-OK divergences",
                    tb[i].1, ta[i].1, a.file, ta[i].0
                ),
            });
            return;
        }
    }
    if ta.len() != tb.len() {
        let (longer, shorter, where_line) = if ta.len() > tb.len() {
            (&ta, "reference", tb.last().map_or(b.begin_line, |t| t.0))
        } else {
            (&tb, "optimized", ta.last().map_or(a.begin_line, |t| t.0))
        };
        findings.push(Finding {
            code: "ES-A030",
            pass: "N3",
            file: b.file.clone(),
            line: where_line,
            message: format!(
                "twin `{name}` drifted: the {shorter} region ends while its twin \
                 still has `{}` (+{} token(s))",
                longer[n].1,
                longer.len() - n
            ),
        });
    }
}

/// Lex a region's kept lines and apply its identifier map.
/// Returns (absolute line, normalized token text) pairs.
fn normalize(r: &Region) -> Vec<(u32, String)> {
    let text: String = r
        .kept
        .iter()
        .map(|(_, l)| l.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let abs_line = |rel: u32| -> u32 {
        r.kept
            .get(rel as usize - 1)
            .map_or(r.begin_line, |&(abs, _)| abs)
    };
    lex(&text)
        .into_iter()
        .map(|t| {
            let text = match &t.kind {
                TokenKind::Ident(s) => r
                    .map
                    .iter()
                    .find(|(from, _)| from == s)
                    .map_or_else(|| t.text.clone(), |(_, to)| to.clone()),
                _ => t.text.clone(),
            };
            (abs_line(t.line), text)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(files: Vec<(&str, &str)>) -> Model {
        Model::from_sources(
            files
                .into_iter()
                .map(|(r, s)| (r.to_string(), s.to_string()))
                .collect(),
            String::new(),
        )
    }

    #[test]
    fn identical_twins_are_clean() {
        let m = model(vec![(
            "crates/core/src/t.rs",
            "// TWIN(relax): begin\nlet x = a + b; // hot\n// TWIN(relax): end\n\
             // TWIN(relax): begin\n// different comment\nlet x = a + b;\n// TWIN(relax): end\n",
        )]);
        assert!(run(&m).is_empty());
    }

    #[test]
    fn drift_is_reported_with_both_sites() {
        let m = model(vec![(
            "crates/core/src/t.rs",
            "// TWIN(relax): begin\nlet x = a + b;\n// TWIN(relax): end\n\
             // TWIN(relax): begin\nlet x = a - b;\n// TWIN(relax): end\n",
        )]);
        let f = run(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "ES-A030");
        assert!(f[0].message.contains('-') && f[0].message.contains('+'));
    }

    #[test]
    fn maps_and_twin_ok_declare_divergences() {
        let m = model(vec![(
            "crates/core/src/t.rs",
            "// TWIN(probe): begin\n\
             let q = self.cache;\n\
             let v = queues[i].probe(t); // TWIN-OK: serial probes committed state\n\
             // TWIN(probe): end\n\
             // TWIN(probe): begin map ws=self\n\
             let q = ws.cache;\n\
             let v = overlay.probe_delta(t); // TWIN-OK: overlay probes through deltas\n\
             // TWIN(probe): end\n",
        )]);
        assert!(run(&m).is_empty(), "{:?}", run(&m));
    }

    #[test]
    fn structure_errors_fire_es_a031() {
        let m = model(vec![(
            "crates/core/src/t.rs",
            "// TWIN(a): begin\nlet x = 1; // TWIN-OK:\n",
        )]);
        let f = run(&m);
        // Empty TWIN-OK reason + unterminated region (which therefore
        // never joins a group, so no group-arity finding on top).
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.code == "ES-A031"));
    }

    #[test]
    fn regions_pair_across_files() {
        let m = model(vec![
            (
                "crates/core/src/a.rs",
                "// TWIN(x): begin\nfinish < best\n// TWIN(x): end\n",
            ),
            (
                "crates/core/src/b.rs",
                "// TWIN(x): begin\nfinish < best\n// TWIN(x): end\n",
            ),
        ]);
        assert!(run(&m).is_empty());
    }
}
