//! **N4 — unsafe audit** (`ES-A040` missing SAFETY comment, `ES-A041`
//! unregistered site, `ES-A042` stale registry row).
//!
//! The workspace forbids `unsafe` everywhere except `crates/runner`
//! (the JobPtr dispatch thunks). This pass keeps that surface honest
//! in both directions:
//!
//! * every `unsafe` block / fn / impl / trait / fn-pointer type must
//!   carry an adjacent `// SAFETY:` comment (a `/// # Safety` doc
//!   section also counts, per std convention for `unsafe fn`);
//! * every site must have a row in the DESIGN.md §12.3 unsafe
//!   registry (`| <file> | <kind>:<context> | <why sound> |`), and
//!   every registry row must correspond to a live site — so the
//!   registry can neither lag behind new unsafe code nor accumulate
//!   rows for code that no longer exists.
//!
//! Labels are `<kind>:<context>` (e.g. `block:worker_loop`,
//! `impl:Send for JobPtr`); same-label sites in one file get `#2`,
//! `#3`… suffixes in source order.

use super::Model;
use crate::report::Finding;

/// Run N4 over the model.
pub fn run(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut live: Vec<(String, String)> = Vec::new(); // (file, label)

    for file in &model.files {
        let lines: Vec<&str> = file.src.lines().collect();
        let mut seen: Vec<String> = Vec::new();
        for site in &file.unsafe_sites {
            let mut label = site.registry_label();
            let dups = seen.iter().filter(|l| **l == label).count();
            seen.push(label.clone());
            if dups > 0 {
                label = format!("{label}#{}", dups + 1);
            }
            if !has_safety_comment(&lines, site.line) {
                findings.push(Finding {
                    code: "ES-A040",
                    pass: "N4",
                    file: file.rel.clone(),
                    line: site.line,
                    message: format!(
                        "unsafe site `{label}` has no adjacent `// SAFETY:` comment \
                         (or `# Safety` doc section) stating why the invariants hold"
                    ),
                });
            }
            live.push((file.rel.clone(), label));
        }
    }

    let registry = registry_rows(&model.design);
    for (file, label) in &live {
        if !registry.iter().any(|(f, l, _)| f == file && l == label) {
            // Anchor at the site so the fix location is obvious.
            let line = site_line(model, file, label);
            findings.push(Finding {
                code: "ES-A041",
                pass: "N4",
                file: file.clone(),
                line,
                message: format!(
                    "unsafe site `{label}` is missing from the DESIGN.md §12.3 \
                     unsafe registry — add a row `| {file} | {label} | <why sound> |`"
                ),
            });
        }
    }
    for (file, label, design_line) in &registry {
        if !live.iter().any(|(f, l)| f == file && l == label) {
            findings.push(Finding {
                code: "ES-A042",
                pass: "N4",
                file: "DESIGN.md".to_string(),
                line: *design_line,
                message: format!(
                    "unsafe registry row `{file} | {label}` matches no live unsafe \
                     site — stale row, delete it"
                ),
            });
        }
    }
    findings
}

/// Line of the (deduped) labeled site, for ES-A041 anchoring.
fn site_line(model: &Model, file: &str, label: &str) -> u32 {
    let base = label.split('#').next().unwrap_or(label);
    let ordinal: usize = label
        .rsplit_once('#')
        .and_then(|(_, n)| n.parse().ok())
        .unwrap_or(1);
    model.files.iter().find(|f| f.rel == file).map_or(0, |f| {
        f.unsafe_sites
            .iter()
            .filter(|s| s.registry_label() == base)
            .nth(ordinal - 1)
            .map_or(0, |s| s.line)
    })
}

/// Is there a SAFETY comment on or directly above `site_line`
/// (1-based)? Attributes and doc comments may sit between.
fn has_safety_comment(lines: &[&str], site_line: u32) -> bool {
    let idx = site_line as usize - 1;
    let is_safety = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if lines.get(idx).is_some_and(|l| is_safety(l)) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") || t.starts_with('*') {
            if is_safety(t) {
                return true;
            }
            continue;
        }
        // Block-comment body/open lines.
        if t.starts_with("/*") {
            return is_safety(t);
        }
        break;
    }
    false
}

/// Extract `(file, label, line)` rows from the DESIGN.md registry
/// table: markdown rows whose first cell is a `.rs` path and whose
/// second cell is a `<kind>:<context>` label.
fn registry_rows(design: &str) -> Vec<(String, String, u32)> {
    const KINDS: [&str; 5] = ["block:", "fn:", "impl:", "trait:", "fn-ptr:"];
    let mut rows = Vec::new();
    for (idx, raw) in design.lines().enumerate() {
        let line = raw.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let file = cells[0].trim_matches('`');
        let label = cells[1].trim_matches('`');
        let is_rs = std::path::Path::new(file)
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("rs"));
        if is_rs && KINDS.iter().any(|k| label.starts_with(k)) {
            rows.push((
                file.to_string(),
                label.to_string(),
                u32::try_from(idx + 1).unwrap_or(u32::MAX),
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str, design: &str) -> Model {
        Model::from_sources(
            vec![("crates/runner/src/lib.rs".to_string(), src.to_string())],
            design.to_string(),
        )
    }

    const GOOD_SRC: &str = "\
fn worker_loop() {
    // SAFETY: ptr outlives the pool run; see JobPtr contract.
    unsafe { go() };
}
";

    #[test]
    fn commented_and_registered_site_is_clean() {
        let design = "| `crates/runner/src/lib.rs` | `block:worker_loop` | ptr outlives run |\n";
        let f = run(&model(GOOD_SRC, design));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_comment_and_registry_row_both_fire() {
        let src = "fn worker_loop() {\n    unsafe { go() };\n}\n";
        let f = run(&model(src, ""));
        let codes: Vec<&str> = f.iter().map(|x| x.code).collect();
        assert_eq!(codes, vec!["ES-A040", "ES-A041"], "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn stale_registry_row_fires_es_a042() {
        let design = "\
| `crates/runner/src/lib.rs` | `block:worker_loop` | ptr outlives run |
| `crates/runner/src/lib.rs` | `fn:gone_thunk` | removed in PR 9 |
";
        let f = run(&model(GOOD_SRC, design));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "ES-A042");
        assert_eq!(f[0].file, "DESIGN.md");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_doc_section_counts_for_unsafe_fn() {
        let src = "\
/// Dispatch trampoline.
///
/// # Safety
/// Caller guarantees `data` points at a live `F`.
unsafe fn thunk(data: *const ()) { }
";
        let design = "| `crates/runner/src/lib.rs` | `fn:thunk` | see doc |\n";
        let f = run(&model(src, design));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn duplicate_labels_get_ordinal_suffixes() {
        let src = "\
fn w() {
    // SAFETY: first.
    unsafe { a() };
    // SAFETY: second.
    unsafe { b() };
}
";
        let design = "\
| `crates/runner/src/lib.rs` | `block:w` | first |
| `crates/runner/src/lib.rs` | `block:w#2` | second |
";
        let f = run(&model(src, design));
        assert!(f.is_empty(), "{f:?}");
    }
}
