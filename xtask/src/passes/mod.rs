//! The syntax-aware analysis passes (N1–N5) and the workspace model
//! they share. See DESIGN.md §12 for each pass's invariant, finding
//! code, and known approximations.

pub mod epoch;
pub mod locks;
pub mod taint;
pub mod twin;
pub mod unsafe_audit;

use crate::parser::{self, ParsedFile};
use crate::report::Finding;
use std::path::Path;

/// The parsed workspace: every source file lexed and parsed once,
/// plus DESIGN.md for the registry cross-checks. All passes run
/// against one `Model`, so the file set and token streams are
/// guaranteed consistent across passes.
pub struct Model {
    /// Parsed files, sorted by relative path.
    pub files: Vec<ParsedFile>,
    /// DESIGN.md contents (empty if absent).
    pub design: String,
}

impl Model {
    /// Load and parse the given files (paths relative to `root`).
    pub fn load(root: &Path, paths: &[std::path::PathBuf]) -> Model {
        let mut sources = Vec::new();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Ok(src) = std::fs::read_to_string(path) {
                sources.push((rel, src));
            }
        }
        let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
        Model::from_sources(sources, design)
    }

    /// Build a model from in-memory `(rel_path, source)` pairs — used
    /// by the fixture tests to place snippets at pseudo-paths inside
    /// each pass's scope.
    pub fn from_sources(sources: Vec<(String, String)>, design: String) -> Model {
        let files = sources
            .into_iter()
            .map(|(rel, src)| parser::parse(&rel, &src))
            .collect();
        Model { files, design }
    }

    /// Run all five syntax-aware passes and collect their findings.
    pub fn run_passes(&self) -> Vec<Finding> {
        let mut findings = taint::run(self);
        findings.extend(epoch::run(self));
        findings.extend(twin::run(self));
        findings.extend(unsafe_audit::run(self));
        findings.extend(locks::run(self));
        findings
    }
}

/// The crate name for a `crates/<name>/…` path, if any.
pub fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// Is this file in a crate's `src/` tree (not tests/, benches/,
/// examples/)? Passes that reason about production code scope to this.
pub fn in_crate_src(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/")
}
