//! **N2 — epoch discipline** (`ES-A020`).
//!
//! The PR 4 cacheability-window invariant: the route cache is keyed on
//! the link-state epoch, so every function in `crates/core/src/` that
//! mutates committed `SlotQueue` state must also bump the epoch
//! (`touch()`) or invalidate the caches before returning. Until this
//! pass, the invariant was enforced only by debug checksums at
//! runtime; here it is structural.
//!
//! Mutators: `commit`, `remove_comm`, `remove_slot_at`, `shift_right`,
//! `insert_at`, `optimal_insert_with`. Reconcilers: `touch`,
//! `invalidate_caches`. `commit_into` is deliberately *not* a mutator:
//! it writes lane-private overlay deltas (DESIGN.md §11), which never
//! feed the shared route cache.
//!
//! Granularity is per function: a fn that calls a mutator without any
//! reconciler call in the same body gets one finding per mutator call
//! site. Test functions are exempt (they assert on raw queue state).
//!
//! Scope refinement: the invariant attaches to the *slotted* link
//! state (`SlotQueue`/`SlottedState`/`OverlayState`), so only files
//! that mention those types participate. The fluid BBSA path reuses
//! the method names `commit`/`remove_comm` on `RateProfile`, but has
//! no epoch-keyed cache — fresh route searches every probe — so an
//! epoch bump there would be meaningless.
//!
//! **Backend rule** (`ES-A021`, PR 8): since every link model now
//! carries an epoch (the `LinkModel` trait's cache-invalidation
//! contract, conformance law C6), the *definitions* of the trait's
//! mutating operations in `crates/linksched/src/` are checked too —
//! inverted from the caller-side rule above. A fn named after a trait
//! mutator (`commit`, `remove_comm`, `remove_slot_at`, `shift_right`,
//! `insert_at`, `commit_transfer`, `unschedule`, `restore`) must
//! either call a reconciler (`touch` / `restore_epoch`) itself or
//! delegate to another mutator that does (e.g. `commit_transfer` →
//! `commit`). A backend impl that mutates committed state without
//! bumping its epoch would silently break every epoch-keyed consumer.

use super::Model;
use crate::lexer::TokenKind;
use crate::report::Finding;

/// Calls that mutate committed SlotQueue / link state.
const MUTATORS: [&str; 6] = [
    "commit",
    "remove_comm",
    "remove_slot_at",
    "shift_right",
    "insert_at",
    "optimal_insert_with",
];

/// Calls that reconcile the epoch/caches after mutation.
const RECONCILERS: [&str; 2] = ["touch", "invalidate_caches"];

/// Types whose presence marks a file as using the slotted machinery.
const SLOTTED_TYPES: [&str; 4] = [
    "SlotQueue",
    "SlottedState",
    "OverlayState",
    "SlotQueueOverlay",
];

/// The `LinkModel` trait's mutating operations (plus the concrete
/// queue mutators they delegate to): definitions under
/// `crates/linksched/src/` with these names must reconcile the epoch.
const TRAIT_MUTATORS: [&str; 8] = [
    "commit",
    "remove_comm",
    "remove_slot_at",
    "shift_right",
    "insert_at",
    "commit_transfer",
    "unschedule",
    "restore",
];

/// Reconcilers available inside `es-linksched` itself (where
/// `restore_epoch` is the checkpoint-rewind primitive).
const LINK_RECONCILERS: [&str; 2] = ["touch", "restore_epoch"];

/// Run N2 over the model.
pub fn run(model: &Model) -> Vec<Finding> {
    let mut findings = caller_rule(model);
    findings.extend(backend_rule(model));
    findings
}

/// Caller-side rule (`ES-A020`): core-crate fns that invoke a mutator
/// must reconcile in the same body.
fn caller_rule(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &model.files {
        if !file.rel.starts_with("crates/core/src/") {
            continue;
        }
        let uses_slotted = file.tokens.iter().any(|t| match &t.kind {
            TokenKind::Ident(s) => SLOTTED_TYPES.contains(&s.as_str()),
            _ => false,
        });
        if !uses_slotted {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let reconciles = f
                .calls
                .iter()
                .any(|c| RECONCILERS.contains(&c.callee.as_str()));
            if reconciles {
                continue;
            }
            for c in &f.calls {
                if MUTATORS.contains(&c.callee.as_str()) {
                    findings.push(Finding {
                        code: "ES-A020",
                        pass: "N2",
                        file: file.rel.clone(),
                        line: c.line,
                        message: format!(
                            "`{}` mutates committed link state in `{}` with no \
                             `touch()` / `invalidate_caches()` in the same fn — \
                             the epoch-keyed route cache would serve stale \
                             shortest paths (DESIGN.md §12.2/N2)",
                            c.callee, f.name
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Definition-side rule (`ES-A021`): a backend's implementation of a
/// trait mutator must bump the epoch itself or delegate to another
/// mutator. Bodiless trait declarations never reach the fn model (the
/// parser drops a `fn` pending at `;`), so only real impl bodies are
/// judged.
fn backend_rule(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &model.files {
        if !file.rel.starts_with("crates/linksched/src/") {
            continue;
        }
        for f in &file.fns {
            if f.is_test || !TRAIT_MUTATORS.contains(&f.name.as_str()) {
                continue;
            }
            let reconciles = f.calls.iter().any(|c| {
                LINK_RECONCILERS.contains(&c.callee.as_str())
                    || (TRAIT_MUTATORS.contains(&c.callee.as_str()) && c.callee != f.name)
            });
            if !reconciles {
                findings.push(Finding {
                    code: "ES-A021",
                    pass: "N2",
                    file: file.rel.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` implements a LinkModel mutator without calling \
                         `touch()` / `restore_epoch()` or delegating to a \
                         mutator that does — committed link state would \
                         change under an unchanged epoch, violating the \
                         trait's invalidation contract (conformance law C6, \
                         DESIGN.md §12.2/N2)",
                        f.name
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> Model {
        Model::from_sources(
            vec![("crates/core/src/t.rs".to_string(), src.to_string())],
            String::new(),
        )
    }

    #[test]
    fn mutation_without_touch_fires() {
        let f = run(&model("fn place(q: &mut SlotQueue) { q.commit(slot); }\n"));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "ES-A020");
    }

    #[test]
    fn mutation_with_touch_is_clean() {
        assert!(run(&model(
            "fn place(&mut self, q: &mut SlotQueue) { q.commit(slot); self.touch(); }\n",
        ))
        .is_empty());
    }

    #[test]
    fn overlay_commit_into_is_exempt() {
        assert!(run(&model(
            "fn place_overlay(d: &mut SlotQueueOverlay) { d.commit_into(slot); }\n",
        ))
        .is_empty());
    }

    #[test]
    fn fluid_rate_profile_files_are_out_of_scope() {
        // BBSA's RateProfile shares the `commit`/`remove_comm` method
        // names but has no epoch-keyed cache; files that never mention
        // the slotted types do not participate.
        assert!(run(&model(
            "fn rollback(p: &mut RateProfile) { p.remove_comm(c); p.commit(c, f); }\n",
        ))
        .is_empty());
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        // The caller-side rule does not apply outside crates/core/src/
        // (and `internal` is not a trait-mutator name, so the backend
        // rule stays quiet too).
        let m = Model::from_sources(
            vec![(
                "crates/linksched/src/slot.rs".to_string(),
                "fn internal(q: &mut Q) { q.commit(s); }".to_string(),
            )],
            String::new(),
        );
        assert!(run(&m).is_empty());
    }

    fn link_model(src: &str) -> Model {
        Model::from_sources(
            vec![(
                "crates/linksched/src/backend.rs".to_string(),
                src.to_string(),
            )],
            String::new(),
        )
    }

    #[test]
    fn backend_mutator_without_epoch_bump_fires() {
        let f = run(&link_model(
            "impl LinkModel for Raw {\n\
             fn commit_transfer(&mut self, c: CommId) { self.slots.push(c); }\n\
             }\n",
        ));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "ES-A021");
        assert!(f[0].message.contains("commit_transfer"), "{}", f[0].message);
    }

    #[test]
    fn backend_mutator_with_touch_is_clean() {
        assert!(run(&link_model(
            "impl LinkModel for Good {\n\
             fn unschedule(&mut self, c: CommId) -> usize { let n = self.drop(c); self.touch(); n }\n\
             }\n",
        ))
        .is_empty());
    }

    #[test]
    fn backend_mutator_may_delegate_to_another_mutator() {
        // `commit_transfer` → `commit` is the real SlotQueue/SafLink
        // shape: the inner mutator owns the epoch bump.
        assert!(run(&link_model(
            "impl LinkModel for Delegating {\n\
             fn commit_transfer(&mut self, c: CommId) { self.queue.commit(c); }\n\
             }\n",
        ))
        .is_empty());
    }

    #[test]
    fn backend_self_recursion_is_not_delegation() {
        // Calling *yourself* reconciles nothing; only a different
        // mutator (or a reconciler) counts.
        let f = run(&link_model(
            "impl LinkModel for Loopy {\n\
             fn unschedule(&mut self, c: CommId) -> usize { self.unschedule(c) }\n\
             }\n",
        ));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "ES-A021");
    }

    #[test]
    fn backend_restore_must_rewind_the_epoch() {
        let f = run(&link_model(
            "impl LinkModel for Fancy {\n\
             fn restore(&mut self, cp: &LinkCheckpoint) { self.slots.truncate(cp.n); }\n\
             }\n",
        ));
        assert_eq!(f.len(), 1);
        assert!(run(&link_model(
            "impl LinkModel for Fine {\n\
             fn restore(&mut self, cp: &LinkCheckpoint) { self.restore_epoch(cp.epoch); }\n\
             }\n",
        ))
        .is_empty());
    }

    #[test]
    fn backend_trait_declarations_and_tests_are_exempt() {
        // A bodiless trait declaration parses to no fn at all; a
        // `#[cfg(test)]` mutation helper is out of scope.
        assert!(run(&link_model(
            "pub trait LinkModel {\n\
             fn commit_transfer(&mut self, c: CommId);\n\
             fn unschedule(&mut self, c: CommId) -> usize;\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             fn commit(q: &mut SlotQueue) { q.slots.clear(); }\n\
             }\n",
        ))
        .is_empty());
    }

    #[test]
    fn backend_rule_is_scoped_to_linksched() {
        // The same definition outside crates/linksched/src/ is judged
        // only by the caller-side rule (which exempts it here because
        // the file never mentions a slotted type).
        let m = Model::from_sources(
            vec![(
                "crates/net/src/x.rs".to_string(),
                "fn unschedule(&mut self) { self.n += 1; }".to_string(),
            )],
            String::new(),
        );
        assert!(run(&m).is_empty());
    }
}
