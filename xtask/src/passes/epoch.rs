//! **N2 — epoch discipline** (`ES-A020`).
//!
//! The PR 4 cacheability-window invariant: the route cache is keyed on
//! the link-state epoch, so every function in `crates/core/src/` that
//! mutates committed `SlotQueue` state must also bump the epoch
//! (`touch()`) or invalidate the caches before returning. Until this
//! pass, the invariant was enforced only by debug checksums at
//! runtime; here it is structural.
//!
//! Mutators: `commit`, `remove_comm`, `remove_slot_at`, `shift_right`,
//! `insert_at`, `optimal_insert_with`. Reconcilers: `touch`,
//! `invalidate_caches`. `commit_into` is deliberately *not* a mutator:
//! it writes lane-private overlay deltas (DESIGN.md §11), which never
//! feed the shared route cache.
//!
//! Granularity is per function: a fn that calls a mutator without any
//! reconciler call in the same body gets one finding per mutator call
//! site. Test functions are exempt (they assert on raw queue state).
//!
//! Scope refinement: the invariant attaches to the *slotted* link
//! state (`SlotQueue`/`SlottedState`/`OverlayState`), so only files
//! that mention those types participate. The fluid BBSA path reuses
//! the method names `commit`/`remove_comm` on `RateProfile`, but has
//! no epoch-keyed cache — fresh route searches every probe — so an
//! epoch bump there would be meaningless.

use super::Model;
use crate::lexer::TokenKind;
use crate::report::Finding;

/// Calls that mutate committed SlotQueue / link state.
const MUTATORS: [&str; 6] = [
    "commit",
    "remove_comm",
    "remove_slot_at",
    "shift_right",
    "insert_at",
    "optimal_insert_with",
];

/// Calls that reconcile the epoch/caches after mutation.
const RECONCILERS: [&str; 2] = ["touch", "invalidate_caches"];

/// Types whose presence marks a file as using the slotted machinery.
const SLOTTED_TYPES: [&str; 4] = [
    "SlotQueue",
    "SlottedState",
    "OverlayState",
    "SlotQueueOverlay",
];

/// Run N2 over the model.
pub fn run(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &model.files {
        if !file.rel.starts_with("crates/core/src/") {
            continue;
        }
        let uses_slotted = file.tokens.iter().any(|t| match &t.kind {
            TokenKind::Ident(s) => SLOTTED_TYPES.contains(&s.as_str()),
            _ => false,
        });
        if !uses_slotted {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let reconciles = f
                .calls
                .iter()
                .any(|c| RECONCILERS.contains(&c.callee.as_str()));
            if reconciles {
                continue;
            }
            for c in &f.calls {
                if MUTATORS.contains(&c.callee.as_str()) {
                    findings.push(Finding {
                        code: "ES-A020",
                        pass: "N2",
                        file: file.rel.clone(),
                        line: c.line,
                        message: format!(
                            "`{}` mutates committed link state in `{}` with no \
                             `touch()` / `invalidate_caches()` in the same fn — \
                             the epoch-keyed route cache would serve stale \
                             shortest paths (DESIGN.md §12.2/N2)",
                            c.callee, f.name
                        ),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> Model {
        Model::from_sources(
            vec![("crates/core/src/t.rs".to_string(), src.to_string())],
            String::new(),
        )
    }

    #[test]
    fn mutation_without_touch_fires() {
        let f = run(&model("fn place(q: &mut SlotQueue) { q.commit(slot); }\n"));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "ES-A020");
    }

    #[test]
    fn mutation_with_touch_is_clean() {
        assert!(run(&model(
            "fn place(&mut self, q: &mut SlotQueue) { q.commit(slot); self.touch(); }\n",
        ))
        .is_empty());
    }

    #[test]
    fn overlay_commit_into_is_exempt() {
        assert!(run(&model(
            "fn place_overlay(d: &mut SlotQueueOverlay) { d.commit_into(slot); }\n",
        ))
        .is_empty());
    }

    #[test]
    fn fluid_rate_profile_files_are_out_of_scope() {
        // BBSA's RateProfile shares the `commit`/`remove_comm` method
        // names but has no epoch-keyed cache; files that never mention
        // the slotted types do not participate.
        assert!(run(&model(
            "fn rollback(p: &mut RateProfile) { p.remove_comm(c); p.commit(c, f); }\n",
        ))
        .is_empty());
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let m = Model::from_sources(
            vec![(
                "crates/linksched/src/slot.rs".to_string(),
                "fn internal(q: &mut Q) { q.commit(s); }".to_string(),
            )],
            String::new(),
        );
        assert!(run(&m).is_empty());
    }
}
