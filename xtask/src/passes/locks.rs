//! **N5 — lock discipline** (`ES-A050` dispatch/park under lock,
//! `ES-A051` nested lock acquisition).
//!
//! es-runner's worker pool must never hold the pool mutex across a
//! job dispatch (the job body can take arbitrarily long — every other
//! worker would serialize on the guard) and must never acquire a
//! second lock while one is held (lock-order inversion risk). The
//! runner's own convention is *publish under lock, dispatch outside*:
//! guards are dropped (`drop(c)` or scope end) before `job(…)` /
//! `(ptr.call)(…)` runs, and condvar waits consume their own guard.
//!
//! es-serve's driver goes further: its event loop is single-owner by
//! design — *no* driver state lives behind a mutex — so any lock that
//! appears in `crates/serve/src/` gets the same scrutiny as the
//! runner's (and dispatching a job or parking a condvar under one is
//! just as wrong there).
//!
//! The pass tracks guard liveness lexically per function in
//! `crates/runner/src/` and `crates/serve/src/`: a
//! `lock()`/`try_lock()` call bound by
//! `let [mut] name = …` arms a guard; `drop(name)`, scope exit, or
//! rebinding kill it. While any guard is live:
//!
//! * a dispatch site — a call to `job(…)` or a fn-pointer invoke
//!   `(recv.call)(…)` — fires `ES-A050`;
//! * a condvar park — `wait(…)`/`wait_timeout(…)` whose arguments do
//!   not consume that guard — fires `ES-A050`;
//! * another `lock()` acquisition fires `ES-A051`.
//!
//! Statement-temporary guards (`*slots[i].lock()… = v;`) are released
//! within their statement and are not tracked — but they still count
//! as nested acquisitions if a named guard is live.

use super::Model;
use crate::lexer::TokenKind;
use crate::parser::{FnDef, ParsedFile};
use crate::report::Finding;

/// Callee names treated as job-dispatch sites.
const DISPATCH_CALLEES: [&str; 1] = ["job"];

/// Run N5 over the model.
pub fn run(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &model.files {
        let in_scope =
            file.rel.starts_with("crates/runner/src/") || file.rel.starts_with("crates/serve/src/");
        if !in_scope {
            continue;
        }
        for f in &file.fns {
            if !f.is_test {
                scan_fn(file, f, &mut findings);
            }
        }
    }
    findings
}

struct Guard {
    name: String,
    depth: i32,
}

#[allow(clippy::too_many_lines)]
fn scan_fn(file: &ParsedFile, f: &FnDef, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let op = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Op(o)) => Some(o.as_str()),
            _ => None,
        }
    };

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = f.body.start;
    while i < f.body.end {
        match op(i) {
            Some("{") => depth += 1,
            Some("}") => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            _ => {}
        }
        let Some(name) = ident(i) else {
            i += 1;
            continue;
        };
        match name {
            "lock" | "try_lock" if op(i + 1) == Some("(") => {
                // Binding: walk back to the statement start looking for
                // `let [mut] <name> =` or a plain `<name> =` rebind.
                let bound = binding_name(file, f.body.start, i);
                let rebind_of_live = bound
                    .as_deref()
                    .is_some_and(|b| guards.iter().any(|g| g.name == b));
                if !rebind_of_live {
                    for g in &guards {
                        findings.push(Finding {
                            code: "ES-A051",
                            pass: "N5",
                            file: file.rel.clone(),
                            line: toks[i].line,
                            message: format!(
                                "nested lock acquisition in `{}` while guard `{}` is \
                                 live — lock-order inversion risk; release the first \
                                 guard before taking another",
                                f.name, g.name
                            ),
                        });
                    }
                }
                if let Some(b) = bound {
                    if !rebind_of_live {
                        guards.push(Guard { name: b, depth });
                    }
                }
            }
            "drop" if op(i + 1) == Some("(") => {
                if let Some(dropped) = ident(i + 2) {
                    guards.retain(|g| g.name != dropped);
                }
            }
            "wait" | "wait_timeout" if op(i + 1) == Some("(") && !guards.is_empty() => {
                // The guard passed to wait() is consumed (and comes back
                // on return); any *other* live guard is held across the
                // park.
                let close = matching_paren(file, i + 1, f.body.end);
                for g in &guards {
                    let consumed = (i + 2..close).any(|j| ident(j) == Some(g.name.as_str()));
                    if !consumed {
                        findings.push(Finding {
                            code: "ES-A050",
                            pass: "N5",
                            file: file.rel.clone(),
                            line: toks[i].line,
                            message: format!(
                                "condvar park in `{}` while guard `{}` is held — \
                                 every thread needing `{}` blocks until wakeup; \
                                 drop it before waiting",
                                f.name, g.name, g.name
                            ),
                        });
                    }
                }
            }
            _ if !guards.is_empty() => {
                // Dispatch: `job(…)` call or `(recv.call)(…)` invoke.
                let named_dispatch = DISPATCH_CALLEES.contains(&name) && op(i + 1) == Some("(");
                let fnptr_invoke = name == "call"
                    && op(i.wrapping_sub(1)) == Some(".")
                    && op(i + 1) == Some(")")
                    && op(i + 2) == Some("(");
                if named_dispatch || fnptr_invoke {
                    for g in &guards {
                        findings.push(Finding {
                            code: "ES-A050",
                            pass: "N5",
                            file: file.rel.clone(),
                            line: toks[i].line,
                            message: format!(
                                "job dispatched in `{}` while guard `{}` is held — \
                                 the job body runs user code of unbounded duration; \
                                 publish under the lock, dispatch outside it",
                                f.name, g.name
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// For a `lock()` call at token `at`, the variable it is bound to:
/// `let [mut] name = … lock(…)` or `name = … lock(…)`. `None` for
/// statement temporaries.
fn binding_name(file: &ParsedFile, body_start: usize, at: usize) -> Option<String> {
    let toks = &file.tokens;
    let mut j = at;
    // Find the statement start.
    while j > body_start {
        if let TokenKind::Op(ref o) = toks[j - 1].kind {
            if o == ";" || o == "{" || o == "}" {
                break;
            }
        }
        j -= 1;
    }
    let ident_at = |k: usize| -> Option<&str> {
        match toks.get(k).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let op_at = |k: usize| -> Option<&str> {
        match toks.get(k).map(|t| &t.kind) {
            Some(TokenKind::Op(o)) => Some(o.as_str()),
            _ => None,
        }
    };
    if ident_at(j) == Some("let") {
        let mut n = j + 1;
        if ident_at(n) == Some("mut") {
            n += 1;
        }
        let name = ident_at(n)?;
        // Skip a type annotation up to the `=`.
        let mut e = n + 1;
        while e < at && op_at(e) != Some("=") {
            e += 1;
        }
        (e < at).then(|| name.to_string())
    } else if ident_at(j).is_some() && op_at(j + 1) == Some("=") {
        ident_at(j).map(ToString::to_string)
    } else {
        None
    }
}

/// Token index of the `)` matching the `(` at `open`.
fn matching_paren(file: &ParsedFile, open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        if let TokenKind::Op(ref o) = file.tokens[j].kind {
            if o == "(" {
                depth += 1;
            } else if o == ")" {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> Model {
        Model::from_sources(
            vec![("crates/runner/src/lib.rs".to_string(), src.to_string())],
            String::new(),
        )
    }

    #[test]
    fn dispatch_under_lock_fires() {
        let f = run(&model(
            "fn run_all(&self) { let mut c = self.ctrl.lock().unwrap(); job(0, c.next); }\n",
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "ES-A050");
        assert!(f[0].message.contains("dispatched"));
    }

    #[test]
    fn publish_then_drop_then_dispatch_is_clean() {
        let f = run(&model(
            "fn run_all(&self) { let mut c = self.ctrl.lock().unwrap(); c.next += 1; \
             drop(c); job(0, 1); }\n",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let f = run(&model(
            "fn run_all(&self) { let idx = { let mut c = self.ctrl.lock().unwrap(); \
             c.next += 1; c.next }; job(0, idx); }\n",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fn_pointer_invoke_counts_as_dispatch() {
        let f = run(&model(
            "fn worker(&self, ptr: JobPtr) { let c = self.ctrl.lock().unwrap(); \
             (ptr.call)(ptr.data, 0, c.next); }\n",
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "ES-A050");
    }

    #[test]
    fn nested_lock_fires_but_condvar_rebind_does_not() {
        let f = run(&model(
            "fn bad(&self) { let a = self.m1.lock().unwrap(); \
             let b = self.m2.lock().unwrap(); use_(a, b); }\n",
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "ES-A051");

        // `c = cv.wait(c)` and a rebinding `c = m.lock()` of the same
        // (sole) guard are the runner's park/reacquire idiom.
        let f = run(&model(
            "fn ok(&self) { let mut c = self.ctrl.lock().unwrap(); \
             while c.busy { c = self.cv.wait(c).unwrap(); } drop(c); \
             let mut c = self.ctrl.lock().unwrap(); finish(&mut c); }\n",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn park_holding_a_second_guard_fires() {
        let f = run(&model(
            "fn bad(&self) { let g = self.state.lock().unwrap(); \
             let mut c = self.ctrl.lock().unwrap(); \
             c = self.cv.wait(c).unwrap(); use_(g, c); }\n",
        ));
        // Nested acquisition plus the park with `g` still held.
        let codes: Vec<&str> = f.iter().map(|x| x.code).collect();
        assert!(codes.contains(&"ES-A051"), "{f:?}");
        assert!(codes.contains(&"ES-A050"), "{f:?}");
    }

    #[test]
    fn serve_crate_is_in_scope() {
        let m = Model::from_sources(
            vec![(
                "crates/serve/src/driver.rs".to_string(),
                "fn dispatch(&self) { let c = self.state.lock().unwrap(); job(0, c.next); }\n"
                    .to_string(),
            )],
            String::new(),
        );
        let f = run(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "ES-A050");
        assert_eq!(f[0].file, "crates/serve/src/driver.rs");
    }

    #[test]
    fn test_fns_are_exempt() {
        let f = run(&model(
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { \
             let c = m.lock().unwrap(); job(0, 0); }\n}\n",
        ));
        assert!(f.is_empty(), "{f:?}");
    }
}
