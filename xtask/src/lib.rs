//! Workspace task-runner library: the static-analysis engine
//! (`analyze`), the perf harness (`bench`), and their shared
//! infrastructure. The `xtask` binary (`src/main.rs`) is a thin
//! dispatcher over these modules; the integration tests under
//! `tests/` drive the passes directly through this library.
//!
//! Analysis stack, bottom up:
//!
//! * [`lexer`] — minimal Rust token scanner;
//! * [`parser`] — lightweight syntax layer (items, fn bodies, call
//!   sites, `unsafe` surface);
//! * [`passes`] — the syntax-aware passes N1–N5 over a parsed
//!   workspace [`passes::Model`];
//! * [`report`] — finding codes, the suppression file, and the
//!   `es-analyze-v1` JSON report;
//! * [`analyze`] — orchestrator: token lints L1–L4 + N1–N5 + the
//!   optional runtime determinism audit ([`determinism`]).

pub mod analyze;
pub mod bench;
pub mod determinism;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod report;
