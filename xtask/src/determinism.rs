//! Runtime determinism audit (`xtask analyze --determinism`).
//!
//! The L1 lint bans hash-ordered iteration statically; this module is
//! its runtime counterpart. For a grid of seeded instances spanning
//! both speed regimes and several sizes, every scheduler is run
//! **twice on independently regenerated instances** and the two
//! schedules are diffed bit-for-bit: same placements, same routes,
//! same hop times, same makespan. Any divergence means hidden
//! iteration-order (or other ambient) nondeterminism survived the
//! static lints.
//!
//! The fault path gets the same treatment: for every schedule that
//! replays (all but BBSA's fluid model) the audit checks that
//! `execute_with` under [`es_core::FaultPlan::none`] reproduces
//! `execute` bit for bit, then builds the same seeded fault plan
//! twice, replays under it twice, and repairs under it twice, diffing
//! every derived time and the repaired schedule bitwise.

use es_core::diff::{diff_executions, diff_schedules};
use es_core::schedule::{Schedule, Scheduler};
use es_core::{
    arrival_script, execute, execute_with, repair, run_online, Admission, ArrivalSpec,
    BbsaScheduler, FaultPlan, FaultSpec, IdealScheduler, ListConfig, ListScheduler, OnlineConfig,
    Tuning,
};
use es_workload::{generate, Instance, InstanceConfig, Setting};

/// One observed divergence between two identically seeded runs.
pub struct Divergence {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Instance description (setting / procs / ccr / seed).
    pub instance: String,
    /// What differed.
    pub detail: String,
}

/// Run the audit; returns all divergences found (empty = deterministic).
pub fn audit() -> Vec<Divergence> {
    let mut out = Vec::new();
    let mut cases = 0usize;
    for &setting in &[Setting::Homogeneous, Setting::Heterogeneous] {
        for &(procs, tasks) in &[(4usize, 30usize), (8, 60)] {
            for &ccr in &[0.5f64, 5.0] {
                let seed = 0xA0D1_7000 + cases as u64;
                let config = InstanceConfig::paper(setting, procs, ccr, seed).with_tasks(tasks);
                let a = generate(&config);
                let b = generate(&config);
                if let Some(d) = diff_instances(&a, &b) {
                    out.push(Divergence {
                        scheduler: "workload::generate",
                        instance: describe(&config),
                        detail: d,
                    });
                    continue;
                }
                for scheduler in schedulers() {
                    cases += 1;
                    let run = |inst: &Instance| scheduler.schedule(&inst.dag, &inst.topo);
                    match (run(&a), run(&b)) {
                        (Ok(sa), Ok(sb)) => {
                            if let Some(d) = diff_schedules(&sa, &sb) {
                                out.push(Divergence {
                                    scheduler: scheduler.name(),
                                    instance: describe(&config),
                                    detail: d,
                                });
                            } else if let Some(d) = fault_path_divergence(&a, &sa, seed) {
                                out.push(Divergence {
                                    scheduler: scheduler.name(),
                                    instance: describe(&config),
                                    detail: d,
                                });
                            }
                        }
                        (Err(ea), Err(eb)) if format!("{ea:?}") == format!("{eb:?}") => {}
                        (ra, rb) => out.push(Divergence {
                            scheduler: scheduler.name(),
                            instance: describe(&config),
                            detail: format!(
                                "outcomes differ: {:?} vs {:?}",
                                ra.map(|s| s.makespan),
                                rb.map(|s| s.makespan)
                            ),
                        }),
                    }
                }
                // Optimized-vs-reference tuning double-run: the hot-path
                // optimizations (route cache, indexed gap search) must
                // be invisible in the output, bit for bit.
                for cfg in [
                    ListConfig::ba(),
                    ListConfig::ba_static(),
                    ListConfig::oihsa(),
                    ListConfig::oihsa_probing(),
                ] {
                    cases += 1;
                    if let Some(d) = tuning_divergence(&a, cfg) {
                        out.push(Divergence {
                            scheduler: cfg.name,
                            instance: describe(&config),
                            detail: d,
                        });
                    }
                }
            }
        }
    }
    // Online shared-network double-run: the same seeded arrival script
    // delivered onto the same platform twice must yield bitwise-equal
    // SLO records and per-job schedules (dispatch order, retirement
    // order, and compaction included).
    for &(jobs, tenants, gap, seed) in &[
        (8usize, 2u32, 2.0f64, 0xA0D1_8001u64),
        (12, 3, 5.0, 0xA0D1_8002),
    ] {
        let script = arrival_script(&ArrivalSpec::default_mix(jobs, tenants, gap, seed));
        let config = InstanceConfig::paper(Setting::Heterogeneous, 6, 1.0, seed).with_tasks(10);
        let platform = generate(&config);
        for scheduler in [ListConfig::ba_static(), ListConfig::oihsa()] {
            for &admission in &Admission::ALL {
                let ocfg = OnlineConfig {
                    admission,
                    ..OnlineConfig::new(scheduler)
                };
                if let Some(d) = online_divergence(&ocfg, &platform, &script) {
                    out.push(Divergence {
                        scheduler: scheduler.name,
                        instance: format!(
                            "online {} jobs={jobs} tenants={tenants} gap={gap} seed={seed:#x}",
                            admission.name()
                        ),
                        detail: d,
                    });
                }
            }
        }
    }
    out
}

/// Run the online engine twice on the same script and platform; any
/// bitwise difference in any SLO field or per-job schedule is hidden
/// ambient state in the event loop, the admission queue, or compaction.
fn online_divergence(
    cfg: &OnlineConfig,
    platform: &Instance,
    script: &[es_core::JobSpec],
) -> Option<String> {
    let run = || run_online(cfg, &platform.topo, script);
    match (run(), run()) {
        (Ok(a), Ok(b)) => {
            if a.released_slots != b.released_slots {
                return Some(format!(
                    "released_slots {} vs {}",
                    a.released_slots, b.released_slots
                ));
            }
            if a.horizon.to_bits() != b.horizon.to_bits() {
                return Some(format!("horizon {} vs {}", a.horizon, b.horizon));
            }
            for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
                for (what, x, y) in [
                    ("dispatch", oa.dispatch, ob.dispatch),
                    ("finish", oa.finish, ob.finish),
                    ("slowdown", oa.slowdown, ob.slowdown),
                ] {
                    if x.to_bits() != y.to_bits() {
                        return Some(format!("job {} {what} {x} vs {y}", oa.job));
                    }
                }
                if let Some(d) = diff_schedules(&oa.schedule, &ob.schedule) {
                    return Some(format!("job {}: {d}", oa.job));
                }
            }
            None
        }
        (Err(ea), Err(eb)) if format!("{ea:?}") == format!("{eb:?}") => None,
        (ra, rb) => Some(format!(
            "outcomes differ: {:?} vs {:?}",
            ra.map(|r| r.horizon),
            rb.map(|r| r.horizon)
        )),
    }
}

/// Run one configuration with the optimized and the reference tunings
/// on the same instance; any bitwise difference in the schedule or its
/// execution is a cache/index soundness bug.
fn tuning_divergence(inst: &Instance, cfg: ListConfig) -> Option<String> {
    let run = |tuning: Tuning| {
        ListScheduler::with_config(ListConfig { tuning, ..cfg }).schedule(&inst.dag, &inst.topo)
    };
    match (run(Tuning::optimized()), run(Tuning::reference())) {
        (Ok(opt), Ok(refr)) => {
            if let Some(d) = diff_schedules(&opt, &refr) {
                return Some(format!("optimized vs reference tuning: {d}"));
            }
            if let (Ok(eo), Ok(er)) = (
                execute(&inst.dag, &inst.topo, &opt),
                execute(&inst.dag, &inst.topo, &refr),
            ) {
                if let Some(d) = diff_executions(&eo, &er) {
                    return Some(format!("optimized vs reference execution: {d}"));
                }
            }
            None
        }
        (Err(eo), Err(er)) if format!("{eo:?}") == format!("{er:?}") => None,
        (ro, rr) => Some(format!(
            "tuning outcomes differ: {:?} vs {:?}",
            ro.map(|s| s.makespan),
            rr.map(|s| s.makespan)
        )),
    }
}

/// Double-run the fault path on one schedule: zero-fault identity,
/// then seeded perturbed execution and repair, all diffed bitwise.
/// Fluid (BBSA) schedules don't replay and are skipped.
fn fault_path_divergence(inst: &Instance, s: &Schedule, seed: u64) -> Option<String> {
    let Ok(base) = execute(&inst.dag, &inst.topo, s) else {
        return None;
    };
    let none = match execute_with(&inst.dag, &inst.topo, s, &FaultPlan::none()) {
        Ok(p) => p,
        Err(e) => return Some(format!("execute_with(none) failed where execute ran: {e}")),
    };
    if let Some(d) = diff_executions(&base, &none.execution) {
        return Some(format!("zero-fault replay is not the identity: {d}"));
    }

    let spec = FaultSpec {
        intensity: 0.4,
        horizon: s.makespan,
        kill_proc: true,
        kill_link: true,
    };
    let fseed = seed ^ 0xFA17_5EED;
    let p1 = FaultPlan::seeded(&inst.dag, &inst.topo, &spec, fseed);
    let p2 = FaultPlan::seeded(&inst.dag, &inst.topo, &spec, fseed);
    let run = |plan: &FaultPlan| execute_with(&inst.dag, &inst.topo, s, plan);
    match (run(&p1), run(&p2)) {
        (Ok(e1), Ok(e2)) => {
            if let Some(d) = diff_executions(&e1.execution, &e2.execution) {
                return Some(format!("perturbed replay diverged: {d}"));
            }
            if e1.infeasible != e2.infeasible {
                return Some("perturbed replay infeasibility sets diverged".into());
            }
        }
        (r1, r2) => {
            return Some(format!(
                "perturbed replay outcomes differ: {:?} vs {:?}",
                r1.map(|p| p.realized_makespan()),
                r2.map(|p| p.realized_makespan())
            ))
        }
    }
    match (
        repair(&inst.dag, &inst.topo, s, &p1),
        repair(&inst.dag, &inst.topo, s, &p2),
    ) {
        (Ok(r1), Ok(r2)) => {
            if let Some(d) = diff_schedules(&r1.schedule, &r2.schedule) {
                return Some(format!("repair diverged: {d}"));
            }
            if r1.moved_tasks != r2.moved_tasks || r1.used_fallback != r2.used_fallback {
                return Some("repair metadata diverged".into());
            }
        }
        (Err(e1), Err(e2)) if format!("{e1}") == format!("{e2}") => {}
        (r1, r2) => {
            return Some(format!(
                "repair outcomes differ: {:?} vs {:?}",
                r1.map(|o| o.schedule.makespan),
                r2.map(|o| o.schedule.makespan)
            ))
        }
    }
    None
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::ba_static()),
        Box::new(ListScheduler::oihsa()),
        Box::new(ListScheduler::oihsa_probing()),
        Box::new(BbsaScheduler::new()),
        Box::new(IdealScheduler::new()),
    ]
}

fn describe(c: &InstanceConfig) -> String {
    format!(
        "{:?} procs={} ccr={} seed={:#x}",
        c.setting, c.processors, c.ccr, c.seed
    )
}

/// Bitwise instance diff: same seeds must regenerate the same DAG and
/// topology before scheduler determinism is even meaningful.
fn diff_instances(a: &Instance, b: &Instance) -> Option<String> {
    if a.dag.task_count() != b.dag.task_count() || a.dag.edge_count() != b.dag.edge_count() {
        return Some(format!(
            "dag shape differs: {}t/{}e vs {}t/{}e",
            a.dag.task_count(),
            a.dag.edge_count(),
            b.dag.task_count(),
            b.dag.edge_count()
        ));
    }
    for t in a.dag.task_ids() {
        if a.dag.weight(t).to_bits() != b.dag.weight(t).to_bits() {
            return Some(format!("weight of task {} differs", t.index()));
        }
    }
    for e in a.dag.edge_ids() {
        if a.dag.cost(e).to_bits() != b.dag.cost(e).to_bits() {
            return Some(format!("cost of edge {} differs", e.index()));
        }
    }
    if a.topo.proc_count() != b.topo.proc_count() || a.topo.link_count() != b.topo.link_count() {
        return Some("topology shape differs".into());
    }
    None
}
