//! Runtime determinism audit (`xtask analyze --determinism`).
//!
//! The L1 lint bans hash-ordered iteration statically; this module is
//! its runtime counterpart. For a grid of seeded instances spanning
//! both speed regimes and several sizes, every scheduler is run
//! **twice on independently regenerated instances** and the two
//! schedules are diffed bit-for-bit: same placements, same routes,
//! same hop times, same makespan. Any divergence means hidden
//! iteration-order (or other ambient) nondeterminism survived the
//! static lints.

use es_core::schedule::{CommPlacement, Schedule, Scheduler};
use es_core::{BbsaScheduler, IdealScheduler, ListScheduler};
use es_workload::{generate, Instance, InstanceConfig, Setting};

/// One observed divergence between two identically seeded runs.
pub struct Divergence {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Instance description (setting / procs / ccr / seed).
    pub instance: String,
    /// What differed.
    pub detail: String,
}

/// Run the audit; returns all divergences found (empty = deterministic).
pub fn audit() -> Vec<Divergence> {
    let mut out = Vec::new();
    let mut cases = 0usize;
    for &setting in &[Setting::Homogeneous, Setting::Heterogeneous] {
        for &(procs, tasks) in &[(4usize, 30usize), (8, 60)] {
            for &ccr in &[0.5f64, 5.0] {
                let seed = 0xA0D1_7000 + cases as u64;
                let config = InstanceConfig::paper(setting, procs, ccr, seed).with_tasks(tasks);
                let a = generate(&config);
                let b = generate(&config);
                if let Some(d) = diff_instances(&a, &b) {
                    out.push(Divergence {
                        scheduler: "workload::generate",
                        instance: describe(&config),
                        detail: d,
                    });
                    continue;
                }
                for scheduler in schedulers() {
                    cases += 1;
                    let run = |inst: &Instance| scheduler.schedule(&inst.dag, &inst.topo);
                    match (run(&a), run(&b)) {
                        (Ok(sa), Ok(sb)) => {
                            if let Some(d) = diff_schedules(&sa, &sb) {
                                out.push(Divergence {
                                    scheduler: scheduler.name(),
                                    instance: describe(&config),
                                    detail: d,
                                });
                            }
                        }
                        (Err(ea), Err(eb)) if format!("{ea:?}") == format!("{eb:?}") => {}
                        (ra, rb) => out.push(Divergence {
                            scheduler: scheduler.name(),
                            instance: describe(&config),
                            detail: format!(
                                "outcomes differ: {:?} vs {:?}",
                                ra.map(|s| s.makespan),
                                rb.map(|s| s.makespan)
                            ),
                        }),
                    }
                }
            }
        }
    }
    out
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::ba_static()),
        Box::new(ListScheduler::oihsa()),
        Box::new(ListScheduler::oihsa_probing()),
        Box::new(BbsaScheduler::new()),
        Box::new(IdealScheduler::new()),
    ]
}

fn describe(c: &InstanceConfig) -> String {
    format!(
        "{:?} procs={} ccr={} seed={:#x}",
        c.setting, c.processors, c.ccr, c.seed
    )
}

/// Bitwise instance diff: same seeds must regenerate the same DAG and
/// topology before scheduler determinism is even meaningful.
fn diff_instances(a: &Instance, b: &Instance) -> Option<String> {
    if a.dag.task_count() != b.dag.task_count() || a.dag.edge_count() != b.dag.edge_count() {
        return Some(format!(
            "dag shape differs: {}t/{}e vs {}t/{}e",
            a.dag.task_count(),
            a.dag.edge_count(),
            b.dag.task_count(),
            b.dag.edge_count()
        ));
    }
    for t in a.dag.task_ids() {
        if a.dag.weight(t).to_bits() != b.dag.weight(t).to_bits() {
            return Some(format!("weight of task {} differs", t.index()));
        }
    }
    for e in a.dag.edge_ids() {
        if a.dag.cost(e).to_bits() != b.dag.cost(e).to_bits() {
            return Some(format!("cost of edge {} differs", e.index()));
        }
    }
    if a.topo.proc_count() != b.topo.proc_count() || a.topo.link_count() != b.topo.link_count() {
        return Some("topology shape differs".into());
    }
    None
}

/// Bitwise schedule diff; `None` when identical.
pub fn diff_schedules(a: &Schedule, b: &Schedule) -> Option<String> {
    if a.algorithm != b.algorithm {
        return Some(format!("algorithm {:?} vs {:?}", a.algorithm, b.algorithm));
    }
    if a.makespan.to_bits() != b.makespan.to_bits() {
        return Some(format!("makespan {} vs {}", a.makespan, b.makespan));
    }
    if a.tasks.len() != b.tasks.len() || a.comms.len() != b.comms.len() {
        return Some("placement counts differ".into());
    }
    for (i, (ta, tb)) in a.tasks.iter().zip(&b.tasks).enumerate() {
        if ta.proc != tb.proc
            || ta.start.to_bits() != tb.start.to_bits()
            || ta.finish.to_bits() != tb.finish.to_bits()
        {
            return Some(format!("task n{i}: {ta:?} vs {tb:?}"));
        }
    }
    for (i, (ca, cb)) in a.comms.iter().zip(&b.comms).enumerate() {
        if !comm_eq(ca, cb) {
            return Some(format!("comm e{i}: {ca:?} vs {cb:?}"));
        }
    }
    None
}

/// Bitwise comm-placement equality (PartialEq would use `==` on f64,
/// which both misses -0.0/0.0 flips and is banned by lint L2).
fn comm_eq(a: &CommPlacement, b: &CommPlacement) -> bool {
    let bits = |x: f64| x.to_bits();
    match (a, b) {
        (CommPlacement::Local, CommPlacement::Local) => true,
        (
            CommPlacement::Slotted {
                route: ra,
                times: ta,
            },
            CommPlacement::Slotted {
                route: rb,
                times: tb,
            },
        ) => {
            ra == rb
                && ta.len() == tb.len()
                && ta
                    .iter()
                    .zip(tb)
                    .all(|(x, y)| bits(x.0) == bits(y.0) && bits(x.1) == bits(y.1))
        }
        (
            CommPlacement::Fluid {
                route: ra,
                flows: fa,
            },
            CommPlacement::Fluid {
                route: rb,
                flows: fb,
            },
        ) => {
            ra == rb
                && fa.len() == fb.len()
                && fa.iter().zip(fb).all(|(x, y)| {
                    x.pieces.len() == y.pieces.len()
                        && x.pieces.iter().zip(&y.pieces).all(|(p, q)| {
                            bits(p.start) == bits(q.start)
                                && bits(p.end) == bits(q.end)
                                && bits(p.rate) == bits(q.rate)
                        })
                })
        }
        (
            CommPlacement::Ideal {
                delay: da,
                arrival: aa,
            },
            CommPlacement::Ideal {
                delay: db,
                arrival: ab,
            },
        ) => bits(*da) == bits(*db) && bits(*aa) == bits(*ab),
        _ => false,
    }
}
