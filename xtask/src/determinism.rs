//! Runtime determinism audit (`xtask analyze --determinism`).
//!
//! The L1 lint bans hash-ordered iteration statically; this module is
//! its runtime counterpart. For a grid of seeded instances spanning
//! both speed regimes and several sizes, every scheduler is run
//! **twice on independently regenerated instances** and the two
//! schedules are diffed bit-for-bit: same placements, same routes,
//! same hop times, same makespan. Any divergence means hidden
//! iteration-order (or other ambient) nondeterminism survived the
//! static lints.
//!
//! The fault path gets the same treatment: for every schedule that
//! replays (all but BBSA's fluid model) the audit checks that
//! `execute_with` under [`es_core::FaultPlan::none`] reproduces
//! `execute` bit for bit, then builds the same seeded fault plan
//! twice, replays under it twice, and repairs under it twice, diffing
//! every derived time and the repaired schedule bitwise.

use es_core::exec::Execution;
use es_core::schedule::{CommPlacement, Schedule, Scheduler};
use es_core::{
    execute, execute_with, repair, BbsaScheduler, FaultPlan, FaultSpec, IdealScheduler,
    ListScheduler,
};
use es_workload::{generate, Instance, InstanceConfig, Setting};

/// One observed divergence between two identically seeded runs.
pub struct Divergence {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Instance description (setting / procs / ccr / seed).
    pub instance: String,
    /// What differed.
    pub detail: String,
}

/// Run the audit; returns all divergences found (empty = deterministic).
pub fn audit() -> Vec<Divergence> {
    let mut out = Vec::new();
    let mut cases = 0usize;
    for &setting in &[Setting::Homogeneous, Setting::Heterogeneous] {
        for &(procs, tasks) in &[(4usize, 30usize), (8, 60)] {
            for &ccr in &[0.5f64, 5.0] {
                let seed = 0xA0D1_7000 + cases as u64;
                let config = InstanceConfig::paper(setting, procs, ccr, seed).with_tasks(tasks);
                let a = generate(&config);
                let b = generate(&config);
                if let Some(d) = diff_instances(&a, &b) {
                    out.push(Divergence {
                        scheduler: "workload::generate",
                        instance: describe(&config),
                        detail: d,
                    });
                    continue;
                }
                for scheduler in schedulers() {
                    cases += 1;
                    let run = |inst: &Instance| scheduler.schedule(&inst.dag, &inst.topo);
                    match (run(&a), run(&b)) {
                        (Ok(sa), Ok(sb)) => {
                            if let Some(d) = diff_schedules(&sa, &sb) {
                                out.push(Divergence {
                                    scheduler: scheduler.name(),
                                    instance: describe(&config),
                                    detail: d,
                                });
                            } else if let Some(d) = fault_path_divergence(&a, &sa, seed) {
                                out.push(Divergence {
                                    scheduler: scheduler.name(),
                                    instance: describe(&config),
                                    detail: d,
                                });
                            }
                        }
                        (Err(ea), Err(eb)) if format!("{ea:?}") == format!("{eb:?}") => {}
                        (ra, rb) => out.push(Divergence {
                            scheduler: scheduler.name(),
                            instance: describe(&config),
                            detail: format!(
                                "outcomes differ: {:?} vs {:?}",
                                ra.map(|s| s.makespan),
                                rb.map(|s| s.makespan)
                            ),
                        }),
                    }
                }
            }
        }
    }
    out
}

/// Double-run the fault path on one schedule: zero-fault identity,
/// then seeded perturbed execution and repair, all diffed bitwise.
/// Fluid (BBSA) schedules don't replay and are skipped.
fn fault_path_divergence(inst: &Instance, s: &Schedule, seed: u64) -> Option<String> {
    let Ok(base) = execute(&inst.dag, &inst.topo, s) else {
        return None;
    };
    let none = match execute_with(&inst.dag, &inst.topo, s, &FaultPlan::none()) {
        Ok(p) => p,
        Err(e) => return Some(format!("execute_with(none) failed where execute ran: {e}")),
    };
    if let Some(d) = diff_executions(&base, &none.execution) {
        return Some(format!("zero-fault replay is not the identity: {d}"));
    }

    let spec = FaultSpec {
        intensity: 0.4,
        horizon: s.makespan,
        kill_proc: true,
        kill_link: true,
    };
    let fseed = seed ^ 0xFA17_5EED;
    let p1 = FaultPlan::seeded(&inst.dag, &inst.topo, &spec, fseed);
    let p2 = FaultPlan::seeded(&inst.dag, &inst.topo, &spec, fseed);
    let run = |plan: &FaultPlan| execute_with(&inst.dag, &inst.topo, s, plan);
    match (run(&p1), run(&p2)) {
        (Ok(e1), Ok(e2)) => {
            if let Some(d) = diff_executions(&e1.execution, &e2.execution) {
                return Some(format!("perturbed replay diverged: {d}"));
            }
            if e1.infeasible != e2.infeasible {
                return Some("perturbed replay infeasibility sets diverged".into());
            }
        }
        (r1, r2) => {
            return Some(format!(
                "perturbed replay outcomes differ: {:?} vs {:?}",
                r1.map(|p| p.realized_makespan()),
                r2.map(|p| p.realized_makespan())
            ))
        }
    }
    match (
        repair(&inst.dag, &inst.topo, s, &p1),
        repair(&inst.dag, &inst.topo, s, &p2),
    ) {
        (Ok(r1), Ok(r2)) => {
            if let Some(d) = diff_schedules(&r1.schedule, &r2.schedule) {
                return Some(format!("repair diverged: {d}"));
            }
            if r1.moved_tasks != r2.moved_tasks || r1.used_fallback != r2.used_fallback {
                return Some("repair metadata diverged".into());
            }
        }
        (Err(e1), Err(e2)) if format!("{e1}") == format!("{e2}") => {}
        (r1, r2) => {
            return Some(format!(
                "repair outcomes differ: {:?} vs {:?}",
                r1.map(|o| o.schedule.makespan),
                r2.map(|o| o.schedule.makespan)
            ))
        }
    }
    None
}

/// Bitwise execution diff; `None` when identical.
fn diff_executions(a: &Execution, b: &Execution) -> Option<String> {
    if a.makespan.to_bits() != b.makespan.to_bits() {
        return Some(format!("makespan {} vs {}", a.makespan, b.makespan));
    }
    for (i, (ta, tb)) in a.tasks.iter().zip(&b.tasks).enumerate() {
        if ta.proc != tb.proc
            || ta.start.to_bits() != tb.start.to_bits()
            || ta.finish.to_bits() != tb.finish.to_bits()
        {
            return Some(format!("derived task n{i}: {ta:?} vs {tb:?}"));
        }
    }
    for (i, (ha, hb)) in a.hop_times.iter().zip(&b.hop_times).enumerate() {
        let same = ha.len() == hb.len()
            && ha
                .iter()
                .zip(hb)
                .all(|(x, y)| x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits());
        if !same {
            return Some(format!("derived hop times of e{i} differ"));
        }
    }
    None
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::ba_static()),
        Box::new(ListScheduler::oihsa()),
        Box::new(ListScheduler::oihsa_probing()),
        Box::new(BbsaScheduler::new()),
        Box::new(IdealScheduler::new()),
    ]
}

fn describe(c: &InstanceConfig) -> String {
    format!(
        "{:?} procs={} ccr={} seed={:#x}",
        c.setting, c.processors, c.ccr, c.seed
    )
}

/// Bitwise instance diff: same seeds must regenerate the same DAG and
/// topology before scheduler determinism is even meaningful.
fn diff_instances(a: &Instance, b: &Instance) -> Option<String> {
    if a.dag.task_count() != b.dag.task_count() || a.dag.edge_count() != b.dag.edge_count() {
        return Some(format!(
            "dag shape differs: {}t/{}e vs {}t/{}e",
            a.dag.task_count(),
            a.dag.edge_count(),
            b.dag.task_count(),
            b.dag.edge_count()
        ));
    }
    for t in a.dag.task_ids() {
        if a.dag.weight(t).to_bits() != b.dag.weight(t).to_bits() {
            return Some(format!("weight of task {} differs", t.index()));
        }
    }
    for e in a.dag.edge_ids() {
        if a.dag.cost(e).to_bits() != b.dag.cost(e).to_bits() {
            return Some(format!("cost of edge {} differs", e.index()));
        }
    }
    if a.topo.proc_count() != b.topo.proc_count() || a.topo.link_count() != b.topo.link_count() {
        return Some("topology shape differs".into());
    }
    None
}

/// Bitwise schedule diff; `None` when identical.
pub fn diff_schedules(a: &Schedule, b: &Schedule) -> Option<String> {
    if a.algorithm != b.algorithm {
        return Some(format!("algorithm {:?} vs {:?}", a.algorithm, b.algorithm));
    }
    if a.makespan.to_bits() != b.makespan.to_bits() {
        return Some(format!("makespan {} vs {}", a.makespan, b.makespan));
    }
    if a.tasks.len() != b.tasks.len() || a.comms.len() != b.comms.len() {
        return Some("placement counts differ".into());
    }
    for (i, (ta, tb)) in a.tasks.iter().zip(&b.tasks).enumerate() {
        if ta.proc != tb.proc
            || ta.start.to_bits() != tb.start.to_bits()
            || ta.finish.to_bits() != tb.finish.to_bits()
        {
            return Some(format!("task n{i}: {ta:?} vs {tb:?}"));
        }
    }
    for (i, (ca, cb)) in a.comms.iter().zip(&b.comms).enumerate() {
        if !comm_eq(ca, cb) {
            return Some(format!("comm e{i}: {ca:?} vs {cb:?}"));
        }
    }
    None
}

/// Bitwise comm-placement equality (PartialEq would use `==` on f64,
/// which both misses -0.0/0.0 flips and is banned by lint L2).
fn comm_eq(a: &CommPlacement, b: &CommPlacement) -> bool {
    let bits = |x: f64| x.to_bits();
    match (a, b) {
        (CommPlacement::Local, CommPlacement::Local) => true,
        (
            CommPlacement::Slotted {
                route: ra,
                times: ta,
            },
            CommPlacement::Slotted {
                route: rb,
                times: tb,
            },
        ) => {
            ra == rb
                && ta.len() == tb.len()
                && ta
                    .iter()
                    .zip(tb)
                    .all(|(x, y)| bits(x.0) == bits(y.0) && bits(x.1) == bits(y.1))
        }
        (
            CommPlacement::Fluid {
                route: ra,
                flows: fa,
            },
            CommPlacement::Fluid {
                route: rb,
                flows: fb,
            },
        ) => {
            ra == rb
                && fa.len() == fb.len()
                && fa.iter().zip(fb).all(|(x, y)| {
                    x.pieces.len() == y.pieces.len()
                        && x.pieces.iter().zip(&y.pieces).all(|(p, q)| {
                            bits(p.start) == bits(q.start)
                                && bits(p.end) == bits(q.end)
                                && bits(p.rate) == bits(q.rate)
                        })
                })
        }
        (
            CommPlacement::Ideal {
                delay: da,
                arrival: aa,
            },
            CommPlacement::Ideal {
                delay: db,
                arrival: ab,
            },
        ) => bits(*da) == bits(*db) && bits(*aa) == bits(*ab),
        _ => false,
    }
}
