//! Workspace task runner. See `analyze` / `bench` module docs; usage:
//!
//! ```text
//! cargo run -p xtask -- analyze [--determinism] [--json] [--root DIR]
//!                               [--suppressions PATH]
//! cargo run -p xtask --release -- bench [--fast] [--check] [--out PATH]
//!                                       [--baseline PATH]
//! ```

use xtask::{analyze, bench};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let code = analyze::run(&args[1..]);
            std::process::exit(code);
        }
        Some("bench") => {
            let code = bench::run(&args[1..]);
            std::process::exit(code);
        }
        Some("help" | "--help" | "-h") | None => {
            println!("{USAGE}");
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "\
xtask — workspace static analysis (DESIGN.md §8, §12) and perf harness (§10)

USAGE:
  cargo run -p xtask -- analyze [options]
  cargo run -p xtask --release -- bench [options]

ANALYZE OPTIONS:
  --determinism   also run each scheduler twice on seeded instances and
                  diff the full schedules (slow; runs the L1 lint's
                  runtime counterpart), plus optimized-vs-reference
                  tuning double-runs
  --json          emit one `es-analyze-v1` JSON document instead of
                  human text (pass registry, findings, suppressions,
                  summary)
  --root DIR      workspace root to analyze (default: auto-detected)
  --suppressions PATH
                  suppression file (default: <root>/analyze-suppressions.txt;
                  entries: `ES-A0xx <file>[:<line>] -- <justification>`)

BENCH OPTIONS:
  --fast          CI smoke subset (small instances, 1 rep)
  --check         exit non-zero if optimized/parallel vs reference
                  schedules or executions are not bitwise identical
  --out PATH      output file (default: BENCH_PR5.json)
  --baseline PATH previous BENCH_PR*.json to compare against (default:
                  latest committed BENCH_PR*.json besides the output);
                  any matched paper-family row with baseline opt_ms
                  >= 10ms whose best speedup (opt or par lane) drops
                  >10% vs the baseline's exits non-zero
  --criterion     also run the criterion suite via `cargo bench`

TOKEN LINTS (ES-A001..004):
  L1  no HashMap/HashSet in scheduler/link-scheduler hot paths
      (nondeterministic iteration order changes tie-breaking)
  L2  no bare ==/!= against f64 literals outside es_linksched::time
      (use the EPS comparison helpers)
  L3  every diagnostic code constructed in es-core must be documented
      in DESIGN.md's diagnostics table
  L4  no per-candidate allocations (`Vec::new`, `.collect()`) inside
      the probe/repair loop bodies of list.rs and repair.rs
      (hoist buffers out of the loop and reuse — clear-don't-drop)

SYNTAX-AWARE PASSES (DESIGN.md §12):
  N1  ES-A010  nondeterminism taint: no hash iteration, wall clocks,
               thread ids, pointer-as-int, or unordered float
               reductions reachable from schedule/execute/repair
  N2  ES-A020  epoch discipline: SlotQueue mutation sites pair with
               touch()/cache invalidation (route-cache soundness);
      ES-A021  LinkModel mutator impls in es-linksched bump the epoch
               or delegate to a mutator that does
  N3  ES-A030  twin drift: TWIN-delimited reference/optimized regions
               stay token-identical modulo declared divergences
  N4  ES-A040  unsafe audit: SAFETY comments + DESIGN.md registry,
               cross-checked both ways
  N5  ES-A050  lock discipline in es-runner + es-serve: no lock
               across dispatch/park, no nested acquisition";
