//! End-to-end performance harness (`cargo run -p xtask -- bench`).
//!
//! Runs the slotted schedulers over a sweep of paper-like instances
//! three times — with the reference [`Tuning`], the optimized one, and
//! the optimized one with speculative parallel probing
//! (`ProbeParallelism::Workers(threads)`) — interleaved in a single
//! process, and emits a machine-readable `BENCH_PR<n>.json` with
//! per-case wall times, scheduling throughput, and route-cache hit
//! rates.
//!
//! Correctness comes first: before any timing, every case's optimized,
//! parallel-probe, and reference schedules are diffed bitwise
//! (placements, routes, slot times) and their zero-fault executions
//! likewise; `--check` turns any divergence into a non-zero exit, which
//! is what the CI `bench-smoke` job gates on. The measured speedup is
//! reported, never hard-gated against wall-clock — with one exception:
//! when a baseline file is available (`--baseline`, default: the
//! latest committed `BENCH_PR*.json`), any matched **paper-family**
//! row whose best ref-relative speedup (across the opt and par lanes)
//! drops by more than 10% versus that baseline exits non-zero (the
//! in-process ratio is stable under machine-load drift, unlike
//! absolute times; EXPERIMENTS.md, "Reading BENCH_*.json" and
//! "Baseline comparison").

use es_core::diff::{diff_executions, diff_schedules};
use es_core::{
    execute, reset_route_cache_stats, route_cache_stats, BbsaScheduler, LinkBackend, ListConfig,
    ListScheduler, ProbeParallelism, Scheduler, Tuning,
};
use es_runner::Threads;
use es_workload::suite::{Kernel, Platform};
use es_workload::{cell_seed, generate, scale_to_ccr, InstanceConfig, Setting};
use std::time::Instant;

/// One sweep point: a fully instantiated (workload, platform) pair.
struct SweepPoint {
    /// Workload family ("paper" for the random layered sweep, kernel
    /// names for the structured suite).
    family: &'static str,
    /// Platform description.
    platform: String,
    procs: usize,
    ccr: f64,
    tasks: usize,
    seed: u64,
    dag: es_dag::TaskGraph,
    topo: es_net::Topology,
}

/// One measured (scheduler, instance) case.
struct CaseResult {
    scheduler: &'static str,
    family: &'static str,
    platform: String,
    procs: usize,
    ccr: f64,
    tasks: usize,
    seed: u64,
    reps: usize,
    ref_ms: f64,
    opt_ms: f64,
    par_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    identical: bool,
    detail: Option<String>,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        if self.opt_ms > 0.0 {
            self.ref_ms / self.opt_ms
        } else {
            0.0
        }
    }

    fn speedup_par(&self) -> f64 {
        if self.par_ms > 0.0 {
            self.ref_ms / self.par_ms
        } else {
            0.0
        }
    }

    /// Task-placement decisions per second under each tuning.
    fn decisions_per_sec(&self, ms: f64) -> f64 {
        if ms > 0.0 {
            (self.tasks * self.reps) as f64 / (ms / 1000.0)
        } else {
            0.0
        }
    }
}

/// One (link backend, native scheduler) timing row on a paper-family
/// sweep point. These rows carry their own field names (`sched_ms`,
/// not `ref_ms`/`opt_ms`) precisely so [`load_baseline`] of any future
/// file skips them — the main-case baseline gate is unaffected.
struct BackendCase {
    backend: String,
    scheduler: &'static str,
    family: &'static str,
    platform: String,
    procs: usize,
    ccr: f64,
    tasks: usize,
    reps: usize,
    sched_ms: f64,
    makespan: f64,
}

/// Time each pluggable link backend's native scheduler on one sweep
/// point: the backend transforms the instance once (`prepare`), then
/// `reps` scheduling runs are timed — OIHSA (with the backend's
/// switching adaptation) on the slot-family backends, BBSA on fluid.
fn measure_backends(point: &SweepPoint, reps: usize) -> Vec<BackendCase> {
    let mut out = Vec::new();
    for backend in LinkBackend::all() {
        let (dag, topo) = backend.prepare(&point.dag, &point.topo);
        let roster: Vec<(&'static str, Box<dyn Scheduler>)> = match backend {
            LinkBackend::Fluid => vec![("bbsa", Box::new(BbsaScheduler::new()))],
            LinkBackend::SlotQueue | LinkBackend::StoreForward(_) => vec![(
                "oihsa",
                Box::new(ListScheduler::with_config(
                    backend.adapt(ListConfig::oihsa()),
                )),
            )],
        };
        for (name, sched) in roster {
            let mut sched_ms = 0.0;
            let mut makespan = 0.0;
            for _ in 0..reps {
                let t = Instant::now();
                let s = sched
                    .schedule(&dag, &topo)
                    .expect("bench instance schedulable on every backend");
                sched_ms += t.elapsed().as_secs_f64() * 1000.0;
                makespan = s.makespan;
            }
            out.push(BackendCase {
                backend: backend.to_string(),
                scheduler: name,
                family: point.family,
                platform: point.platform.clone(),
                procs: point.procs,
                ccr: point.ccr,
                tasks: point.tasks,
                reps,
                sched_ms,
                makespan,
            });
        }
    }
    out
}

/// One comparable row loaded from a previous `BENCH_PR*.json`.
struct BaselineRow {
    scheduler: String,
    family: String,
    platform: String,
    procs: usize,
    ccr: f64,
    ref_ms: f64,
    opt_ms: f64,
}

impl BaselineRow {
    fn speedup(&self) -> f64 {
        if self.opt_ms > 0.0 {
            self.ref_ms / self.opt_ms
        } else {
            0.0
        }
    }

    fn matches(&self, c: &CaseResult) -> bool {
        self.scheduler == c.scheduler
            && self.family == c.family
            && self.platform == c.platform
            && self.procs == c.procs
            && (self.ccr - c.ccr).abs() < 1e-9
    }
}

/// Latest committed `BENCH_PR*.json` in the working directory (highest
/// PR number), excluding this run's own output file.
fn default_baseline(out_path: &str) -> Option<String> {
    let mut best: Option<(u32, String)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == out_path {
            continue;
        }
        let Some(num) = name
            .strip_prefix("BENCH_PR")
            .and_then(|r| r.strip_suffix(".json"))
        else {
            continue;
        };
        if let Ok(n) = num.parse::<u32>() {
            if best.as_ref().is_none_or(|&(b, _)| n > b) {
                best = Some((n, name));
            }
        }
    }
    best.map(|(_, name)| name)
}

fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let i = obj.find(&pat)? + pat.len();
    let rest = &obj[i..];
    Some(rest[..rest.find('"')?].to_string())
}

fn json_num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let i = obj.find(&pat)? + pat.len();
    let rest = &obj[i..];
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// Parse the `cases` array of a bench JSON written by [`render_json`]
/// (any PR's schema — only the row-identity, `ref_ms`, and `opt_ms`
/// fields are read, so older baselines without `par_ms` load fine).
#[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
fn load_baseline(path: &str) -> Result<Vec<BaselineRow>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let cases_at = text
        .find("\"cases\"")
        .ok_or_else(|| format!("baseline {path}: no \"cases\" array"))?;
    let mut rows = Vec::new();
    let mut rest = &text[cases_at..];
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let obj = &rest[open..=open + close];
        if let (
            Some(scheduler),
            Some(family),
            Some(platform),
            Some(procs),
            Some(ccr),
            Some(ref_ms),
            Some(opt_ms),
        ) = (
            json_str_field(obj, "scheduler"),
            json_str_field(obj, "family"),
            json_str_field(obj, "platform"),
            json_num_field(obj, "procs"),
            json_num_field(obj, "ccr"),
            json_num_field(obj, "ref_ms"),
            json_num_field(obj, "opt_ms"),
        ) {
            rows.push(BaselineRow {
                scheduler,
                family,
                platform,
                procs: procs as usize,
                ccr,
                ref_ms,
                opt_ms,
            });
        }
        rest = &rest[open + close + 1..];
    }
    if rows.is_empty() {
        return Err(format!("baseline {path}: no parseable case rows"));
    }
    Ok(rows)
}

pub fn run(args: &[String]) -> i32 {
    let mut fast = false;
    let mut check = false;
    let mut criterion = false;
    let mut out_path = String::from("BENCH_PR10.json");
    let mut baseline_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => fast = true,
            "--check" => check = true,
            "--criterion" => criterion = true,
            "--out" => {
                i += 1;
                if let Some(p) = args.get(i) {
                    out_path.clone_from(p);
                } else {
                    eprintln!("--out requires a path");
                    return 2;
                }
            }
            "--baseline" => {
                i += 1;
                if let Some(p) = args.get(i) {
                    baseline_path = Some(p.clone());
                } else {
                    eprintln!("--baseline requires a path");
                    return 2;
                }
            }
            other => {
                eprintln!("unknown bench option `{other}`");
                return 2;
            }
        }
        i += 1;
    }
    let baseline_path = baseline_path.or_else(|| default_baseline(&out_path));
    let baseline = if let Some(p) = &baseline_path {
        match load_baseline(p) {
            Ok(rows) => {
                println!("baseline: {p} ({} rows)", rows.len());
                rows
            }
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    } else {
        println!("baseline: none found (no BENCH_PR*.json besides the output)");
        Vec::new()
    };
    let threads = Threads::resolve().get();

    let (points, reps) = sweep(fast);
    let configs = [
        ListConfig::ba(),
        ListConfig::ba_static(),
        ListConfig::oihsa(),
        ListConfig::oihsa_probing(),
    ];

    let mut cases: Vec<CaseResult> = Vec::new();
    for point in &points {
        for cfg in configs {
            cases.push(measure(point, cfg, reps, threads));
        }
    }
    // Per-backend rows on the paper-family points only: enough to
    // compare the link models without doubling the sweep's cost.
    let mut backend_cases: Vec<BackendCase> = Vec::new();
    for point in points.iter().filter(|p| p.family == "paper") {
        backend_cases.extend(measure_backends(point, reps));
    }

    let all_identical = cases.iter().all(|c| c.identical);
    let total_ref: f64 = cases.iter().map(|c| c.ref_ms).sum();
    let total_opt: f64 = cases.iter().map(|c| c.opt_ms).sum();
    let total_par: f64 = cases.iter().map(|c| c.par_ms).sum();
    let overall = if total_opt > 0.0 {
        total_ref / total_opt
    } else {
        0.0
    };
    let hits: u64 = cases.iter().map(|c| c.cache_hits).sum();
    let misses: u64 = cases.iter().map(|c| c.cache_misses).sum();
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    let json = render_json(
        &cases,
        &backend_cases,
        fast,
        reps,
        threads,
        baseline_path.as_deref(),
        all_identical,
        total_ref,
        total_opt,
        total_par,
        overall,
        hit_rate,
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("cannot write {out_path}: {e}");
        return 1;
    }

    // Per-row baseline comparison. The printed ratio is baseline
    // opt_ms over this run's opt_ms (wall-clock, >1 = faster now); the
    // *gate* compares each row's best ref-relative speedup across the
    // supported fast tunings (opt and par) against the baseline's,
    // because absolute wall times drift with machine load between
    // sessions while the interleaved in-process ratio isolates whether
    // this PR lost the optimization trajectory. Paper-family rows
    // whose best speedup drops >10% are hard failures; rows under
    // GATE_FLOOR_MS in the baseline are scheduler-jitter noise
    // (EXPERIMENTS.md: "BA-static rows are sub-millisecond and noisy —
    // ignore their ratios") and are only reported, never gated. Rows
    // with no matching baseline entry (e.g. --fast subset vs a full
    // baseline) are skipped.
    const GATE_FLOOR_MS: f64 = 10.0;
    let mut regressions: Vec<String> = Vec::new();
    let mut matched = 0usize;
    for c in &cases {
        let vs_base = baseline.iter().find(|r| r.matches(c)).map(|r| {
            matched += 1;
            let ratio = if c.opt_ms > 0.0 {
                r.opt_ms / c.opt_ms
            } else {
                0.0
            };
            let best = c.speedup().max(c.speedup_par());
            if c.family == "paper" && r.opt_ms >= GATE_FLOOR_MS && best < r.speedup() * 0.90 {
                regressions.push(format!(
                    "{} {} {} procs={} ccr={}: best speedup x{:.2} (opt x{:.2}, par x{:.2}) \
                     vs baseline x{:.2}",
                    c.scheduler,
                    c.family,
                    c.platform,
                    c.procs,
                    c.ccr,
                    best,
                    c.speedup(),
                    c.speedup_par(),
                    r.speedup(),
                ));
            }
            ratio
        });
        println!(
            "{:14} {:14} {:12} procs={:<2} ccr={:<4} tasks={:<4} ref {:8.2}ms opt {:8.2}ms x{:.2} par {:8.2}ms x{:.2} hit-rate {:.0}% {}{}",
            c.scheduler,
            c.family,
            c.platform,
            c.procs,
            c.ccr,
            c.tasks,
            c.ref_ms,
            c.opt_ms,
            c.speedup(),
            c.par_ms,
            c.speedup_par(),
            100.0 * c.cache_hits as f64 / (c.cache_hits + c.cache_misses).max(1) as f64,
            if c.identical { "ok" } else { "DIVERGED" },
            match vs_base {
                Some(r) => format!(" vs-baseline x{r:.2}"),
                None if baseline.is_empty() => String::new(),
                None => " (no baseline row)".to_string(),
            },
        );
        if let Some(d) = &c.detail {
            println!("    {d}");
        }
    }
    for b in &backend_cases {
        println!(
            "backend {:10} {:6} {:14} {:12} procs={:<2} ccr={:<4} tasks={:<4} \
             sched {:8.2}ms makespan {:.3}",
            b.backend,
            b.scheduler,
            b.family,
            b.platform,
            b.procs,
            b.ccr,
            b.tasks,
            b.sched_ms,
            b.makespan,
        );
    }
    println!(
        "\ntotal: ref {total_ref:.1}ms opt {total_opt:.1}ms par {total_par:.1}ms \
         (threads={threads}) speedup x{overall:.2}; \
         route-cache hit rate {:.1}%; identity {}",
        hit_rate * 100.0,
        if all_identical { "ok" } else { "FAILED" },
    );
    if !baseline.is_empty() {
        println!(
            "baseline match: {matched}/{} rows compared against {}",
            cases.len(),
            baseline_path.as_deref().unwrap_or("?"),
        );
    }
    println!("wrote {out_path}");

    if criterion {
        println!("\nrunning criterion suite (cargo bench -p es-bench)...");
        let status = std::process::Command::new("cargo")
            .args(["bench", "-p", "es-bench"])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("criterion suite failed: {s}");
                if check {
                    return 1;
                }
            }
            Err(e) => {
                eprintln!("cannot spawn cargo bench: {e}");
                if check {
                    return 1;
                }
            }
        }
    }

    if check && !all_identical {
        eprintln!("bench --check: differential identity FAILED");
        return 1;
    }
    if check && !baseline.is_empty() && matched == 0 {
        eprintln!(
            "bench --check: baseline {} matched 0 of {} rows — the regression gate \
             is inert; keep the fast sweep a subset of the committed full grid",
            baseline_path.as_deref().unwrap_or("?"),
            cases.len(),
        );
        return 1;
    }
    if !regressions.is_empty() {
        eprintln!("\nbench: paper-family rows regressed >10% vs baseline:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        return 1;
    }
    0
}

/// The sweep grid: the paper's random layered DAGs on switched WANs
/// plus structured kernels from the suite, spanning low and high CCR
/// and both speed regimes. Full mode is the committed `BENCH_PR*.json`
/// trajectory; fast mode (the CI smoke subset) reuses a strict subset
/// of the full grid's points at `reps = 1` so every fast row matches a
/// committed full-baseline row — which is what keeps the `--check`
/// regression gate live in CI instead of silently comparing nothing.
fn sweep(fast: bool) -> (Vec<SweepPoint>, usize) {
    let mut points = Vec::new();
    let paper = |setting: Setting, procs: usize, ccr: f64, tasks: usize| {
        let seed = cell_seed(0xBE4C_2404, setting, procs, ccr, 0);
        let inst = generate(&InstanceConfig::paper(setting, procs, ccr, seed).with_tasks(tasks));
        SweepPoint {
            family: "paper",
            platform: format!("{setting:?}"),
            procs,
            ccr,
            tasks: inst.dag.task_count(),
            seed,
            dag: inst.dag,
            topo: inst.topo,
        }
    };
    let kernel = |k: Kernel, platform: Platform, procs: usize, ccr: f64, tasks: usize| {
        let seed = cell_seed(0x5EED_04B1, Setting::Heterogeneous, procs, ccr, 0);
        let topo = platform.instantiate(procs, seed);
        let raw = k.instantiate(tasks);
        let dag = scale_to_ccr(&raw, ccr, topo.mean_proc_speed(), topo.mean_link_speed());
        SweepPoint {
            family: k.name(),
            platform: platform.name().to_string(),
            procs,
            ccr,
            tasks: dag.task_count(),
            seed,
            dag,
            topo,
        }
    };
    if fast {
        points.push(paper(Setting::Homogeneous, 16, 2.0, 150));
        points.push(paper(Setting::Heterogeneous, 32, 8.0, 150));
        points.push(kernel(
            Kernel::ForkJoin,
            Platform::WanHeterogeneous,
            32,
            8.0,
            150,
        ));
        (points, 1)
    } else {
        points.push(paper(Setting::Homogeneous, 16, 2.0, 150));
        points.push(paper(Setting::Heterogeneous, 32, 8.0, 150));
        points.push(kernel(
            Kernel::ForkJoin,
            Platform::WanHeterogeneous,
            32,
            8.0,
            150,
        ));
        points.push(kernel(
            Kernel::DivideConquer,
            Platform::WanHomogeneous,
            32,
            8.0,
            150,
        ));
        points.push(kernel(
            Kernel::GaussElim,
            Platform::WanHeterogeneous,
            16,
            5.0,
            150,
        ));
        points.push(kernel(Kernel::Stencil, Platform::FatTree, 16, 5.0, 150));
        (points, 5)
    }
}

/// Minimum wall time each lane should accumulate per case; rows whose
/// single run is small get proportionally more reps (up to
/// [`MAX_REPS`]) so their ratios are statistics, not jitter.
const LANE_TARGET_MS: f64 = 120.0;

/// Upper bound on the adaptive rep count per case.
const MAX_REPS: usize = 41;

/// Measure one (scheduler, instance) case: identity gate first (the
/// reference, optimized, and parallel-probe tunings must agree bit for
/// bit), then interleaved ref/opt/par timed runs — at least the
/// requested `reps`, scaled up for small rows (see [`LANE_TARGET_MS`])
/// and reported as the per-lane median x reps.
fn measure(point: &SweepPoint, cfg: ListConfig, reps: usize, threads: usize) -> CaseResult {
    let par_tuning = Tuning {
        parallel_probe: ProbeParallelism::Workers(threads),
        ..Tuning::optimized()
    };
    let run = |tuning: Tuning| {
        ListScheduler::with_config(ListConfig { tuning, ..cfg }).schedule(&point.dag, &point.topo)
    };

    // Identity gate (doubles as warmup).
    let gate = |a: Result<es_core::Schedule, es_core::SchedError>,
                b: Result<es_core::Schedule, es_core::SchedError>,
                label: &str|
     -> (bool, Option<String>) {
        match (a, b) {
            (Ok(opt), Ok(refr)) => {
                if let Some(d) = diff_schedules(&opt, &refr) {
                    (false, Some(format!("{label} schedule diverged: {d}")))
                } else {
                    match (
                        execute(&point.dag, &point.topo, &opt),
                        execute(&point.dag, &point.topo, &refr),
                    ) {
                        (Ok(eo), Ok(er)) => match diff_executions(&eo, &er) {
                            Some(d) => (false, Some(format!("{label} execution diverged: {d}"))),
                            None => (true, None),
                        },
                        (Err(a), Err(b)) if format!("{a:?}") == format!("{b:?}") => (true, None),
                        (a, b) => (
                            false,
                            Some(format!(
                                "{label} execution outcomes differ: {:?} vs {:?}",
                                a.map(|e| e.makespan),
                                b.map(|e| e.makespan)
                            )),
                        ),
                    }
                }
            }
            (Err(a), Err(b)) if format!("{a:?}") == format!("{b:?}") => {
                (true, Some(format!("both tunings error ({label}): {a:?}")))
            }
            (a, b) => (
                false,
                Some(format!(
                    "{label} outcomes differ: {:?} vs {:?}",
                    a.map(|s| s.makespan),
                    b.map(|s| s.makespan)
                )),
            ),
        }
    };
    let (opt_ok, opt_detail) = gate(
        run(Tuning::optimized()),
        run(Tuning::reference()),
        "opt/ref",
    );
    let (par_ok, par_detail) = gate(run(par_tuning), run(Tuning::reference()), "par/ref");
    let identical = opt_ok && par_ok;
    let detail = opt_detail.or(par_detail);

    // Small rows drown in scheduler jitter at a fixed rep count (a
    // sub-millisecond run flips its ratio on one descheduling blip),
    // so scale the rep count until each lane accumulates enough wall
    // time, and report the per-lane median x reps instead of the raw
    // sum — the median is drift-robust and converges on big rows to
    // the same number the sum gave.
    let est_s = {
        let t = Instant::now();
        let _ = run(Tuning::reference());
        t.elapsed().as_secs_f64().max(1e-6)
    };
    let case_reps = reps.max(((LANE_TARGET_MS / 1000.0 / est_s).ceil() as usize).min(MAX_REPS));

    // Interleaved timing: ref, opt, and par alternate so drift hits all
    // three lanes equally, and the starting lane rotates per rep —
    // with a fixed order each lane always runs behind the same
    // predecessor, and the allocator/cache state it inherits skews
    // sub-millisecond rows by several percent in a consistent
    // direction. Rotation cancels that position bias.
    let mut ref_s = Vec::with_capacity(case_reps);
    let mut opt_s = Vec::with_capacity(case_reps);
    let mut par_s = Vec::with_capacity(case_reps);
    let stats_before = {
        reset_route_cache_stats();
        route_cache_stats()
    };
    for r in 0..case_reps {
        for k in 0..3 {
            match (r + k) % 3 {
                0 => {
                    let t = Instant::now();
                    let _ = run(Tuning::reference());
                    ref_s.push(t.elapsed().as_secs_f64());
                }
                1 => {
                    let t = Instant::now();
                    let _ = run(Tuning::optimized());
                    opt_s.push(t.elapsed().as_secs_f64());
                }
                _ => {
                    let t = Instant::now();
                    let _ = run(par_tuning);
                    par_s.push(t.elapsed().as_secs_f64());
                }
            }
        }
    }
    let stats = route_cache_stats();
    // Normalize to `median x requested reps` — the same scale a
    // sum-of-`reps` run reports — so rows stay wall-comparable with
    // committed baselines regardless of how many extra samples the
    // adaptive scaling added.
    let lane_ms = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = v.len();
        let median = if n % 2 == 1 {
            v[n / 2]
        } else {
            f64::midpoint(v[n / 2 - 1], v[n / 2])
        };
        median * reps as f64 * 1000.0
    };

    CaseResult {
        scheduler: cfg.name,
        family: point.family,
        platform: point.platform.clone(),
        procs: point.procs,
        ccr: point.ccr,
        tasks: point.tasks,
        seed: point.seed,
        reps: case_reps,
        ref_ms: lane_ms(ref_s),
        opt_ms: lane_ms(opt_s),
        par_ms: lane_ms(par_s),
        cache_hits: stats.hits - stats_before.hits,
        cache_misses: stats.misses - stats_before.misses,
        identical,
        detail,
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cases: &[CaseResult],
    backend_cases: &[BackendCase],
    fast: bool,
    reps: usize,
    threads: usize,
    baseline: Option<&str>,
    all_identical: bool,
    total_ref: f64,
    total_opt: f64,
    total_par: f64,
    overall: f64,
    hit_rate: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"PR10\",\n");
    s.push_str("  \"schema_version\": 3,\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if fast { "fast" } else { "full" }
    ));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!(
        "  \"baseline\": {},\n",
        baseline.map_or_else(|| "null".to_string(), |b| format!("\"{b}\""))
    ));
    s.push_str(&format!(
        "  \"optimized_build\": {},\n",
        !cfg!(debug_assertions)
    ));
    s.push_str(&format!("  \"identity_ok\": {all_identical},\n"));
    s.push_str(&format!("  \"total_ref_ms\": {total_ref:.3},\n"));
    s.push_str(&format!("  \"total_opt_ms\": {total_opt:.3},\n"));
    s.push_str(&format!("  \"total_par_ms\": {total_par:.3},\n"));
    s.push_str(&format!("  \"overall_speedup\": {overall:.4},\n"));
    s.push_str(&format!("  \"route_cache_hit_rate\": {hit_rate:.4},\n"));
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheduler\": \"{}\", \"family\": \"{}\", \"platform\": \"{}\", \
             \"procs\": {}, \"ccr\": {}, \
             \"tasks\": {}, \"seed\": {}, \"ref_ms\": {:.3}, \"opt_ms\": {:.3}, \
             \"par_ms\": {:.3}, \
             \"speedup\": {:.4}, \"speedup_par\": {:.4}, \"decisions_per_sec_ref\": {:.1}, \
             \"decisions_per_sec_opt\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"identical\": {}}}{}\n",
            c.scheduler,
            c.family,
            c.platform,
            c.procs,
            c.ccr,
            c.tasks,
            c.seed,
            c.ref_ms,
            c.opt_ms,
            c.par_ms,
            c.speedup(),
            c.speedup_par(),
            c.decisions_per_sec(c.ref_ms),
            c.decisions_per_sec(c.opt_ms),
            c.cache_hits,
            c.cache_misses,
            c.identical,
            if i + 1 < cases.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"backend_cases\": [\n");
    for (i, b) in backend_cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"backend\": \"{}\", \"scheduler\": \"{}\", \"family\": \"{}\", \
             \"platform\": \"{}\", \"procs\": {}, \"ccr\": {}, \"tasks\": {}, \
             \"reps\": {}, \"sched_ms\": {:.3}, \"makespan\": {:.4}}}{}\n",
            b.backend,
            b.scheduler,
            b.family,
            b.platform,
            b.procs,
            b.ccr,
            b.tasks,
            b.reps,
            b.sched_ms,
            b.makespan,
            if i + 1 < backend_cases.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
