//! End-to-end performance harness (`cargo run -p xtask -- bench`).
//!
//! Runs the slotted schedulers over a sweep of paper-like instances
//! twice — once with the reference [`Tuning`] and once with the
//! optimized one — interleaved in a single process, and emits a
//! machine-readable `BENCH_PR4.json` with per-case wall times,
//! scheduling throughput, and route-cache hit rates.
//!
//! Correctness comes first: before any timing, every case's optimized
//! and reference schedules are diffed bitwise (placements, routes, slot
//! times) and their zero-fault executions likewise; `--check` turns any
//! divergence into a non-zero exit, which is what the CI `bench-smoke`
//! job gates on. The measured speedup is reported, never gated — CI
//! machines are too noisy for a hard threshold; the committed
//! BENCH_PR4.json records the measured trajectory instead
//! (EXPERIMENTS.md, "Reading BENCH_*.json").

use es_core::diff::{diff_executions, diff_schedules};
use es_core::{
    execute, reset_route_cache_stats, route_cache_stats, ListConfig, ListScheduler, Scheduler,
    Tuning,
};
use es_workload::suite::{Kernel, Platform};
use es_workload::{cell_seed, generate, scale_to_ccr, InstanceConfig, Setting};
use std::time::Instant;

/// One sweep point: a fully instantiated (workload, platform) pair.
struct SweepPoint {
    /// Workload family ("paper" for the random layered sweep, kernel
    /// names for the structured suite).
    family: &'static str,
    /// Platform description.
    platform: String,
    procs: usize,
    ccr: f64,
    tasks: usize,
    seed: u64,
    dag: es_dag::TaskGraph,
    topo: es_net::Topology,
}

/// One measured (scheduler, instance) case.
struct CaseResult {
    scheduler: &'static str,
    family: &'static str,
    platform: String,
    procs: usize,
    ccr: f64,
    tasks: usize,
    seed: u64,
    reps: usize,
    ref_ms: f64,
    opt_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    identical: bool,
    detail: Option<String>,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        if self.opt_ms > 0.0 {
            self.ref_ms / self.opt_ms
        } else {
            0.0
        }
    }

    /// Task-placement decisions per second under each tuning.
    fn decisions_per_sec(&self, ms: f64) -> f64 {
        if ms > 0.0 {
            (self.tasks * self.reps) as f64 / (ms / 1000.0)
        } else {
            0.0
        }
    }
}

pub fn run(args: &[String]) -> i32 {
    let mut fast = false;
    let mut check = false;
    let mut criterion = false;
    let mut out_path = String::from("BENCH_PR4.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => fast = true,
            "--check" => check = true,
            "--criterion" => criterion = true,
            "--out" => {
                i += 1;
                if let Some(p) = args.get(i) {
                    out_path.clone_from(p);
                } else {
                    eprintln!("--out requires a path");
                    return 2;
                }
            }
            other => {
                eprintln!("unknown bench option `{other}`");
                return 2;
            }
        }
        i += 1;
    }

    let (points, reps) = sweep(fast);
    let configs = [
        ListConfig::ba(),
        ListConfig::ba_static(),
        ListConfig::oihsa(),
        ListConfig::oihsa_probing(),
    ];

    let mut cases: Vec<CaseResult> = Vec::new();
    for point in &points {
        for cfg in configs {
            cases.push(measure(point, cfg, reps));
        }
    }

    let all_identical = cases.iter().all(|c| c.identical);
    let total_ref: f64 = cases.iter().map(|c| c.ref_ms).sum();
    let total_opt: f64 = cases.iter().map(|c| c.opt_ms).sum();
    let overall = if total_opt > 0.0 {
        total_ref / total_opt
    } else {
        0.0
    };
    let hits: u64 = cases.iter().map(|c| c.cache_hits).sum();
    let misses: u64 = cases.iter().map(|c| c.cache_misses).sum();
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    let json = render_json(
        &cases,
        fast,
        reps,
        all_identical,
        total_ref,
        total_opt,
        overall,
        hit_rate,
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("cannot write {out_path}: {e}");
        return 1;
    }

    for c in &cases {
        println!(
            "{:14} {:14} {:12} procs={:<2} ccr={:<4} tasks={:<4} ref {:8.2}ms opt {:8.2}ms x{:.2} hit-rate {:.0}% {}",
            c.scheduler,
            c.family,
            c.platform,
            c.procs,
            c.ccr,
            c.tasks,
            c.ref_ms,
            c.opt_ms,
            c.speedup(),
            100.0 * c.cache_hits as f64 / (c.cache_hits + c.cache_misses).max(1) as f64,
            if c.identical { "ok" } else { "DIVERGED" },
        );
        if let Some(d) = &c.detail {
            println!("    {d}");
        }
    }
    println!(
        "\ntotal: ref {total_ref:.1}ms opt {total_opt:.1}ms speedup x{overall:.2}; \
         route-cache hit rate {:.1}%; identity {}",
        hit_rate * 100.0,
        if all_identical { "ok" } else { "FAILED" },
    );
    println!("wrote {out_path}");

    if criterion {
        println!("\nrunning criterion suite (cargo bench -p es-bench)...");
        let status = std::process::Command::new("cargo")
            .args(["bench", "-p", "es-bench"])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("criterion suite failed: {s}");
                if check {
                    return 1;
                }
            }
            Err(e) => {
                eprintln!("cannot spawn cargo bench: {e}");
                if check {
                    return 1;
                }
            }
        }
    }

    if check && !all_identical {
        eprintln!("bench --check: differential identity FAILED");
        return 1;
    }
    0
}

/// The sweep grid: the paper's random layered DAGs on switched WANs
/// plus structured kernels from the suite, spanning low and high CCR
/// and both speed regimes. Full mode is the committed BENCH_PR4.json
/// trajectory; fast mode is the CI smoke subset.
fn sweep(fast: bool) -> (Vec<SweepPoint>, usize) {
    let mut points = Vec::new();
    let paper = |setting: Setting, procs: usize, ccr: f64, tasks: usize| {
        let seed = cell_seed(0xBE4C_2404, setting, procs, ccr, 0);
        let inst = generate(&InstanceConfig::paper(setting, procs, ccr, seed).with_tasks(tasks));
        SweepPoint {
            family: "paper",
            platform: format!("{setting:?}"),
            procs,
            ccr,
            tasks: inst.dag.task_count(),
            seed,
            dag: inst.dag,
            topo: inst.topo,
        }
    };
    let kernel = |k: Kernel, platform: Platform, procs: usize, ccr: f64, tasks: usize| {
        let seed = cell_seed(0x5EED_04B1, Setting::Heterogeneous, procs, ccr, 0);
        let topo = platform.instantiate(procs, seed);
        let raw = k.instantiate(tasks);
        let dag = scale_to_ccr(&raw, ccr, topo.mean_proc_speed(), topo.mean_link_speed());
        SweepPoint {
            family: k.name(),
            platform: platform.name().to_string(),
            procs,
            ccr,
            tasks: dag.task_count(),
            seed,
            dag,
            topo,
        }
    };
    if fast {
        points.push(paper(Setting::Homogeneous, 8, 2.0, 40));
        points.push(kernel(
            Kernel::ForkJoin,
            Platform::WanHeterogeneous,
            8,
            8.0,
            40,
        ));
        (points, 1)
    } else {
        points.push(paper(Setting::Homogeneous, 16, 2.0, 150));
        points.push(paper(Setting::Heterogeneous, 32, 8.0, 150));
        points.push(kernel(
            Kernel::ForkJoin,
            Platform::WanHeterogeneous,
            32,
            8.0,
            150,
        ));
        points.push(kernel(
            Kernel::DivideConquer,
            Platform::WanHomogeneous,
            32,
            8.0,
            150,
        ));
        points.push(kernel(
            Kernel::GaussElim,
            Platform::WanHeterogeneous,
            16,
            5.0,
            150,
        ));
        points.push(kernel(Kernel::Stencil, Platform::FatTree, 16, 5.0, 150));
        (points, 5)
    }
}

/// Measure one (scheduler, instance) case: identity gate first, then
/// `reps` interleaved ref/opt timed runs.
fn measure(point: &SweepPoint, cfg: ListConfig, reps: usize) -> CaseResult {
    let run = |tuning: Tuning| {
        ListScheduler::with_config(ListConfig { tuning, ..cfg }).schedule(&point.dag, &point.topo)
    };

    // Identity gate (doubles as warmup).
    let (identical, detail) = match (run(Tuning::optimized()), run(Tuning::reference())) {
        (Ok(opt), Ok(refr)) => {
            if let Some(d) = diff_schedules(&opt, &refr) {
                (false, Some(format!("schedule diverged: {d}")))
            } else {
                match (
                    execute(&point.dag, &point.topo, &opt),
                    execute(&point.dag, &point.topo, &refr),
                ) {
                    (Ok(eo), Ok(er)) => match diff_executions(&eo, &er) {
                        Some(d) => (false, Some(format!("execution diverged: {d}"))),
                        None => (true, None),
                    },
                    (Err(a), Err(b)) if format!("{a:?}") == format!("{b:?}") => (true, None),
                    (a, b) => (
                        false,
                        Some(format!(
                            "execution outcomes differ: {:?} vs {:?}",
                            a.map(|e| e.makespan),
                            b.map(|e| e.makespan)
                        )),
                    ),
                }
            }
        }
        (Err(a), Err(b)) if format!("{a:?}") == format!("{b:?}") => {
            (true, Some(format!("both tunings error: {a:?}")))
        }
        (a, b) => (
            false,
            Some(format!(
                "outcomes differ: {:?} vs {:?}",
                a.map(|s| s.makespan),
                b.map(|s| s.makespan)
            )),
        ),
    };

    // Interleaved timing: ref and opt alternate so drift hits both.
    let mut ref_ms = 0.0;
    let mut opt_ms = 0.0;
    let stats_before = {
        reset_route_cache_stats();
        route_cache_stats()
    };
    for _ in 0..reps {
        let t0 = Instant::now();
        let _ = run(Tuning::reference());
        ref_ms += t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        let _ = run(Tuning::optimized());
        opt_ms += t1.elapsed().as_secs_f64() * 1000.0;
    }
    let stats = route_cache_stats();

    CaseResult {
        scheduler: cfg.name,
        family: point.family,
        platform: point.platform.clone(),
        procs: point.procs,
        ccr: point.ccr,
        tasks: point.tasks,
        seed: point.seed,
        reps,
        ref_ms,
        opt_ms,
        cache_hits: stats.hits - stats_before.hits,
        cache_misses: stats.misses - stats_before.misses,
        identical,
        detail,
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cases: &[CaseResult],
    fast: bool,
    reps: usize,
    all_identical: bool,
    total_ref: f64,
    total_opt: f64,
    overall: f64,
    hit_rate: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"PR4\",\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if fast { "fast" } else { "full" }
    ));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!(
        "  \"optimized_build\": {},\n",
        !cfg!(debug_assertions)
    ));
    s.push_str(&format!("  \"identity_ok\": {all_identical},\n"));
    s.push_str(&format!("  \"total_ref_ms\": {total_ref:.3},\n"));
    s.push_str(&format!("  \"total_opt_ms\": {total_opt:.3},\n"));
    s.push_str(&format!("  \"overall_speedup\": {overall:.4},\n"));
    s.push_str(&format!("  \"route_cache_hit_rate\": {hit_rate:.4},\n"));
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheduler\": \"{}\", \"family\": \"{}\", \"platform\": \"{}\", \
             \"procs\": {}, \"ccr\": {}, \
             \"tasks\": {}, \"seed\": {}, \"ref_ms\": {:.3}, \"opt_ms\": {:.3}, \
             \"speedup\": {:.4}, \"decisions_per_sec_ref\": {:.1}, \
             \"decisions_per_sec_opt\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"identical\": {}}}{}\n",
            c.scheduler,
            c.family,
            c.platform,
            c.procs,
            c.ccr,
            c.tasks,
            c.seed,
            c.ref_ms,
            c.opt_ms,
            c.speedup(),
            c.decisions_per_sec(c.ref_ms),
            c.decisions_per_sec(c.opt_ms),
            c.cache_hits,
            c.cache_misses,
            c.identical,
            if i + 1 < cases.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
