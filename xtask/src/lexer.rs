//! A minimal Rust lexer for the workspace analysis passes.
//!
//! No `syn` is available offline, and the passes only need token-level
//! facts (identifier occurrences, operators adjacent to float
//! literals, token-stream equality for twin regions), so this
//! hand-rolled scanner is sufficient — and honest: it never guesses
//! types, only reports lexical patterns, and the pass definitions in
//! `passes` are phrased at exactly that level.
//!
//! Handled: line/block comments (nested), string/char/byte literals
//! (with escapes), raw strings with hashes, byte-char literals
//! (`b'x'`), numeric literals (with `_`, exponents, suffixes),
//! identifiers, lifetimes-vs-char-literals, and multi-char operators.
//! Everything else comes out as single-char punctuation tokens.

/// One lexical token with its source line (1-based) and raw text.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// The raw source text of the token (for literals, the full
    /// literal including quotes/prefix). The twin-drift pass compares
    /// token streams by this field.
    pub text: String,
}

/// Classification of a token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (no `.` or exponent), e.g. `42`, `0xFF`, `7u32`.
    Int,
    /// Float literal, e.g. `0.0`, `1e-6`, `2.5f64`.
    Float,
    /// Operator or punctuation, e.g. `==`, `!=`, `::`, `.`, `(`.
    Op(String),
    /// String, raw-string, char, byte, or lifetime literal.
    Literal,
}

/// Lex `src` into tokens, skipping comments and whitespace.
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    #[allow(clippy::naive_bytecount)] // sources are small; no bytecount dep
    let bump_lines = |from: usize, to: usize, line: &mut u32| {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count() as u32;
    };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines(start, i.min(b.len()), &mut line);
            }
            // Escaped (non-raw) string and byte-string literals. `b"…"`
            // takes this path too: byte strings honour `\"` escapes,
            // which the raw-string scanner below must not apply.
            b'"' | b'b'
                if c == b'"' || (is_prefixed_literal(b, i) && b.get(i + 1) == Some(&b'"')) =>
            {
                let start = i;
                i += usize::from(c == b'b') + 1; // prefix + opening quote
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                let end = i.min(b.len());
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                    text: src[start..end].to_string(),
                });
                bump_lines(start, end, &mut line);
            }
            // Byte-char literal `b'x'` (with escapes).
            b'b' if is_prefixed_literal(b, i) && b.get(i + 1) == Some(&b'\'') => {
                let start = i;
                i += 2;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                    text: src[start..i.min(b.len())].to_string(),
                });
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let start = i;
                // Skip `r`/`br` prefix then count hashes.
                i += 1;
                if i < b.len() && b[i] == b'r' {
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < b.len() && !b[i..].starts_with(&closer) {
                    i += 1;
                }
                i = (i + closer.len()).min(b.len());
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                    text: src[start..i].to_string(),
                });
                bump_lines(start, i, &mut line);
            }
            b'\'' => {
                // Char literal or lifetime. Lifetime: 'ident not
                // followed by a closing quote.
                let start = i;
                if is_lifetime(b, i) {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                } else {
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                    text: src[start..i.min(b.len())].to_string(),
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                if c == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
                    i += 2;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                } else {
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                    // Fractional part: a dot followed by a digit (not
                    // `..` or a method call like `1.max(..)`).
                    if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                        is_float = true;
                        i += 1;
                        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                            i += 1;
                        }
                    } else if i < b.len()
                        && b[i] == b'.'
                        && (i + 1 >= b.len()
                            || !matches!(b[i + 1], b'.' | b'_') && !b[i + 1].is_ascii_alphabetic())
                    {
                        // Trailing-dot float like `1.`
                        is_float = true;
                        i += 1;
                    }
                    // Exponent.
                    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                        let mut j = i + 1;
                        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                            j += 1;
                        }
                        if j < b.len() && b[j].is_ascii_digit() {
                            is_float = true;
                            i = j;
                            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                                i += 1;
                            }
                        }
                    }
                    // Suffix (`f64`, `u32`, ...).
                    let suffix_start = i;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    if src[suffix_start..i].starts_with('f') {
                        is_float = true;
                    }
                }
                tokens.push(Token {
                    kind: if is_float {
                        TokenKind::Float
                    } else {
                        TokenKind::Int
                    },
                    line,
                    text: src[start..i].to_string(),
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    line,
                    text: src[start..i].to_string(),
                });
            }
            _ => {
                // Multi-char operators the passes care about, longest
                // first; everything else is single-char punctuation.
                const OPS: [&str; 10] =
                    ["==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||"];
                let rest = &src[i..];
                let mut matched = None;
                for op in OPS {
                    if rest.starts_with(op) {
                        matched = Some(op);
                        break;
                    }
                }
                let op = match matched {
                    Some(m) => m.to_string(),
                    // Safe single-char slice even for non-ASCII.
                    None => rest.chars().next().map(String::from).unwrap_or_default(),
                };
                i += op.len();
                tokens.push(Token {
                    kind: TokenKind::Op(op.clone()),
                    line,
                    text: op,
                });
            }
        }
    }
    tokens
}

/// Is the `b` at `i` a byte-literal prefix (`b"…"` or `b'…'`) rather
/// than the tail of an identifier like `grab`?
fn is_prefixed_literal(b: &[u8], i: usize) -> bool {
    b[i] == b'b' && !(i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_'))
}

/// Does position `i` start a *raw* string (`r"`, `r#"`, `br#"`)?
/// Escaped `b"…"` byte strings are handled by the string arm instead
/// (they honour backslash escapes; raw strings must not). Avoids
/// misreading identifiers like `regex` or `bytes`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // Must not be preceded by an identifier character.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        // Only `br…` is raw; bare `b"` is an escaped byte string.
        if j < b.len() && b[j] == b'r' {
            j += 1;
        } else {
            return false;
        }
    } else if b[j] == b'r' {
        j += 1;
    } else {
        return false;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Is the `'` at `i` a lifetime rather than a char literal?
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    // `'a'` is a char; `'a,` / `'a>` / `'static` are lifetimes.
    let mut j = i + 1;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    !(j < b.len() && b[j] == b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn literals(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_skipped() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block /* nested */ comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw"#;
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        // A raw string containing an unescaped quote and a `"#`-like
        // fragment closes only at the matching `"##`.
        let src = r###"let a = r##"has "quotes" and "# inside"##; let after = 1;"###;
        let lits = literals(src);
        assert_eq!(lits.len(), 1, "{lits:?}");
        assert!(lits[0].contains("quotes"));
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn multiline_raw_string_keeps_line_numbers() {
        let src = "let a = r#\"line1\nline2\nline3\"#;\nlet tail = 2;";
        let toks = lex(src);
        let tail = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("tail".into()))
            .unwrap();
        assert_eq!(tail.line, 4);
    }

    #[test]
    fn byte_strings_honour_escapes() {
        // `b"\""` is a complete byte string; the old raw-string path
        // closed it at the escaped quote and mis-tokenized the rest.
        let src = r#"let a = b"\""; let after = 1;"#;
        let lits = literals(src);
        assert_eq!(lits, vec!["b\"\\\"\"".to_string()], "{lits:?}");
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn byte_char_literals_lex_as_one_literal() {
        let src = r"let a = b'r'; let b_ = b'\''; let c = grab;";
        let lits = literals(src);
        assert_eq!(lits, vec!["b'r'".to_string(), r"b'\''".to_string()]);
        // `grab` must stay one identifier, not `gra` + `b…`.
        assert!(idents(src).contains(&"grab".to_string()));
    }

    #[test]
    fn raw_byte_strings_are_raw() {
        // `br#"…"#` must NOT honour backslash escapes.
        let src = r##"let a = br#"back\slash"#; let after = 1;"##;
        let lits = literals(src);
        assert_eq!(lits.len(), 1, "{lits:?}");
        assert!(lits[0].contains("back\\slash"));
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn nested_block_comments_balance() {
        let src = "/* a /* b /* c */ */ still comment */ let x = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let".to_string(), "x".to_string()]);
        // Unterminated nesting consumes to EOF without panicking.
        assert!(lex("/* open /* deeper */ never closed").is_empty());
    }

    #[test]
    fn float_vs_int_literals() {
        let toks = lex("let a = 1; let b = 2.5; let c = 1e-6; let d = 3f64; let e = 0x1F;");
        let floats = toks.iter().filter(|t| t.kind == TokenKind::Float).count();
        let ints = toks.iter().filter(|t| t.kind == TokenKind::Int).count();
        assert_eq!(floats, 3, "{toks:?}");
        assert_eq!(ints, 2, "{toks:?}");
    }

    #[test]
    fn numeric_tokens_carry_their_text() {
        let toks = lex("0.0 1e-6 42 0xFF");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["0.0", "1e-6", "42", "0xFF"]);
    }

    #[test]
    fn method_call_on_int_is_not_float() {
        let toks = lex("let x = 1.max(2);");
        assert!(toks.iter().all(|t| t.kind != TokenKind::Float));
    }

    #[test]
    fn range_on_int_is_not_float() {
        let toks = lex("for i in 0..10 {}");
        assert!(toks.iter().all(|t| t.kind != TokenKind::Float));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Op("..".to_string())));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c == 0.0");
        let c = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("c".into()))
            .unwrap();
        assert_eq!(c.line, 3);
        let eq = toks
            .iter()
            .find(|t| t.kind == TokenKind::Op("==".into()))
            .unwrap();
        assert_eq!(eq.line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';");
        // All three lifetime sites plus one char literal.
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            4
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident("str".into())));
    }

    #[test]
    fn lifetime_edge_cases() {
        // 'static at EOF, '_ anonymous, escaped quote char, char with
        // an alphabetic body followed by a quote.
        assert_eq!(literals("&'static"), vec!["'static".to_string()]);
        assert_eq!(literals("&'_ str"), vec!["'_".to_string()]);
        assert_eq!(literals(r"let c = '\'';"), vec![r"'\''".to_string()]);
        assert_eq!(literals("let c = 'q';"), vec!["'q'".to_string()]);
    }

    #[test]
    fn operators_lex_whole() {
        let toks = lex("a == b != c :: d");
        let ops: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Op(o) => Some(o.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["==", "!=", "::"]);
    }
}
