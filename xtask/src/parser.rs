//! A lightweight syntactic layer over [`crate::lexer`]'s token stream.
//!
//! This is not a full Rust parser (no `syn` offline) — it recovers
//! exactly the structure the analysis passes need and nothing more:
//!
//! * **items** — `fn` definitions with their body extents (token
//!   ranges), `mod` nesting with `#[cfg(test)]` detection, and
//!   `impl`/`struct`/`enum`/`trait` scopes for context names;
//! * **call sites** — `name(`, `recv.name(`, and `name::<T>(`
//!   occurrences inside fn bodies, attributed to the innermost
//!   enclosing fn (macros `name!(…)` are excluded);
//! * **`unsafe` surface** — every `unsafe` block, `unsafe fn`
//!   (named or pointer type), `unsafe impl`, and `unsafe trait`,
//!   classified and labeled with its enclosing context.
//!
//! The supported subset is documented in DESIGN.md §12.1. Known
//! approximations: callee resolution is by name (no type inference),
//! so method calls resolve to any same-named fn; const-generic brace
//! expressions in signatures and raw identifiers (`r#type`) are not
//! handled (neither appears in this workspace).

use crate::lexer::{lex, Token, TokenKind};
use std::ops::Range;

/// One parsed source file: tokens plus the recovered structure.
pub struct ParsedFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Raw source text (passes that need comments re-scan this).
    pub src: String,
    /// Lexed token stream.
    pub tokens: Vec<Token>,
    /// Function definitions in source order.
    pub fns: Vec<FnDef>,
    /// `unsafe` sites in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// A `fn` definition (free, method, or nested).
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body (exclusive of the outer braces).
    pub body: Range<usize>,
    /// Inside a `#[cfg(test)]` mod / `mod tests`, or `#[test]`-marked,
    /// or nested in such a fn.
    pub is_test: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Call sites inside this fn's body (innermost-fn attribution).
    pub calls: Vec<Call>,
}

/// One call site inside a fn body.
pub struct Call {
    /// Callee name (last path segment for `a::b::f(…)`).
    pub callee: String,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// Preceded by `.` (method-call syntax).
    pub method: bool,
}

/// Classification of an `unsafe` occurrence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe fn name(…)` definition (free fn or method).
    Fn,
    /// `unsafe impl Trait for Type { … }`.
    Impl,
    /// `unsafe trait Name { … }`.
    Trait,
    /// `unsafe fn(…)` function-pointer *type* (e.g. a struct field).
    FnPtrType,
}

impl UnsafeKind {
    /// Short registry-label prefix (`block`, `fn`, `impl`, `trait`,
    /// `fn-ptr`).
    pub fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::FnPtrType => "fn-ptr",
        }
    }
}

/// One `unsafe` site, labeled for the DESIGN.md registry cross-check.
pub struct UnsafeSite {
    /// What kind of `unsafe` syntax this is.
    pub kind: UnsafeKind,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Context name: the fn's own name for `fn` sites, the impl/trait
    /// header for those, the innermost enclosing fn/type for blocks
    /// and pointer types.
    pub context: String,
}

impl UnsafeSite {
    /// Registry label, e.g. `block:worker_loop` or `impl:Send for JobPtr`.
    pub fn registry_label(&self) -> String {
        format!("{}:{}", self.kind.label(), self.context)
    }
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: [&str; 26] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "where", "pub", "use", "mod", "dyn", "box", "await",
    "async", "unsafe",
];

enum ScopeKind {
    Fn(usize),
    Mod { test: bool },
    Named,
    Other,
}

enum Pending {
    Fn {
        name: String,
        line: u32,
        is_test: bool,
        is_unsafe: bool,
    },
    Mod {
        test: bool,
    },
    Named(String),
}

/// Parse `src` (lexing it first) into a [`ParsedFile`].
#[allow(clippy::too_many_lines)]
pub fn parse(rel: &str, src: &str) -> ParsedFile {
    let tokens = lex(src);
    let mut fns: Vec<FnDef> = Vec::new();
    let mut unsafe_sites: Vec<UnsafeSite> = Vec::new();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    // Names of enclosing Named scopes, parallel to `scopes` filtered.
    let mut named_stack: Vec<String> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut has_test_attr = false;
    let mut next_fn_unsafe = false;

    let ident = |i: usize| -> Option<&str> {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let op = |i: usize| -> Option<&str> {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Op(o)) => Some(o.as_str()),
            _ => None,
        }
    };

    let in_test_scope = |scopes: &[ScopeKind], fns: &[FnDef]| {
        scopes.iter().any(|s| match s {
            ScopeKind::Mod { test } => *test,
            ScopeKind::Fn(idx) => fns[*idx].is_test,
            _ => false,
        })
    };
    // Innermost context name: enclosing fn first, else enclosing type.
    let context_name = |scopes: &[ScopeKind], fns: &[FnDef], named: &[String]| -> String {
        for s in scopes.iter().rev() {
            if let ScopeKind::Fn(idx) = s {
                return fns[*idx].name.clone();
            }
        }
        named
            .last()
            .cloned()
            .unwrap_or_else(|| "<file>".to_string())
    };
    // Join the idents of an impl/trait header (`impl Send for JobPtr`)
    // up to its opening brace; skips generics/lifetime noise.
    let header_name = |from: usize| -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut j = from;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Op(o) if o == "{" || o == ";" => break,
                TokenKind::Ident(s) if s == "where" => break,
                TokenKind::Ident(s) => parts.push(s.as_str()),
                _ => {}
            }
            j += 1;
        }
        parts.join(" ")
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match &t.kind {
            // Attributes: skip `#[…]` / `#![…]` wholesale; an outer
            // attribute containing `test` marks the next item.
            TokenKind::Op(o) if o == "#" => {
                let mut j = i + 1;
                let inner = op(j) == Some("!");
                if inner {
                    j += 1;
                }
                if op(j) == Some("[") {
                    let mut depth = 0i32;
                    let mut saw_test = false;
                    while j < tokens.len() {
                        match &tokens[j].kind {
                            TokenKind::Op(o) if o == "[" => depth += 1,
                            TokenKind::Op(o) if o == "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            TokenKind::Ident(s) if s == "test" => saw_test = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if saw_test && !inner {
                        has_test_attr = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            TokenKind::Ident(kw) if kw == "fn" => {
                // `fn(` is a pointer/trait-object type, not an item.
                if let Some(name) = ident(i + 1) {
                    if pending.is_none() {
                        pending = Some(Pending::Fn {
                            name: name.to_string(),
                            line: t.line,
                            is_test: has_test_attr || in_test_scope(&scopes, &fns),
                            is_unsafe: std::mem::take(&mut next_fn_unsafe),
                        });
                        has_test_attr = false;
                        i += 2;
                        continue;
                    }
                }
                next_fn_unsafe = false;
            }
            TokenKind::Ident(kw) if kw == "mod" => {
                if let Some(name) = ident(i + 1) {
                    if pending.is_none() {
                        pending = Some(Pending::Mod {
                            test: name == "tests" || has_test_attr || in_test_scope(&scopes, &fns),
                        });
                        has_test_attr = false;
                        i += 2;
                        continue;
                    }
                }
            }
            TokenKind::Ident(kw)
                if matches!(kw.as_str(), "struct" | "enum" | "union" | "trait")
                    && pending.is_none() =>
            {
                if let Some(name) = ident(i + 1) {
                    pending = Some(Pending::Named(name.to_string()));
                    has_test_attr = false;
                    i += 2;
                    continue;
                }
            }
            TokenKind::Ident(kw) if kw == "impl" && pending.is_none() => {
                pending = Some(Pending::Named(header_name(i + 1)));
            }
            TokenKind::Ident(kw) if kw == "unsafe" => match ident(i + 1) {
                Some("fn") => {
                    if op(i + 2) == Some("(") {
                        unsafe_sites.push(UnsafeSite {
                            kind: UnsafeKind::FnPtrType,
                            line: t.line,
                            context: context_name(&scopes, &fns, &named_stack),
                        });
                    } else if let Some(name) = ident(i + 2) {
                        unsafe_sites.push(UnsafeSite {
                            kind: UnsafeKind::Fn,
                            line: t.line,
                            context: name.to_string(),
                        });
                        next_fn_unsafe = true;
                    }
                }
                Some("impl") => unsafe_sites.push(UnsafeSite {
                    kind: UnsafeKind::Impl,
                    line: t.line,
                    context: header_name(i + 2),
                }),
                Some("trait") => {
                    if let Some(name) = ident(i + 2) {
                        unsafe_sites.push(UnsafeSite {
                            kind: UnsafeKind::Trait,
                            line: t.line,
                            context: name.to_string(),
                        });
                    }
                }
                _ => {
                    if op(i + 1) == Some("{") {
                        unsafe_sites.push(UnsafeSite {
                            kind: UnsafeKind::Block,
                            line: t.line,
                            context: context_name(&scopes, &fns, &named_stack),
                        });
                    }
                }
            },
            TokenKind::Op(o) if o == "{" => match pending.take() {
                Some(Pending::Fn {
                    name,
                    line,
                    is_test,
                    is_unsafe,
                }) => {
                    fns.push(FnDef {
                        name,
                        line,
                        body: i + 1..i + 1,
                        is_test,
                        is_unsafe,
                        calls: Vec::new(),
                    });
                    scopes.push(ScopeKind::Fn(fns.len() - 1));
                }
                Some(Pending::Mod { test }) => scopes.push(ScopeKind::Mod { test }),
                Some(Pending::Named(n)) => {
                    named_stack.push(n);
                    scopes.push(ScopeKind::Named);
                }
                None => scopes.push(ScopeKind::Other),
            },
            TokenKind::Op(o) if o == "}" => match scopes.pop() {
                Some(ScopeKind::Fn(idx)) => fns[idx].body.end = i,
                Some(ScopeKind::Named) => {
                    named_stack.pop();
                }
                _ => {}
            },
            TokenKind::Op(o) if o == ";" => {
                pending = None;
                has_test_attr = false;
            }
            TokenKind::Ident(name) => {
                // Call detection, attributed to the innermost fn.
                let enclosing = scopes.iter().rev().find_map(|s| match s {
                    ScopeKind::Fn(idx) => Some(*idx),
                    _ => None,
                });
                if let Some(fn_idx) = enclosing {
                    if !NON_CALL_KEYWORDS.contains(&name.as_str()) {
                        let is_macro = op(i + 1) == Some("!");
                        let mut call_paren = op(i + 1) == Some("(");
                        // Turbofish: `name::<T, U>(…)`.
                        if !call_paren && op(i + 1) == Some("::") && op(i + 2) == Some("<") {
                            let mut depth = 0i32;
                            let mut j = i + 2;
                            while j < tokens.len() {
                                match op(j) {
                                    Some("<") => depth += 1,
                                    Some(">") => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    Some(";" | "{") => break,
                                    _ => {}
                                }
                                j += 1;
                            }
                            call_paren = op(j + 1) == Some("(");
                        }
                        if call_paren && !is_macro {
                            let method = i > 0 && op(i - 1) == Some(".");
                            fns[fn_idx].calls.push(Call {
                                callee: name.clone(),
                                line: t.line,
                                tok: i,
                                method,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    ParsedFile {
        rel: rel.to_string(),
        src: src.to_string(),
        tokens,
        fns,
        unsafe_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_bodies_and_calls() {
        let f = parse(
            "x.rs",
            "fn outer(x: u32) -> u32 {\n  helper(x);\n  y.method(1);\n  mac!(z);\n  0\n}\nfn helper(v: u32) {}\n",
        );
        assert_eq!(f.fns.len(), 2);
        let outer = &f.fns[0];
        assert_eq!(outer.name, "outer");
        let callees: Vec<&str> = outer.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, vec!["helper", "method"]);
        assert!(outer.calls[1].method);
        assert!(!outer.calls[0].method);
    }

    #[test]
    fn turbofish_calls_are_detected() {
        let f = parse("x.rs", "fn g(v: Vec<f64>) -> f64 { v.iter().sum::<f64>() }");
        let callees: Vec<&str> = f.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(callees.contains(&"sum"), "{callees:?}");
    }

    #[test]
    fn nested_fn_attribution() {
        let f = parse("x.rs", "fn outer() { fn inner() { deep(); } shallow(); }");
        let outer = f.fns.iter().find(|d| d.name == "outer").unwrap();
        let inner = f.fns.iter().find(|d| d.name == "inner").unwrap();
        assert_eq!(
            outer.calls.iter().map(|c| &c.callee).collect::<Vec<_>>(),
            vec!["shallow"]
        );
        assert_eq!(
            inner.calls.iter().map(|c| &c.callee).collect::<Vec<_>>(),
            vec!["deep"]
        );
    }

    #[test]
    fn test_mods_and_attrs_mark_fns() {
        let src = "\
            fn prod() {}\n\
            #[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn case() {}\n}\n\
            #[test]\nfn top_level_case() {}\n";
        let f = parse("x.rs", src);
        let by_name = |n: &str| f.fns.iter().find(|d| d.name == n).unwrap();
        assert!(!by_name("prod").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("case").is_test);
        assert!(by_name("top_level_case").is_test);
    }

    #[test]
    fn unsafe_sites_classified() {
        let src = "\
            struct JobPtr { call: unsafe fn(*const ()), }\n\
            unsafe impl Send for JobPtr {}\n\
            unsafe trait Scary {}\n\
            unsafe fn thunk() { }\n\
            fn worker_loop() { unsafe { go(); } }\n";
        let f = parse("crates/runner/src/lib.rs", src);
        let labels: Vec<String> = f
            .unsafe_sites
            .iter()
            .map(UnsafeSite::registry_label)
            .collect();
        assert_eq!(
            labels,
            vec![
                "fn-ptr:JobPtr",
                "impl:Send for JobPtr",
                "trait:Scary",
                "fn:thunk",
                "block:worker_loop",
            ]
        );
        assert!(f.fns.iter().find(|d| d.name == "thunk").unwrap().is_unsafe);
    }

    #[test]
    fn impl_headers_do_not_eat_fn_bodies() {
        let f = parse(
            "x.rs",
            "impl Foo for Bar { fn m(&self) -> u32 { helper(); 1 } }",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "m");
        assert_eq!(f.fns[0].calls.len(), 1);
    }

    #[test]
    fn return_position_impl_does_not_shadow_fn() {
        let f = parse(
            "x.rs",
            "fn make() -> impl Iterator<Item = u32> { build().into_iter() }",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "make");
        assert!(!f.fns[0].calls.is_empty());
    }

    #[test]
    fn closures_attribute_to_enclosing_fn() {
        let f = parse(
            "x.rs",
            "fn run() { let job = move |lane, idx| { work(lane, idx); }; dispatch(job); }",
        );
        let callees: Vec<&str> = f.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, vec!["work", "dispatch"]);
    }
}
