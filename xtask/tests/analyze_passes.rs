//! Known-bad fixture corpus for the syntax-aware passes (DESIGN.md
//! §12): every bad snippet fires exactly its ES-A0xx code, every good
//! twin stays silent, and the `es-analyze-v1` JSON report round-trips
//! through the vendored parser. A final regression pins the real
//! workspace clean with an empty suppression file.

use std::fs;
use std::path::Path;
use xtask::passes::Model;
use xtask::report::{self, json};

/// Load a fixture file from `xtask/tests/fixtures/`.
fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Build a model with one fixture placed at `rel` (inside the pass's
/// scope) and the given DESIGN.md text.
fn model_at(rel: &str, name: &str, design: &str) -> Model {
    Model::from_sources(vec![(rel.to_string(), fixture(name))], design.to_string())
}

fn codes(model: &Model) -> Vec<&'static str> {
    model.run_passes().into_iter().map(|f| f.code).collect()
}

#[test]
fn n1_bad_fires_es_a010() {
    let m = model_at("crates/core/src/fixture.rs", "n1_bad.rs", "");
    assert_eq!(codes(&m), vec!["ES-A010"]);
}

#[test]
fn n1_good_unreachable_hazard_is_silent() {
    let m = model_at("crates/core/src/fixture.rs", "n1_good.rs", "");
    assert_eq!(codes(&m), Vec::<&str>::new());
}

#[test]
fn n2_bad_fires_es_a020() {
    let m = model_at("crates/core/src/fixture.rs", "n2_bad.rs", "");
    assert_eq!(codes(&m), vec!["ES-A020"]);
}

#[test]
fn n2_good_is_silent() {
    let m = model_at("crates/core/src/fixture.rs", "n2_good.rs", "");
    assert_eq!(codes(&m), Vec::<&str>::new());
}

#[test]
fn n3_bad_fires_es_a030() {
    let m = model_at("crates/core/src/fixture.rs", "n3_bad.rs", "");
    assert_eq!(codes(&m), vec!["ES-A030"]);
}

#[test]
fn n3_good_twin_is_silent() {
    let m = model_at("crates/core/src/fixture.rs", "n3_good.rs", "");
    assert_eq!(codes(&m), Vec::<&str>::new());
}

#[test]
fn n4_bad_fires_es_a040_and_es_a041() {
    let m = model_at("crates/runner/src/fixture.rs", "n4_bad.rs", "");
    assert_eq!(codes(&m), vec!["ES-A040", "ES-A041"]);
}

#[test]
fn n4_good_registered_site_is_silent() {
    let registry = fixture("n4_registry.md");
    let m = model_at("crates/runner/src/fixture.rs", "n4_good.rs", &registry);
    assert_eq!(codes(&m), Vec::<&str>::new());
}

#[test]
fn n4_stale_registry_row_fires_es_a042() {
    // The registry names a site, but the source has none.
    let registry = fixture("n4_registry.md");
    let m = Model::from_sources(
        vec![("crates/runner/src/fixture.rs".to_string(), String::new())],
        registry,
    );
    assert_eq!(codes(&m), vec!["ES-A042"]);
}

#[test]
fn n5_bad_fires_es_a050_and_es_a051() {
    let m = model_at("crates/runner/src/fixture.rs", "n5_bad.rs", "");
    assert_eq!(codes(&m), vec!["ES-A050", "ES-A051"]);
}

#[test]
fn n5_good_is_silent() {
    let m = model_at("crates/runner/src/fixture.rs", "n5_good.rs", "");
    assert_eq!(codes(&m), Vec::<&str>::new());
}

#[test]
fn json_report_round_trips() {
    // Findings from the N5 bad fixture, one of them suppressed.
    let m = model_at("crates/runner/src/fixture.rs", "n5_bad.rs", "");
    let findings = m.run_passes();
    assert_eq!(findings.len(), 2);
    let sup_text = "ES-A051 crates/runner/src/fixture.rs -- fixture round-trip entry\n";
    let (mut entries, malformed) = report::parse_suppressions(sup_text, "sup.txt");
    assert!(malformed.is_empty(), "{malformed:?}");
    let (active, suppressed) = report::apply_suppressions(findings, &mut entries, "sup.txt");
    assert_eq!((active.len(), suppressed.len()), (1, 1));

    let rendered = report::render_report("/ws", &active, &suppressed);
    let doc = json::parse(&rendered).expect("report is valid JSON");

    assert_eq!(
        doc.get("schema").and_then(json::Value::as_str),
        Some("es-analyze-v1")
    );
    let summary = doc.get("summary").expect("summary");
    assert_eq!(
        summary.get("active").and_then(json::Value::as_num),
        Some(1.0)
    );
    assert_eq!(
        summary.get("suppressed").and_then(json::Value::as_num),
        Some(1.0)
    );
    let findings = doc.get("findings").and_then(json::Value::as_arr).unwrap();
    assert_eq!(findings.len(), 2);
    assert_eq!(
        findings[0].get("code").and_then(json::Value::as_str),
        Some("ES-A050")
    );
    assert_eq!(
        findings[0].get("suppressed"),
        Some(&json::Value::Bool(false))
    );
    assert_eq!(
        findings[1].get("code").and_then(json::Value::as_str),
        Some("ES-A051")
    );
    assert_eq!(
        findings[1].get("suppressed"),
        Some(&json::Value::Bool(true))
    );
    assert_eq!(
        findings[1]
            .get("justification")
            .and_then(json::Value::as_str),
        Some("fixture round-trip entry")
    );
    // Every pass is described, firing or not.
    let passes = doc.get("passes").and_then(json::Value::as_arr).unwrap();
    assert_eq!(passes.len(), report::PASSES.len());
}

#[test]
fn workspace_is_clean_with_empty_suppressions() {
    // The merge-time invariant from ISSUE/DESIGN §12.4: the real
    // workspace passes L1–L4 + N1–N5 with zero suppression entries.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let findings = xtask::analyze::analyze_workspace(&root);
    assert!(findings.is_empty(), "{findings:?}");
    let sup = fs::read_to_string(root.join("analyze-suppressions.txt")).unwrap_or_default();
    let (entries, malformed) = report::parse_suppressions(&sup, "analyze-suppressions.txt");
    assert!(
        entries.is_empty(),
        "suppression file must be empty at merge"
    );
    assert!(malformed.is_empty(), "{malformed:?}");
}
