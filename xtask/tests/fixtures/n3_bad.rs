// N3 fixture (bad): the optimized twin drifted from its reference
// (`<` became `<=`, which flips EPS tie-breaks). Must fire ES-A030.
pub fn reference(a: f64, b: f64) -> bool {
    // TWIN(tie-break): begin
    let better = a < b - EPS;
    // TWIN(tie-break): end
    better
}

pub fn optimized(a: f64, b: f64) -> bool {
    // TWIN(tie-break): begin
    let better = a <= b - EPS;
    // TWIN(tie-break): end
    better
}
