// N1 fixture (bad): the scheduler entry point reaches a HashMap
// iteration through the call graph — iteration order is arbitrary, so
// the pick is nondeterministic. Must fire ES-A010.
use std::collections::HashMap;

pub fn schedule(n: u32) -> f64 {
    pick_processor(n)
}

fn pick_processor(n: u32) -> f64 {
    let mut finish_times = HashMap::new();
    finish_times.insert(n, 1.0_f64);
    let mut acc = 0.0_f64;
    for (_, v) in &finish_times {
        acc += v;
    }
    acc
}
