// N3 fixture (good): token-identical twins with one declared
// divergence per side (TWIN-OK) and an identifier map on the
// optimized region. Silent.
pub fn reference(q: &State, a: f64, b: f64) -> bool {
    // TWIN(tie-break): begin
    let bound = q.bound(); // TWIN-OK: serial reads the committed bound
    let better = a < b - EPS;
    // TWIN(tie-break): end
    better && bound > 0.0
}

pub fn optimized(ws: &State, a: f64, b: f64) -> bool {
    // TWIN(tie-break): begin map ws=q
    let bound = ws.snapshot_bound(); // TWIN-OK: overlay reads the snapshot bound
    let better = a < b - EPS;
    // TWIN(tie-break): end
    better && bound > 0.0
}
