// N2 fixture (bad): commits into a SlotQueue without bumping the
// link-state epoch — the epoch-keyed route cache would serve stale
// shortest paths. Must fire ES-A020.
pub fn place(q: &mut SlotQueue, slot: Slot) {
    q.commit(slot);
}
