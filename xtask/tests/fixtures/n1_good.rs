// N1 fixture (good): the same HashMap-iteration hazard exists, but no
// scheduler entry point reaches it — diagnostics helpers may iterate
// hashes. Taint gating must keep this silent.
use std::collections::HashMap;

pub fn debug_histogram(n: u32) -> f64 {
    let mut finish_times = HashMap::new();
    finish_times.insert(n, 1.0_f64);
    let mut acc = 0.0_f64;
    for (_, v) in &finish_times {
        acc += v;
    }
    acc
}

pub fn schedule(n: u32) -> f64 {
    f64::from(n)
}
