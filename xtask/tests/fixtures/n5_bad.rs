// N5 fixture (bad): dispatches a job while holding a mutex guard
// (ES-A050), then acquires the same mutex again with the first guard
// still live (ES-A051).
pub fn run_worker(m: &Mutex<State>, job: Job) {
    let mut guard = m.lock().unwrap();
    guard.count += 1;
    job(guard.count);
    let second = m.lock().unwrap();
    drop(second);
}
