// N4 fixture (bad): an unsafe block with no adjacent SAFETY comment
// and no row in the DESIGN.md registry. Must fire ES-A040 + ES-A041.
pub fn worker_loop(ptr: *const ()) {
    unsafe { dispatch(ptr) };
}
