// N5 fixture (good): the guard is dropped before the dispatch, and no
// second acquisition happens while it is live. Silent.
pub fn run_worker(m: &Mutex<State>, job: Job) {
    let mut guard = m.lock().unwrap();
    guard.count += 1;
    let n = guard.count;
    drop(guard);
    job(n);
}
