// N2 fixture (good): the mutation is paired with `touch()` in the
// same fn, reconciling the epoch. Silent.
pub fn place(state: &mut SlottedState, q: &mut SlotQueue, slot: Slot) {
    q.commit(slot);
    state.touch();
}
