// N4 fixture (good): the unsafe block carries a SAFETY comment and is
// registered (see n4_registry.md). Silent.
pub fn worker_loop(ptr: *const ()) {
    // SAFETY: `ptr` originates from a live JobPtr; the pool's run
    // barrier keeps the closure alive until every worker checks out.
    unsafe { dispatch(ptr) };
}
