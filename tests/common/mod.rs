//! Fixture builders shared by the root integration suites. Each test
//! binary compiles this module independently (`mod common;`), so not
//! every suite uses every helper.
#![allow(dead_code)]

use es_core::online::{arrival_script, ArrivalSpec, JobSpec};
use es_core::{BbsaScheduler, ListConfig, ListScheduler, Scheduler};
use es_dag::gen::structured::{chain, diamond_mesh, fft_graph, fork_join, gauss_elim, stencil_1d};
use es_dag::TaskGraph;
use es_net::gen::{self, SpeedDist};
use es_net::Topology;
use es_workload::suite::{Kernel, Platform};
use es_workload::{generate, scale_to_ccr, InstanceConfig, Setting};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeds the differential/backends matrices sweep.
pub const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 1009, 0x00C0_FFEE];

/// Every scheduler the workspace ships, static and probing families.
pub fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::ba_static()),
        Box::new(ListScheduler::oihsa()),
        Box::new(ListScheduler::oihsa_probing()),
        Box::new(BbsaScheduler::new()),
        Box::new(BbsaScheduler::with_config(
            es_core::bbsa::BbsaConfig::probing(),
        )),
    ]
}

/// Structured DAG shapes covering chains, fan-out, wavefronts and
/// butterflies.
pub fn dags() -> Vec<TaskGraph> {
    vec![
        chain(6, 10.0, 5.0),
        fork_join(5, 20.0, 15.0),
        gauss_elim(5, 12.0, 8.0),
        fft_graph(8, 10.0, 6.0),
        stencil_1d(4, 4, 7.0, 5.0),
        diamond_mesh(4, 9.0, 4.0),
    ]
}

/// Every topology family the generators produce, labelled for panic
/// messages.
pub fn topologies() -> Vec<(&'static str, Topology)> {
    let mut rng = StdRng::seed_from_u64(99);
    let hom = SpeedDist::Fixed(1.0);
    let het = SpeedDist::UniformInt(1, 10);
    vec![
        ("star-hom", gen::star(4, hom, hom, &mut rng)),
        ("star-het", gen::star(4, het, het, &mut rng)),
        (
            "fully-connected",
            gen::fully_connected(4, hom, hom, &mut rng),
        ),
        ("ring", gen::switch_ring(3, 2, hom, hom, &mut rng)),
        ("mesh", gen::switch_mesh2d(2, 2, 1, het, het, &mut rng)),
        ("bus", gen::shared_bus(4, hom, 1.0, &mut rng)),
        (
            "wan-hom",
            gen::random_switched_wan(&gen::WanConfig::homogeneous(12), &mut rng),
        ),
        (
            "wan-het",
            gen::random_switched_wan(&gen::WanConfig::heterogeneous(12), &mut rng),
        ),
    ]
}

/// Multi-DAG batch for the multi-tenant suites: `jobs` mixed kernels
/// drawn from the online default mix under one seed, so every job gets
/// a distinct (family, size, weight, CCR) draw while ids, tenant
/// attribution, and arrival instants stay stable across runs and
/// suites. The offline tests that only need DAG diversity iterate
/// `job_batch(..).iter().map(|j| &j.dag)`.
pub fn job_batch(jobs: usize, tenants: u32, mean_gap: f64, seed: u64) -> Vec<JobSpec> {
    arrival_script(&ArrivalSpec::default_mix(jobs, tenants, mean_gap, seed))
}

/// The four paper presets of the slotted scheduler family.
pub fn presets() -> [(&'static str, ListConfig); 4] {
    [
        ("BA", ListConfig::ba()),
        ("BA-static", ListConfig::ba_static()),
        ("OIHSA", ListConfig::oihsa()),
        ("OIHSA-probe", ListConfig::oihsa_probing()),
    ]
}

/// One instance per workload family for a given seed: two paper
/// settings plus three structured kernels on distinct platforms.
pub fn families(seed: u64) -> Vec<(String, TaskGraph, Topology)> {
    let mut out = Vec::new();
    for setting in [Setting::Homogeneous, Setting::Heterogeneous] {
        let inst = generate(&InstanceConfig::paper(setting, 8, 4.0, seed).with_tasks(36));
        out.push((format!("paper-{setting:?}"), inst.dag, inst.topo));
    }
    for (k, platform, ccr) in [
        (Kernel::ForkJoin, Platform::WanHeterogeneous, 8.0),
        (Kernel::GaussElim, Platform::Star, 3.0),
        (Kernel::Stencil, Platform::FatTree, 5.0),
    ] {
        let topo = platform.instantiate(8, seed);
        let raw = k.instantiate(36);
        let dag = scale_to_ccr(&raw, ccr, topo.mean_proc_speed(), topo.mean_link_speed());
        out.push((format!("{}-{}", k.name(), platform.name()), dag, topo));
    }
    out
}
