//! Cross-crate robustness integration: perturbed execution must be a
//! conservative extension of plain execution, and failure-aware repair
//! must produce audit-clean schedules after **every** possible single
//! processor or link failure, for every scheduler whose output replays.

use es_core::validate::audit;
use es_core::{
    execute, execute_with, repair, FaultPlan, FaultSpec, IdealScheduler, ListScheduler, Scheduler,
};
use es_dag::gen::structured::{fork_join, gauss_elim, stencil_1d};
use es_dag::TaskGraph;
use es_net::gen::{self, SpeedDist};
use es_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every scheduler whose schedules the replay executor accepts (BBSA's
/// fluid placements are rejected by design and exercised elsewhere).
fn replayable_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::ba_static()),
        Box::new(ListScheduler::oihsa()),
        Box::new(ListScheduler::oihsa_probing()),
        Box::new(IdealScheduler::new()),
    ]
}

fn dags() -> Vec<TaskGraph> {
    vec![
        fork_join(5, 20.0, 15.0),
        gauss_elim(5, 12.0, 8.0),
        stencil_1d(4, 4, 7.0, 5.0),
    ]
}

fn topologies() -> Vec<(&'static str, Topology)> {
    let mut rng = StdRng::seed_from_u64(99);
    let hom = SpeedDist::Fixed(1.0);
    let het = SpeedDist::UniformInt(1, 10);
    vec![
        ("star-hom", gen::star(4, hom, hom, &mut rng)),
        ("star-het", gen::star(4, het, het, &mut rng)),
        ("ring", gen::switch_ring(3, 2, hom, hom, &mut rng)),
        (
            "wan-het",
            gen::random_switched_wan(&gen::WanConfig::heterogeneous(8), &mut rng),
        ),
    ]
}

#[test]
fn zero_fault_plan_reproduces_execute_bitwise_for_every_scheduler() {
    for dag in &dags() {
        for (tname, topo) in &topologies() {
            for sched in replayable_schedulers() {
                let s = sched
                    .schedule(dag, topo)
                    .unwrap_or_else(|e| panic!("{} on {tname}: {e}", sched.name()));
                let plain = execute(dag, topo, &s)
                    .unwrap_or_else(|e| panic!("{} on {tname}: {e}", sched.name()));
                let perturbed = execute_with(dag, topo, &s, &FaultPlan::none())
                    .unwrap_or_else(|e| panic!("{} on {tname}: {e}", sched.name()));
                let ctx = format!("{} on {tname}", sched.name());
                assert!(perturbed.is_feasible(), "{ctx}");
                assert_eq!(
                    plain.makespan.to_bits(),
                    perturbed.execution.makespan.to_bits(),
                    "{ctx}: makespan"
                );
                for (i, (a, b)) in plain
                    .tasks
                    .iter()
                    .zip(&perturbed.execution.tasks)
                    .enumerate()
                {
                    assert_eq!(a.proc, b.proc, "{ctx}: task {i} proc");
                    assert_eq!(
                        a.start.to_bits(),
                        b.start.to_bits(),
                        "{ctx}: task {i} start"
                    );
                    assert_eq!(
                        a.finish.to_bits(),
                        b.finish.to_bits(),
                        "{ctx}: task {i} finish"
                    );
                }
                for (e, (ha, hb)) in plain
                    .hop_times
                    .iter()
                    .zip(&perturbed.execution.hop_times)
                    .enumerate()
                {
                    assert_eq!(ha.len(), hb.len(), "{ctx}: edge {e} hop count");
                    for (k, (x, y)) in ha.iter().zip(hb).enumerate() {
                        assert_eq!(x.0.to_bits(), y.0.to_bits(), "{ctx}: e{e} hop {k} start");
                        assert_eq!(x.1.to_bits(), y.1.to_bits(), "{ctx}: e{e} hop {k} finish");
                    }
                }
                // Domination: with no faults the replay never finishes a
                // task later than the schedule promised.
                assert!(
                    perturbed.slack.iter().all(|&s| s >= -1e-9),
                    "{ctx}: negative slack without faults"
                );
            }
        }
    }
}

#[test]
fn soft_only_plan_repair_is_identity() {
    let dag = gauss_elim(5, 12.0, 8.0);
    let mut rng = StdRng::seed_from_u64(7);
    let topo = gen::random_switched_wan(&gen::WanConfig::heterogeneous(8), &mut rng);
    for sched in [ListScheduler::ba_static(), ListScheduler::oihsa()] {
        let s = sched.schedule(&dag, &topo).expect("connected");
        let plan = FaultPlan::seeded(&dag, &topo, &FaultSpec::soft(0.6, s.makespan), 0xD15EA5E);
        assert!(!plan.has_hard_failures());
        let out = repair(&dag, &topo, &s, &plan).expect("identity repair");
        assert!(out.moved_tasks.is_empty());
        assert_eq!(out.rerouted_comms, 0);
        assert!(!out.used_fallback);
        assert_eq!(s.makespan.to_bits(), out.schedule.makespan.to_bits());
        for (a, b) in s.tasks.iter().zip(&out.schedule.tasks) {
            assert_eq!(a.proc, b.proc);
            assert_eq!(a.start.to_bits(), b.start.to_bits());
        }
    }
}

#[test]
fn repair_is_audit_clean_after_every_single_processor_failure() {
    let dag = gauss_elim(5, 12.0, 8.0);
    for (tname, topo) in &topologies() {
        for sched in [ListScheduler::ba_static(), ListScheduler::oihsa()] {
            let s = sched.schedule(&dag, topo).expect("connected");
            for victim in topo.proc_ids() {
                if topo.proc_count() < 2 {
                    continue;
                }
                let fail_at = 0.5 * s.makespan;
                let plan = FaultPlan::kill_processor(topo, victim, fail_at);
                let ctx = format!("{} on {tname}, proc {} dead", sched.name(), victim.index());
                let out = repair(&dag, topo, &s, &plan).unwrap_or_else(|e| panic!("{ctx}: {e}"));
                let report = audit(&dag, topo, &out.schedule);
                assert!(report.is_clean(), "{ctx}:\n{}", report.render_human());
                // Nothing may *start* on the dead processor at or after
                // its fail time.
                for (i, t) in out.schedule.tasks.iter().enumerate() {
                    if t.proc == victim {
                        assert!(
                            t.start < fail_at,
                            "{ctx}: task {i} starts at {} on the dead processor",
                            t.start
                        );
                    }
                }
                // The repaired schedule replays.
                execute(&dag, topo, &out.schedule).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            }
        }
    }
}

#[test]
fn repair_is_audit_clean_after_every_single_link_failure() {
    let dag = fork_join(5, 20.0, 15.0);
    for (tname, topo) in &topologies() {
        for sched in [ListScheduler::ba_static(), ListScheduler::oihsa()] {
            let s = sched.schedule(&dag, topo).expect("connected");
            for victim in topo.link_ids() {
                let plan = FaultPlan::kill_link(topo, victim, 0.3 * s.makespan);
                let ctx = format!("{} on {tname}, link {} dead", sched.name(), victim.index());
                let out = match repair(&dag, topo, &s, &plan) {
                    Ok(o) => o,
                    // A cut that disconnects every processor pair with
                    // pending traffic is allowed to be unroutable only
                    // if it isolates all survivors — not on these
                    // connected fixtures.
                    Err(e) => panic!("{ctx}: {e}"),
                };
                let report = audit(&dag, topo, &out.schedule);
                assert!(report.is_clean(), "{ctx}:\n{}", report.render_human());
                // Every communication was re-planned over the masked
                // topology, so no route may use the dead link.
                for (e, c) in out.schedule.comms.iter().enumerate() {
                    if let es_core::CommPlacement::Slotted { route, .. } = c {
                        assert!(
                            route.iter().all(|h| h.link != victim),
                            "{ctx}: edge {e} routed over the dead link"
                        );
                    }
                }
            }
        }
    }
}

/// ISSUE 4/5 satellite: failure-aware repair must be tuning-invariant.
/// For every single-link failure, `repair_with` under the optimized
/// tuning (route cache + indexed gaps, exercised through the masked
/// repair views) and under the forced-overlay tuning (ISSUE 5's
/// speculative probing — structurally inert in the probe-free rebuild,
/// which this pins down) must reproduce the reference-tuning repair bit
/// for bit, and the repaired schedule must stay audit-clean.
#[test]
fn repair_cache_equivalence() {
    use es_core::{diff_schedules, repair_with, ProbeParallelism, Tuning};
    let overlay = Tuning {
        parallel_probe: ProbeParallelism::Workers(2),
        ..Tuning::optimized()
    };
    for dag in &dags() {
        for (tname, topo) in &topologies() {
            for sched in [ListScheduler::ba_static(), ListScheduler::oihsa()] {
                let s = sched.schedule(dag, topo).expect("connected");
                for victim in topo.link_ids() {
                    let plan = FaultPlan::kill_link(topo, victim, 0.3 * s.makespan);
                    let ctx = format!("{} on {tname}, link {} dead", sched.name(), victim.index());
                    let off = repair_with(dag, topo, &s, &plan, Tuning::reference())
                        .unwrap_or_else(|e| panic!("{ctx} (reference): {e}"));
                    for (label, tuning) in [("cache on", Tuning::optimized()), ("overlay", overlay)]
                    {
                        let on = repair_with(dag, topo, &s, &plan, tuning)
                            .unwrap_or_else(|e| panic!("{ctx} ({label}): {e}"));
                        if let Some(d) = diff_schedules(&on.schedule, &off.schedule) {
                            panic!("{ctx}/{label}: repair diverged under tuning: {d}");
                        }
                        assert_eq!(on.moved_tasks, off.moved_tasks, "{ctx}/{label}: moved set");
                        assert_eq!(
                            on.rerouted_comms, off.rerouted_comms,
                            "{ctx}/{label}: reroutes"
                        );
                        assert_eq!(
                            on.used_fallback, off.used_fallback,
                            "{ctx}/{label}: fallback"
                        );
                        let report = audit(dag, topo, &on.schedule);
                        assert!(
                            report.is_clean(),
                            "{ctx}/{label}:\n{}",
                            report.render_human()
                        );
                    }
                }
            }
        }
    }
}
