//! Per-backend integration suite for the pluggable link models
//! (`es_core::LinkBackend`): every backend must produce valid
//! schedules across the workload families, stay bitwise-deterministic
//! across runs and tunings, reduce to the slot backend where the
//! models coincide, and survive failure-aware repair audit-clean.

mod common;

use common::{dags, families, presets, topologies, SEEDS};
use es_core::{
    diff_schedules,
    validate::{audit, validate},
    FaultPlan, LinkBackend, ListConfig, ListScheduler, SafTiming, Scheduler, Switching, Tuning,
};

/// Schedulers native to a backend: the slotted presets (with the
/// backend's switching adaptation) on slot-family models, BBSA on the
/// fluid model.
fn native_schedulers(backend: LinkBackend) -> Vec<(&'static str, Box<dyn Scheduler>)> {
    match backend {
        LinkBackend::SlotQueue | LinkBackend::StoreForward(_) => presets()
            .into_iter()
            .map(|(name, cfg)| {
                (
                    name,
                    Box::new(ListScheduler::with_config(backend.adapt(cfg))) as Box<dyn Scheduler>,
                )
            })
            .collect(),
        LinkBackend::Fluid => vec![(
            "BBSA",
            Box::new(es_core::BbsaScheduler::new()) as Box<dyn Scheduler>,
        )],
    }
}

/// Every backend × workload family × native scheduler: the schedule
/// must validate against the backend's transformed instance.
#[test]
fn every_backend_schedules_every_family_validly() {
    for &seed in &SEEDS[..2] {
        for (family, dag, topo) in families(seed) {
            for backend in LinkBackend::all() {
                let (dag, topo) = backend.prepare(&dag, &topo);
                for (name, sched) in native_schedulers(backend) {
                    let s = sched
                        .schedule(&dag, &topo)
                        .unwrap_or_else(|e| panic!("{name}/{backend}/{family}: {e}"));
                    if let Err(errs) = validate(&dag, &topo, &s) {
                        panic!("{name}/{backend}/{family}: invalid:\n{}", errs.join("\n"));
                    }
                }
            }
        }
    }
}

/// Determinism double-run per backend: scheduling the same prepared
/// instance twice — through two independently-built transforms — must
/// agree bit for bit (prepare itself must be deterministic too).
#[test]
fn backend_runs_are_bitwise_deterministic() {
    let seed = SEEDS[0];
    for (family, dag, topo) in families(seed) {
        for backend in LinkBackend::all() {
            let (d1, t1) = backend.prepare(&dag, &topo);
            let (d2, t2) = backend.prepare(&dag, &topo);
            for (name, sched) in native_schedulers(backend) {
                let a = sched.schedule(&d1, &t1).expect("first run");
                let b = sched.schedule(&d2, &t2).expect("second run");
                if let Some(d) = diff_schedules(&a, &b) {
                    panic!("{name}/{backend}/{family}: double-run diverged: {d}");
                }
            }
        }
    }
}

/// The differential oracle generalized to the store-and-forward
/// backend: optimized tuning must reproduce the reference schedule
/// bitwise on the transformed instances too (same law the slot
/// backend has always obeyed).
#[test]
fn saf_backend_optimized_matches_reference_bitwise() {
    let backend = LinkBackend::StoreForward(SafTiming::new(0.5, 0.25));
    for &seed in &SEEDS[..4] {
        for (family, dag, topo) in families(seed) {
            let (dag, topo) = backend.prepare(&dag, &topo);
            for (name, cfg) in presets() {
                let cfg = backend.adapt(cfg);
                let run = |tuning: Tuning| {
                    ListScheduler::with_config(ListConfig { tuning, ..cfg })
                        .schedule(&dag, &topo)
                        .unwrap_or_else(|e| panic!("{name}/{family}/seed {seed}: {e}"))
                };
                let opt = run(Tuning::optimized());
                let refr = run(Tuning::reference());
                if let Some(d) = diff_schedules(&opt, &refr) {
                    panic!("{name}/{family}/seed {seed}: saf diverged: {d}");
                }
            }
        }
    }
}

/// Where the models coincide the backends must too: with integral
/// costs, unit quantum and zero latency, the store-and-forward
/// transform is numerically the identity, so its schedules must be
/// bitwise equal to the slot backend run under store-and-forward
/// switching.
#[test]
fn saf_reduces_to_slot_on_integral_costs() {
    let saf = LinkBackend::StoreForward(SafTiming::new(1.0, 0.0));
    for dag in &dags() {
        for (tname, topo) in &topologies() {
            let (qdag, qtopo) = saf.prepare(dag, topo);
            for (name, cfg) in presets() {
                let on_saf = ListScheduler::with_config(saf.adapt(cfg))
                    .schedule(&qdag, &qtopo)
                    .unwrap_or_else(|e| panic!("{name}/{tname}: {e}"));
                let on_slot = ListScheduler::with_config(ListConfig {
                    switching: Switching::StoreAndForward,
                    ..cfg
                })
                .schedule(dag, topo)
                .unwrap_or_else(|e| panic!("{name}/{tname}: {e}"));
                if let Some(d) = diff_schedules(&on_saf, &on_slot) {
                    panic!("{name}/{tname}: saf != slot on divisible costs: {d}");
                }
            }
        }
    }
}

/// Failure-aware repair on the store-and-forward backend: kill the
/// busiest processor mid-schedule and repair; the result must be
/// audit-clean against the transformed instance.
#[test]
fn saf_repair_is_audit_clean() {
    let backend = LinkBackend::StoreForward(SafTiming::new(1.0, 0.5));
    for &seed in &SEEDS[..2] {
        for (family, dag, topo) in families(seed) {
            let (dag, topo) = backend.prepare(&dag, &topo);
            let sched = ListScheduler::with_config(backend.adapt(ListConfig::oihsa()));
            let s = sched.schedule(&dag, &topo).expect("schedulable");
            let victim = s
                .tasks
                .iter()
                .max_by(|a, b| a.finish.total_cmp(&b.finish))
                .expect("non-empty")
                .proc;
            let kill = FaultPlan::kill_processor(&topo, victim, s.makespan / 2.0);
            let outcome = es_core::repair(&dag, &topo, &s, &kill)
                .unwrap_or_else(|e| panic!("{family}/seed {seed}: repair: {e}"));
            let report = audit(&dag, &topo, &outcome.schedule);
            assert_eq!(
                report.error_count(),
                0,
                "{family}/seed {seed}: repaired saf schedule not audit-clean:\n{}",
                report.render_human()
            );
        }
    }
}

/// The robustness sweep runs end-to-end on every backend (the sweep's
/// schedulers replay and repair on the transformed instances), with
/// sane statistics.
#[test]
fn robustness_sweep_runs_on_every_backend() {
    use es_sim::{run_robustness_backend, RobustnessSpec};
    let spec = RobustnessSpec {
        setting: es_workload::Setting::Homogeneous,
        processors: 4,
        ccr: 1.0,
        reps: 2,
        base_seed: 7,
        tasks: Some(18),
        intensities: vec![0.4],
        threads: 2,
    };
    for backend in LinkBackend::all() {
        let cells = run_robustness_backend(&spec, backend);
        assert_eq!(cells.len(), es_sim::ROBUSTNESS_SCHEDULERS.len());
        for c in &cells {
            assert!(c.mean_degradation > 0.0, "{backend}/{}", c.scheduler);
            for r in [c.infeasible_rate, c.repair_success_rate, c.fallback_rate] {
                assert!((0.0..=1.0).contains(&r), "{backend}/{}: {r}", c.scheduler);
            }
        }
    }
    // And the slot backend is exactly the historical sweep.
    let direct = es_sim::run_robustness(&spec);
    let via_backend = run_robustness_backend(&spec, LinkBackend::SlotQueue);
    for (a, b) in direct.iter().zip(&via_backend) {
        assert_eq!(a.mean_degradation.to_bits(), b.mean_degradation.to_bits());
        assert_eq!(
            a.repair_success_rate.to_bits(),
            b.repair_success_rate.to_bits()
        );
    }
}

/// The cross-backend comparison harness agrees with scheduling by hand
/// on the same instance stream (pins the wiring the `backends` CLI
/// subcommand and EXPERIMENTS.md table rely on).
#[test]
fn backend_comparison_matches_direct_scheduling() {
    use es_sim::backends::{compare_backends, BackendCompareSpec};
    use es_workload::{cell_seed, generate, InstanceConfig, Setting};

    let mut spec = BackendCompareSpec::paper_cell(2, Some(16), 99);
    spec.processors = 4;
    spec.threads = 1;
    let rows = compare_backends(&spec);
    let slot_oihsa = rows
        .iter()
        .find(|r| r.backend == "slot" && r.scheduler == "oihsa")
        .expect("slot/oihsa row");

    let mut sum = 0.0;
    for rep in 0..spec.reps {
        let seed = cell_seed(spec.base_seed, Setting::Homogeneous, 4, 1.0, rep);
        let mut cfg = InstanceConfig::paper(Setting::Homogeneous, 4, 1.0, seed);
        cfg.tasks = spec.tasks;
        let inst = generate(&cfg);
        sum += ListScheduler::oihsa()
            .schedule(&inst.dag, &inst.topo)
            .expect("schedulable")
            .makespan;
    }
    #[allow(clippy::cast_precision_loss)]
    let mean = sum / spec.reps as f64;
    assert_eq!(slot_oihsa.mean_makespan.to_bits(), mean.to_bits());
}
