//! Determinism: the whole pipeline — generation, scheduling, the
//! parallel experiment runner — must be bit-reproducible from seeds.

use es_core::{BbsaScheduler, ListScheduler, Scheduler};
use es_sim::{parallel_map, run_cell, CellSpec};
use es_workload::{generate, InstanceConfig, Setting};

#[test]
fn instances_are_bit_identical_across_generations() {
    let cfg = InstanceConfig::paper(Setting::Heterogeneous, 12, 3.0, 777).with_tasks(70);
    let a = generate(&cfg);
    let b = generate(&cfg);
    assert_eq!(a.dag.task_count(), b.dag.task_count());
    for t in a.dag.task_ids() {
        assert_eq!(a.dag.weight(t).to_bits(), b.dag.weight(t).to_bits());
    }
    for e in a.dag.edge_ids() {
        assert_eq!(a.dag.cost(e).to_bits(), b.dag.cost(e).to_bits());
        assert_eq!(a.dag.edge(e).src, b.dag.edge(e).src);
        assert_eq!(a.dag.edge(e).dst, b.dag.edge(e).dst);
    }
    for l in a.topo.link_ids() {
        assert_eq!(
            a.topo.link_speed(l).to_bits(),
            b.topo.link_speed(l).to_bits()
        );
    }
}

#[test]
fn schedules_are_bit_identical_across_runs() {
    let cfg = InstanceConfig::paper(Setting::Heterogeneous, 10, 2.0, 4242).with_tasks(60);
    let inst = generate(&cfg);
    for sched in [
        Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
        Box::new(ListScheduler::ba_static()),
        Box::new(ListScheduler::oihsa()),
        Box::new(BbsaScheduler::new()),
    ] {
        let s1 = sched.schedule(&inst.dag, &inst.topo).unwrap();
        let s2 = sched.schedule(&inst.dag, &inst.topo).unwrap();
        assert_eq!(
            s1.makespan.to_bits(),
            s2.makespan.to_bits(),
            "{}",
            sched.name()
        );
        for (a, b) in s1.tasks.iter().zip(&s2.tasks) {
            assert_eq!(a.proc, b.proc);
            assert_eq!(a.start.to_bits(), b.start.to_bits());
            assert_eq!(a.finish.to_bits(), b.finish.to_bits());
        }
    }
}

#[test]
fn cell_results_do_not_depend_on_thread_count() {
    let specs: Vec<CellSpec> = [0.5, 2.0]
        .iter()
        .map(|&ccr| CellSpec {
            setting: Setting::Homogeneous,
            processors: 4,
            ccr,
            reps: 2,
            base_seed: 11,
            tasks: Some(30),
            validate: false,
            strong_baseline: false,
        })
        .collect();

    let seq = parallel_map(&specs, 1, run_cell);
    let par = parallel_map(&specs, 4, run_cell);
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.ba_makespan.to_bits(), b.ba_makespan.to_bits());
        assert_eq!(a.oihsa_makespan.to_bits(), b.oihsa_makespan.to_bits());
        assert_eq!(a.bbsa_makespan.to_bits(), b.bbsa_makespan.to_bits());
    }
}

#[test]
fn different_seeds_give_different_instances() {
    let a = generate(&InstanceConfig::paper(Setting::Homogeneous, 8, 1.0, 1).with_tasks(60));
    let b = generate(&InstanceConfig::paper(Setting::Homogeneous, 8, 1.0, 2).with_tasks(60));
    let costs_differ = a
        .dag
        .edge_ids()
        .take(a.dag.edge_count().min(b.dag.edge_count()))
        .any(|e| e.index() < b.dag.edge_count() && a.dag.cost(e) != b.dag.cost(e));
    assert!(
        costs_differ || a.dag.edge_count() != b.dag.edge_count(),
        "seeds 1 and 2 produced identical instances"
    );
}

#[test]
fn run_cell_repeatable_with_strong_baseline() {
    let spec = CellSpec {
        setting: Setting::Heterogeneous,
        processors: 4,
        ccr: 1.0,
        reps: 2,
        base_seed: 5,
        tasks: Some(25),
        validate: true,
        strong_baseline: true,
    };
    let a = run_cell(&spec);
    let b = run_cell(&spec);
    assert_eq!(a.ba_makespan.to_bits(), b.ba_makespan.to_bits());
    assert_eq!(
        a.ba_probe_makespan.unwrap().to_bits(),
        b.ba_probe_makespan.unwrap().to_bits()
    );
    assert_eq!(
        a.oihsa_probe_improvement.unwrap().to_bits(),
        b.oihsa_probe_improvement.unwrap().to_bits()
    );
}
