//! Cross-crate integration: every scheduler × every topology family ×
//! several DAG shapes must produce valid schedules with sane bounds.

mod common;

use common::{dags, job_batch, schedulers, topologies};
use es_core::config::{
    EdgeEst, EdgeOrder, Insertion, ListConfig, ProcSelection, Routing, Switching,
};
use es_core::{validate::validate, CommPlacement, IdealScheduler, ListScheduler, Scheduler};
use es_dag::gen::structured::{chain, fork_join, gauss_elim};
use es_dag::{critical_path, TaskGraphBuilder};
use es_net::gen::{self, SpeedDist};
use es_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_schedulers_valid_on_all_platforms() {
    // A seeded multi-tenant batch instead of the fixed kernel set:
    // every job carries a distinct (family, size, weight, CCR) draw,
    // so the matrix also covers mixed scales per run.
    for job in &job_batch(6, 3, 4.0, 0xBA7C4) {
        for (tname, topo) in &topologies() {
            for sched in schedulers() {
                let s = sched.schedule(&job.dag, topo).unwrap_or_else(|e| {
                    panic!("{} on {tname} (job {}): {e}", sched.name(), job.id)
                });
                if let Err(errs) = validate(&job.dag, topo, &s) {
                    panic!(
                        "{} on {tname} (job {} {}): invalid schedule:\n{}",
                        sched.name(),
                        job.id,
                        job.label,
                        errs.join("\n")
                    );
                }
            }
        }
    }
}

#[test]
fn makespan_respects_computation_lower_bound() {
    // No schedule can beat total-work / total-speed, nor the weight of
    // the heaviest task on the fastest processor.
    for dag in &dags() {
        for (tname, topo) in &topologies() {
            let total_work: f64 = dag.task_ids().map(|t| dag.weight(t)).sum();
            let total_speed: f64 = topo.proc_ids().map(|p| topo.proc_speed(p)).sum();
            let max_speed = topo
                .proc_ids()
                .map(|p| topo.proc_speed(p))
                .fold(0.0, f64::max);
            let max_weight = dag.task_ids().map(|t| dag.weight(t)).fold(0.0, f64::max);
            let lb = (total_work / total_speed).max(max_weight / max_speed);
            for sched in schedulers() {
                let s = sched.schedule(dag, topo).expect("schedulable");
                assert!(
                    s.makespan + 1e-6 >= lb,
                    "{} on {tname}: makespan {} beats lower bound {lb}",
                    sched.name(),
                    s.makespan
                );
            }
        }
    }
}

#[test]
fn single_processor_makespan_is_exact() {
    // With one processor everything serialises and communication is
    // free: makespan = total work / speed, for every scheduler.
    let mut b = Topology::builder();
    b.add_processor(2.0);
    let topo = b.build().unwrap();
    for dag in &dags() {
        let total_work: f64 = dag.task_ids().map(|t| dag.weight(t)).sum();
        for sched in schedulers() {
            let s = sched.schedule(dag, &topo).expect("single proc");
            assert!(
                (s.makespan - total_work / 2.0).abs() < 1e-6,
                "{}: {} != {}",
                sched.name(),
                s.makespan,
                total_work / 2.0
            );
            assert!(s.comms.iter().all(|c| matches!(c, CommPlacement::Local)));
        }
    }
}

#[test]
fn independent_tasks_reach_perfect_parallelism() {
    let mut b = TaskGraphBuilder::new();
    for _ in 0..4 {
        b.add_task(10.0);
    }
    let dag = b.build().unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let topo = gen::star(4, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
    // With no communication at all, every selection strategy must find
    // the perfectly parallel optimum.
    for sched in schedulers() {
        let s = sched.schedule(&dag, &topo).expect("ok");
        assert_eq!(s.makespan, 10.0, "{}", sched.name());
    }
}

#[test]
fn probing_ba_stays_near_serial_upper_bound() {
    // Greedy per-task EFT gives no strict global guarantee (an early
    // locally-optimal placement can hurt later tasks), but on these
    // small regular fixtures it must stay within 3x of the trivial
    // serialise-on-the-fastest-processor schedule — a coarse tripwire
    // for pathological regressions. (3x, not 2x: on heterogeneous
    // stars the serial bound ignores communication entirely, and a
    // single fast processor can push the ratio past 2 on unlucky
    // speed draws.)
    //
    // RETIGHTEN(rand): the unlucky draws that need 3x come from the
    // vendored xoshiro RNG stub, whose stream differs from upstream
    // `rand`'s StdRng. If the workspace ever swaps the stub for the
    // real crate, re-measure these fixtures and tighten the factor.
    for dag in &dags() {
        for (tname, topo) in &topologies() {
            let best_speed = topo
                .proc_ids()
                .map(|p| topo.proc_speed(p))
                .fold(0.0, f64::max);
            let serial: f64 = dag.task_ids().map(|t| dag.weight(t)).sum::<f64>() / best_speed;
            let s = ListScheduler::ba().schedule(dag, topo).expect("ok");
            assert!(
                s.makespan <= 3.0 * serial + 1e-6,
                "BA on {tname}: {} far beyond serial {serial}",
                s.makespan
            );
        }
    }
}

#[test]
fn retighten_marker_stays_next_to_the_loose_tripwire() {
    // Keeps the RETIGHTEN(rand) note and the 3.0x factor from drifting
    // apart: whoever tightens the bound must revisit (and remove) the
    // marker in the same change.
    let src = include_str!("integration_schedulers.rs");
    assert!(src.contains("RETIGHTEN(rand)"));
    assert!(src.contains("3.0 * serial"));
}

#[test]
fn ideal_scheduler_lower_bounds_contention_aware_on_shared_star() {
    // Heavy contention: classic-model estimates are optimistic.
    let dag = fork_join(6, 10.0, 50.0);
    let mut rng = StdRng::seed_from_u64(11);
    let topo = gen::star(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
    let ideal = IdealScheduler::new().schedule(&dag, &topo).unwrap();
    for sched in schedulers() {
        let s = sched.schedule(&dag, &topo).unwrap();
        assert!(
            ideal.makespan <= s.makespan + 1e-6,
            "{} beat the contention-free bound",
            sched.name()
        );
    }
}

#[test]
fn every_list_config_combination_works() {
    // Exhaustive sweep over the configuration space on one fixture: no
    // combination may crash or produce an invalid schedule.
    let dag = gauss_elim(5, 10.0, 20.0);
    let mut rng = StdRng::seed_from_u64(17);
    let topo = gen::random_switched_wan(&gen::WanConfig::heterogeneous(8), &mut rng);
    for proc_selection in [
        ProcSelection::EarliestFinishProbe,
        ProcSelection::HybridStatic,
    ] {
        for routing in [Routing::Bfs, Routing::ModifiedDijkstra] {
            for edge_order in [EdgeOrder::Arrival, EdgeOrder::CostDesc, EdgeOrder::CostAsc] {
                for edge_est in [EdgeEst::SourceFinish, EdgeEst::ReadyTime] {
                    for (insertion, switching) in [
                        (Insertion::Basic, Switching::CutThrough),
                        (Insertion::Optimal, Switching::CutThrough),
                        (Insertion::Basic, Switching::StoreAndForward),
                        (Insertion::Optimal, Switching::StoreAndForward),
                    ] {
                        let cfg = ListConfig {
                            name: "sweep",
                            priority: es_dag::Priority::BottomLevel,
                            proc_selection,
                            routing,
                            edge_order,
                            edge_est,
                            switching,
                            insertion,
                            tuning: es_core::Tuning::optimized(),
                        };
                        let s = ListScheduler::with_config(cfg)
                            .schedule(&dag, &topo)
                            .unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
                        if let Err(errs) = validate(&dag, &topo, &s) {
                            panic!("{cfg:?}: {}", errs.join("\n"));
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn chain_on_fast_network_still_bounded_by_critical_path() {
    let dag = chain(8, 5.0, 1.0);
    let mut rng = StdRng::seed_from_u64(23);
    let topo = gen::star(4, SpeedDist::Fixed(1.0), SpeedDist::Fixed(10.0), &mut rng);
    let cp_work_only: f64 = dag.task_ids().map(|t| dag.weight(t)).sum();
    for sched in schedulers() {
        let s = sched.schedule(&dag, &topo).unwrap();
        // A chain cannot run faster than its serial work on a speed-1
        // processor; and no sane scheduler should pay more than the
        // fully-remote critical path either.
        assert!(s.makespan + 1e-6 >= cp_work_only, "{}", sched.name());
        assert!(
            s.makespan <= critical_path(&dag) + 1e-6,
            "{} paid more than the fully-remote critical path",
            sched.name()
        );
    }
}
