//! Mutation testing of the validator: corrupt valid schedules in every
//! way the model forbids and check the validator objects each time.

mod common;

use common::job_batch;
use es_core::CommPlacement;
use es_core::{validate::validate, BbsaScheduler, ListScheduler, Schedule, Scheduler};
use es_dag::gen::structured::fork_join;
use es_dag::TaskGraph;
use es_net::gen::{self, SpeedDist};
use es_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fixture guaranteed to contain remote (link-scheduled)
/// communications for both the slotted and the fluid scheduler.
fn fixture() -> (TaskGraph, Topology) {
    let dag = fork_join(5, 50.0, 10.0);
    let mut rng = StdRng::seed_from_u64(3);
    let topo = gen::star(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
    (dag, topo)
}

fn slotted_schedule() -> (TaskGraph, Topology, Schedule) {
    let (dag, topo) = fixture();
    let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
    assert!(validate(&dag, &topo, &s).is_ok());
    assert!(s
        .comms
        .iter()
        .any(|c| matches!(c, CommPlacement::Slotted { .. })));
    (dag, topo, s)
}

fn fluid_schedule() -> (TaskGraph, Topology, Schedule) {
    let (dag, topo) = fixture();
    let s = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
    assert!(validate(&dag, &topo, &s).is_ok());
    assert!(s
        .comms
        .iter()
        .any(|c| matches!(c, CommPlacement::Fluid { .. })));
    (dag, topo, s)
}

fn assert_rejected(dag: &TaskGraph, topo: &Topology, s: &Schedule, needle: &str) {
    let errs = validate(dag, topo, s).expect_err("corruption must be detected");
    assert!(
        errs.iter().any(|e| e.contains(needle)),
        "expected an error containing {needle:?}, got: {errs:#?}"
    );
}

#[test]
fn detects_task_on_wrong_processor_speed() {
    let (dag, topo, mut s) = slotted_schedule();
    // Stretch one task's finish time: finish != start + w/s.
    s.tasks[0].finish += 1.0;
    s.makespan = Schedule::compute_makespan(&s.tasks);
    assert_rejected(&dag, &topo, &s, "start + w/s");
}

#[test]
fn detects_negative_start() {
    let (dag, topo, mut s) = slotted_schedule();
    let w = dag.weight(es_dag::TaskId(0));
    s.tasks[0].start = -5.0;
    s.tasks[0].finish = -5.0 + w;
    assert_rejected(&dag, &topo, &s, "negative");
}

#[test]
fn detects_processor_overlap() {
    let (dag, topo, mut s) = slotted_schedule();
    // Find two tasks on different processors and force them together.
    let p0 = s.tasks[1].proc;
    for i in 2..s.tasks.len() {
        if s.tasks[i].proc != p0 {
            s.tasks[i].proc = p0;
            s.tasks[i].start = s.tasks[1].start;
            s.tasks[i].finish = s.tasks[1].start + dag.weight(es_dag::TaskId(i as u32));
            break;
        }
    }
    s.makespan = Schedule::compute_makespan(&s.tasks);
    let errs = validate(&dag, &topo, &s).expect_err("must be detected");
    assert!(!errs.is_empty());
}

#[test]
fn detects_destination_starting_before_arrival() {
    let (dag, topo, mut s) = slotted_schedule();
    // The join task depends on remote data; pull it to time 0.
    let last = s.tasks.len() - 1;
    let w = dag.weight(es_dag::TaskId(last as u32));
    s.tasks[last].start = 0.0;
    s.tasks[last].finish = w / topo.proc_speed(s.tasks[last].proc);
    s.makespan = Schedule::compute_makespan(&s.tasks);
    let errs = validate(&dag, &topo, &s).expect_err("must be detected");
    assert!(errs.iter().any(|e| e.contains("before")), "{errs:#?}");
}

#[test]
fn detects_wrong_slot_duration() {
    let (dag, topo, mut s) = slotted_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Slotted { times, .. } = c {
            times[0].1 += 3.0; // stretch the first hop
            break;
        }
    }
    assert_rejected(&dag, &topo, &s, "duration");
}

#[test]
fn detects_causality_violation_along_route() {
    let (dag, topo, mut s) = slotted_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Slotted { times, .. } = c {
            if times.len() >= 2 {
                // Make the second hop finish before the first (shift
                // both endpoints to keep durations consistent).
                let d = times[1].1 - times[1].0;
                times[1].0 = times[0].0 - 1.0;
                times[1].1 = times[1].0 + d;
                break;
            }
        }
    }
    assert_rejected(&dag, &topo, &s, "causality");
}

#[test]
fn detects_broken_route_chain() {
    let (dag, topo, mut s) = slotted_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Slotted { route, .. } = c {
            if route.len() >= 2 {
                route.swap(0, 1);
                break;
            }
        }
    }
    let errs = validate(&dag, &topo, &s).expect_err("must be detected");
    assert!(
        errs.iter()
            .any(|e| e.contains("chain") || e.contains("starts at")),
        "{errs:#?}"
    );
}

#[test]
fn detects_route_ending_at_wrong_processor() {
    let (dag, topo, mut s) = slotted_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Slotted { route, .. } = c {
            route.pop();
            break;
        }
    }
    let errs = validate(&dag, &topo, &s).expect_err("must be detected");
    assert!(!errs.is_empty());
}

#[test]
fn detects_link_overcommitment_slotted() {
    let (dag, topo, mut s) = slotted_schedule();
    // Copy one slotted comm's placement onto another so they collide.
    let mut template: Option<CommPlacement> = None;
    let mut victim = None;
    for (i, c) in s.comms.iter().enumerate() {
        if matches!(c, CommPlacement::Slotted { .. }) {
            if template.is_none() {
                template = Some(c.clone());
            } else {
                victim = Some(i);
                break;
            }
        }
    }
    let (Some(t), Some(v)) = (template, victim) else {
        panic!("fixture needs two slotted comms");
    };
    s.comms[v] = t;
    let errs = validate(&dag, &topo, &s).expect_err("must be detected");
    assert!(
        errs.iter()
            .any(|e| e.contains("overcommitted") || e.contains("route") || e.contains("before")),
        "{errs:#?}"
    );
}

#[test]
fn detects_fluid_volume_loss() {
    let (dag, topo, mut s) = fluid_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Fluid { flows, .. } = c {
            flows[0].pieces.pop();
            break;
        }
    }
    assert_rejected(&dag, &topo, &s, "volume");
}

#[test]
fn detects_fluid_rate_overflow() {
    let (dag, topo, mut s) = fluid_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Fluid { flows, .. } = c {
            for p in &mut flows[0].pieces {
                p.rate *= 3.0; // invalid rate > 1
            }
            break;
        }
    }
    let errs = validate(&dag, &topo, &s).expect_err("must be detected");
    assert!(!errs.is_empty());
}

#[test]
fn detects_fluid_causality_violation() {
    let (dag, topo, mut s) = fluid_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Fluid { flows, .. } = c {
            if flows.len() >= 2 {
                // Shift the downstream flow far earlier than arrival.
                for p in &mut flows[1].pieces {
                    p.start -= 1000.0;
                    p.end -= 1000.0;
                }
                break;
            }
        }
    }
    let errs = validate(&dag, &topo, &s).expect_err("must be detected");
    assert!(!errs.is_empty());
}

#[test]
fn detects_makespan_mismatch() {
    let (dag, topo, mut s) = slotted_schedule();
    s.makespan *= 2.0;
    assert_rejected(&dag, &topo, &s, "makespan");
}

#[test]
fn detects_local_marker_across_processors() {
    let (dag, topo, mut s) = slotted_schedule();
    for (i, c) in s.comms.iter_mut().enumerate() {
        let edge = dag.edge(es_dag::EdgeId(i as u32));
        if s.tasks[edge.src.index()].proc != s.tasks[edge.dst.index()].proc {
            *c = CommPlacement::Local;
            break;
        }
    }
    assert_rejected(&dag, &topo, &s, "Local");
}

#[test]
fn reports_multiple_violations_at_once() {
    let (dag, topo, mut s) = slotted_schedule();
    s.makespan += 1.0;
    s.tasks[0].finish += 1.0;
    let errs = validate(&dag, &topo, &s).unwrap_err();
    assert!(errs.len() >= 2, "{errs:#?}");
}

#[test]
fn validator_accepts_all_clean_schedules_repeatedly() {
    // Deterministic re-validation across many seeds; guards against
    // false positives from accumulated float noise in the validator.
    // Each seed's multi-DAG batch mixes kernel families, sizes, and
    // CCRs instead of revalidating one fixed kernel.
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = gen::random_switched_wan(&gen::WanConfig::heterogeneous(10), &mut rng);
        for job in &job_batch(6, 2, 3.0, seed) {
            for sched in [
                Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
                Box::new(ListScheduler::oihsa()),
                Box::new(BbsaScheduler::new()),
            ] {
                let s = sched.schedule(&job.dag, &topo).unwrap();
                if let Err(errs) = validate(&job.dag, &topo, &s) {
                    panic!(
                        "{} seed {seed} job {} {}: {errs:#?}",
                        sched.name(),
                        job.id,
                        job.label
                    );
                }
            }
        }
    }
}
