//! End-to-end experiment harness checks: small but complete runs of the
//! figure machinery with full validation on.

use es_sim::{fig1, fig2, fig3, fig4, run_cell, CellSpec, FigureParams};
use es_workload::{ccr_values, proc_counts, Setting};

fn small_params() -> FigureParams {
    FigureParams {
        reps: 2,
        tasks: Some(40),
        base_seed: 20060810,
        procs: vec![4, 8],
        ccrs: vec![0.5, 2.0, 8.0],
        threads: 4,
        validate: true,
        strong_baseline: false,
        progress: false,
    }
}

#[test]
fn fig1_end_to_end_with_validation() {
    let f = fig1(&small_params());
    assert_eq!(f.x.len(), 3);
    assert_eq!(f.cells.len(), 6);
    assert!(f.cells.iter().all(|c| c.ba_makespan > 0.0));
    // Homogeneous setting in every cell.
    assert!(f
        .cells
        .iter()
        .all(|c| c.spec.setting == Setting::Homogeneous));
    let table = f.to_table();
    assert!(table.contains("Figure 1"));
    assert!(table.contains("CCR"));
}

#[test]
fn fig2_aggregates_over_ccr() {
    let f = fig2(&small_params());
    assert_eq!(f.x, vec!["4", "8"]);
    // Each x-point averages all 3 CCR cells.
    assert_eq!(f.cells.len(), 6);
}

#[test]
fn fig3_and_fig4_are_heterogeneous() {
    let p = small_params();
    for f in [fig3(&p), fig4(&p)] {
        assert!(f
            .cells
            .iter()
            .all(|c| c.spec.setting == Setting::Heterogeneous));
    }
}

#[test]
fn paper_sweeps_have_paper_dimensions() {
    // The default parameter grids are the paper's.
    assert_eq!(ccr_values().len(), 19);
    assert_eq!(proc_counts(), vec![2, 4, 8, 16, 32, 64, 128]);
    let p = FigureParams::default();
    assert_eq!(p.ccrs.len(), 19);
    assert_eq!(p.procs.len(), 7);
}

#[test]
fn strong_baseline_columns_populated_when_requested() {
    let spec = CellSpec {
        setting: Setting::Homogeneous,
        processors: 4,
        ccr: 1.0,
        reps: 2,
        base_seed: 1,
        tasks: Some(30),
        validate: true,
        strong_baseline: true,
    };
    let r = run_cell(&spec);
    assert!(r.ba_probe_makespan.is_some());
    assert!(r.oihsa_probe_improvement.is_some());
    assert!(r.bbsa_probe_improvement.is_some());
    // The strong probing BA should not be worse than the static one on
    // average — it dominates by construction of its probe.
    assert!(
        r.ba_probe_makespan.unwrap() <= r.ba_makespan * 1.05,
        "probe {} vs static {}",
        r.ba_probe_makespan.unwrap(),
        r.ba_makespan
    );
}

#[test]
fn improvements_are_consistent_with_makespans_per_cell() {
    // A cell with one rep: improvement must equal the direct ratio.
    let spec = CellSpec {
        setting: Setting::Heterogeneous,
        processors: 8,
        ccr: 2.0,
        reps: 1,
        base_seed: 9,
        tasks: Some(50),
        validate: true,
        strong_baseline: false,
    };
    let r = run_cell(&spec);
    let expect = 100.0 * (r.ba_makespan - r.oihsa_makespan) / r.ba_makespan;
    assert!((r.oihsa_improvement - expect).abs() < 1e-9);
    let expect_b = 100.0 * (r.ba_makespan - r.bbsa_makespan) / r.ba_makespan;
    assert!((r.bbsa_improvement - expect_b).abs() < 1e-9);
}

#[test]
fn headline_shape_proposed_algorithms_do_not_lose_on_average() {
    // Aggregate over a moderate grid: the paper's core claim is that
    // OIHSA and BBSA beat BA; at minimum they must not lose on average
    // across the sweep (individual cells are noisy).
    // Individual instances swing ±30% (the schedulers are greedy and
    // chaotic in the orders they lock in), so this aggregates 32
    // instances and allows a noise floor well inside the paper's
    // claimed gains.
    let p = FigureParams {
        reps: 8,
        tasks: Some(60),
        base_seed: 31415,
        procs: vec![8, 16],
        ccrs: vec![1.0, 5.0],
        threads: 8,
        validate: true,
        strong_baseline: false,
        progress: false,
    };
    let f = fig3(&p);
    let mean_oi: f64 = f.oihsa.iter().sum::<f64>() / f.oihsa.len() as f64;
    let mean_bb: f64 = f.bbsa.iter().sum::<f64>() / f.bbsa.len() as f64;
    assert!(mean_oi > -4.0, "OIHSA mean {mean_oi}%");
    assert!(mean_bb > -2.0, "BBSA mean {mean_bb}%");
}

#[test]
fn suite_grid_schedules_validly_across_all_kernels_and_platforms() {
    use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};
    // The full kernel × platform grid (30 scenarios) at small size:
    // every scheduler must produce a valid schedule on every scenario.
    for sc in es_workload::suite::grid(30, 5, 2.0, 4242) {
        for sched in [
            Box::new(ListScheduler::ba_static()) as Box<dyn Scheduler>,
            Box::new(ListScheduler::oihsa()),
            Box::new(BbsaScheduler::new()),
        ] {
            let s = sched.schedule(&sc.dag, &sc.topo).unwrap_or_else(|e| {
                panic!(
                    "{} on {}/{}: {e}",
                    sched.name(),
                    sc.kernel.name(),
                    sc.platform.name()
                )
            });
            if let Err(errs) = validate(&sc.dag, &sc.topo, &s) {
                panic!(
                    "{} on {}/{}: {}",
                    sched.name(),
                    sc.kernel.name(),
                    sc.platform.name(),
                    errs.join("\n")
                );
            }
        }
    }
}
