//! Oracle suite for the online multi-DAG engine (DESIGN.md §15):
//!
//! * double-running the sweep is bitwise identical at 1, 2, and 4
//!   worker threads (CI repeats this binary under `ES_THREADS`);
//! * a single-arrival online run reproduces the offline scheduler
//!   bit for bit, per preset;
//! * compaction is semantics-free — with and without slot release,
//!   every job's schedule, dispatch, and finish agree bitwise;
//! * the vendored RNG stream behind the arrival process is pinned by
//!   a golden first-16-draws vector (RETIGHTEN(rand));
//! * proptests over random arrival scripts: no cross-job link-slot
//!   overlap (using the retirement-read times), every per-job schedule
//!   audit-clean, and event time monotone (dispatch >= arrival,
//!   finish >= start >= dispatch, in-flight cap respected).

mod common;

use common::{job_batch, presets};
use es_core::online::{
    arrival_script, run_online, Admission, ArrivalSpec, JobSpec, OnlineConfig, OnlineRun,
    ONLINE_STREAM,
};
use es_core::{diff_schedules, validate::audit, CommPlacement, ListScheduler, Scheduler};
use es_net::gen::{random_switched_wan, WanConfig};
use es_net::{LinkId, Topology};
use es_sim::{run_online_sweep, OnlineSweepSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;

/// RETIGHTEN(rand): the golden first 16 draws of the exact stream the
/// arrival process consumes (`StdRng::seed_from_u64(seed ^
/// ONLINE_STREAM)` for seed 42). The vendored rand stand-in is *not*
/// stream-compatible with upstream rand; if it is ever swapped for the
/// real crate, this vector changes and the online suite fails loudly —
/// re-derive the vector and re-tighten the probing-BA tripwire in
/// `integration_schedulers.rs` at the same time.
const GOLDEN_SEED: u64 = 42;
const GOLDEN_DRAWS: [u64; 16] = [
    0x88e415f1abfaf7c1,
    0x1b68e84b88e2faac,
    0x605baaacacb9ace0,
    0x8a20db75ae18fdb1,
    0xe2bff71cec47276d,
    0x3d76e91278a2a877,
    0x46d79ebae1c1f414,
    0x9c780cbc59a92c75,
    0xca9a7e5ad1c0dca8,
    0x35f3364899bf25a1,
    0xd0c5ae4ebe69070b,
    0xafc41dd9faaf5818,
    0x8f044acc13c58227,
    0xa97714991b166a6f,
    0x487dcd9e4d16fec6,
    0xf9cfb4a2572dd989,
];

#[test]
fn arrival_stream_rng_is_pinned() {
    let mut rng = StdRng::seed_from_u64(GOLDEN_SEED ^ ONLINE_STREAM);
    let draws: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
    assert_eq!(
        draws.as_slice(),
        GOLDEN_DRAWS.as_slice(),
        "vendored StdRng stream drifted — see RETIGHTEN(rand) above"
    );
    // And the derived script head: the first arrival's bits are a
    // function of draw 1 only, so pin them too as an end-to-end check
    // of the draw *order* (gap, tenant, family, size, weight, CCR).
    let script = arrival_script(&ArrivalSpec::default_mix(1, 3, 5.0, GOLDEN_SEED));
    let u = (GOLDEN_DRAWS[0] >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let expect = -(1.0 - u).ln() * 5.0;
    assert_eq!(script[0].arrival.to_bits(), expect.to_bits());
}

/// The sweep, double-run at every thread count in the CI matrix, must
/// agree bitwise cell by cell (`parallel_map` preserves input order;
/// cells are pure functions of sweep coordinates).
#[test]
fn online_sweep_is_bitwise_identical_across_thread_counts() {
    let mut spec = OnlineSweepSpec::smoke(0xD15, 1);
    spec.jobs = 8;
    let baseline = run_online_sweep(&spec);
    let rerun = run_online_sweep(&spec);
    for threads in [1usize, 2, 4] {
        spec.threads = threads;
        for cells in [&rerun, &run_online_sweep(&spec)] {
            assert_eq!(baseline.len(), cells.len());
            for (a, b) in baseline.iter().zip(cells.iter()) {
                assert_eq!(a.backend, b.backend);
                assert_eq!(a.scheduler, b.scheduler);
                assert_eq!(a.jobs, b.jobs);
                assert_eq!(a.released_slots, b.released_slots);
                for (x, y) in [
                    (a.mean_interarrival, b.mean_interarrival),
                    (a.mean_response, b.mean_response),
                    (a.mean_queueing, b.mean_queueing),
                    (a.mean_slowdown, b.mean_slowdown),
                    (a.p95_slowdown, b.p95_slowdown),
                    (a.fairness_ratio, b.fairness_ratio),
                    (a.horizon, b.horizon),
                ] {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{}@{} threads={threads}",
                        a.scheduler,
                        a.mean_interarrival
                    );
                }
            }
        }
    }
}

/// A one-job script arriving at t=0 exercises the online path end to
/// end on an empty platform: the outcome's schedule — including the
/// placements re-read at retirement — must be the offline scheduler's
/// schedule bit for bit, for every paper preset.
#[test]
fn single_arrival_run_equals_offline_scheduler_bitwise() {
    let topo = random_switched_wan(
        &WanConfig::heterogeneous(8),
        &mut StdRng::seed_from_u64(0x0FF1),
    );
    for job in job_batch(3, 1, 4.0, 0x0FF1CE) {
        for (name, cfg) in presets() {
            let offline = ListScheduler::with_config(cfg)
                .schedule(&job.dag, &topo)
                .unwrap_or_else(|e| panic!("{name} offline: {e}"));
            let script = [JobSpec::new(0, 0, 0.0, job.dag.clone())];
            let mut ocfg = OnlineConfig::new(cfg);
            ocfg.max_inflight = 1;
            let run =
                run_online(&ocfg, &topo, &script).unwrap_or_else(|e| panic!("{name} online: {e}"));
            let o = &run.outcomes[0];
            if let Some(d) = diff_schedules(&o.schedule, &offline) {
                panic!("{name} job {}: online != offline: {d}", job.id);
            }
            assert_eq!(o.dispatch.to_bits(), 0.0_f64.to_bits());
            assert_eq!(o.finish.to_bits(), offline.makespan.to_bits());
            assert_eq!(o.isolated_makespan.to_bits(), offline.makespan.to_bits());
            assert_eq!(run.horizon.to_bits(), offline.makespan.to_bits());
        }
    }
}

/// Compaction invariant at scale: releasing retired jobs' slots must
/// not change a single bit of any job's schedule, dispatch, or finish
/// across schedulers, admission policies, and seeds.
#[test]
fn compaction_is_semantics_free() {
    for seed in [3u64, 17, 0xC0DE] {
        let jobs = job_batch(14, 3, 1.5, seed);
        let topo = random_switched_wan(
            &WanConfig::homogeneous(6),
            &mut StdRng::seed_from_u64(seed ^ 0x70_70),
        );
        for (name, cfg) in [
            ("BA-static", es_core::ListConfig::ba_static()),
            ("OIHSA", es_core::ListConfig::oihsa()),
        ] {
            for admission in Admission::ALL {
                let mut ocfg = OnlineConfig::new(cfg);
                ocfg.admission = admission;
                ocfg.max_inflight = 3;
                let with = run_online(&ocfg, &topo, &jobs).unwrap();
                ocfg.compaction = false;
                let without = run_online(&ocfg, &topo, &jobs).unwrap();
                assert!(with.released_slots > 0, "{name} seed {seed}: no compaction");
                assert_eq!(without.released_slots, 0);
                for (a, b) in with.outcomes.iter().zip(&without.outcomes) {
                    assert_eq!(a.dispatch.to_bits(), b.dispatch.to_bits());
                    assert_eq!(a.finish.to_bits(), b.finish.to_bits());
                    if let Some(d) = diff_schedules(&a.schedule, &b.schedule) {
                        panic!(
                            "{name}/{} seed {seed} job {}: compaction changed the schedule: {d}",
                            admission.name(),
                            a.job
                        );
                    }
                }
                assert_eq!(with.horizon.to_bits(), without.horizon.to_bits());
            }
        }
    }
}

/// Every per-job schedule of an online run must pass the full offline
/// audit (delayed absolute times are legal; precedence, causality,
/// bandwidth, and makespan consistency are not relaxed).
fn assert_audit_clean(jobs: &[JobSpec], topo: &Topology, run: &OnlineRun) {
    for o in &run.outcomes {
        let job = &jobs[o.job as usize];
        let report = audit(&job.dag, topo, &o.schedule);
        assert!(
            report.is_clean(),
            "job {} ({}): {:#?}",
            o.job,
            o.label,
            report.diagnostics
        );
    }
}

/// Cross-job exclusivity from the retirement-read times: collect every
/// slotted hop interval of every job per link and check no two
/// overlap. (The per-job audit only sees one job's slots; this is the
/// multi-tenant half of the invariant.)
fn assert_no_cross_job_slot_overlap(run: &OnlineRun) {
    let mut by_link: BTreeMap<LinkId, Vec<(f64, f64, u64)>> = BTreeMap::new();
    for o in &run.outcomes {
        for comm in &o.schedule.comms {
            if let CommPlacement::Slotted { route, times } = comm {
                for (hop, &(s, f)) in route.iter().zip(times) {
                    by_link.entry(hop.link).or_default().push((s, f, o.job));
                }
            }
        }
    }
    for (link, mut slots) in by_link {
        slots.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for w in slots.windows(2) {
            let (_, f0, j0) = w[0];
            let (s1, _, j1) = w[1];
            assert!(
                s1 >= f0 - 1e-9,
                "link {link:?}: job {j0} slot ends {f0}, job {j1} slot starts {s1}"
            );
        }
    }
}

/// Event-time sanity from the outcomes alone: dispatch never precedes
/// arrival, tasks never start before dispatch, and at any dispatch
/// instant at most `max_inflight` jobs are in flight.
fn assert_monotone_event_time(run: &OnlineRun, max_inflight: usize) {
    for o in &run.outcomes {
        assert!(o.dispatch >= o.arrival, "job {}: dispatched early", o.job);
        assert!(o.start >= o.dispatch, "job {}: started early", o.job);
        assert!(o.finish >= o.start, "job {}: finished early", o.job);
        assert!(o.queueing >= 0.0 && o.response >= 0.0);
        let in_flight = run
            .outcomes
            .iter()
            .filter(|p| p.dispatch <= o.dispatch && p.finish > o.dispatch)
            .count();
        assert!(
            in_flight <= max_inflight,
            "job {}: {in_flight} in flight at dispatch {} (cap {max_inflight})",
            o.job,
            o.dispatch
        );
    }
}

fn script_strategy() -> impl Strategy<Value = (Vec<JobSpec>, Topology, OnlineConfig)> {
    (
        2usize..9,    // jobs
        1u32..4,      // tenants
        0.5f64..8.0,  // mean inter-arrival gap
        any::<u64>(), // script seed
        3usize..9,    // processors
        1usize..4,    // max in-flight
        0u8..4,       // admission x regime (2 bits)
    )
        .prop_map(|(jobs, tenants, gap, seed, procs, inflight, bits)| {
            let (swf, hetero) = (bits & 1 == 1, bits & 2 == 2);
            let script = arrival_script(&ArrivalSpec::default_mix(jobs, tenants, gap, seed));
            let wan = if hetero {
                WanConfig::heterogeneous(procs)
            } else {
                WanConfig::homogeneous(procs)
            };
            let topo = random_switched_wan(&wan, &mut StdRng::seed_from_u64(seed ^ 0x7090));
            let mut cfg = OnlineConfig::new(es_core::ListConfig::oihsa());
            cfg.max_inflight = inflight;
            cfg.admission = if swf {
                Admission::ShortestWorkFirst
            } else {
                Admission::Fifo
            };
            (script, topo, cfg)
        })
}

proptest! {
    // Each case runs the online engine twice (isolated makespans are a
    // second full pass); keep cases moderate.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole property: any random arrival script on any random
    /// WAN yields an online run whose per-job schedules are
    /// audit-clean, whose link slots never overlap across jobs, and
    /// whose event time is monotone.
    #[test]
    fn online_runs_are_audit_clean_overlap_free_and_monotone(
        (jobs, topo, cfg) in script_strategy()
    ) {
        let run = run_online(&cfg, &topo, &jobs).expect("online run schedules");
        prop_assert_eq!(run.outcomes.len(), jobs.len());
        assert_audit_clean(&jobs, &topo, &run);
        assert_no_cross_job_slot_overlap(&run);
        assert_monotone_event_time(&run, cfg.max_inflight);
        // And determinism on top: the same script replays bitwise.
        let again = run_online(&cfg, &topo, &jobs).expect("replay");
        prop_assert_eq!(run.released_slots, again.released_slots);
        for (a, b) in run.outcomes.iter().zip(&again.outcomes) {
            prop_assert_eq!(a.finish.to_bits(), b.finish.to_bits());
            prop_assert!(diff_schedules(&a.schedule, &b.schedule).is_none());
        }
    }
}
