//! Mutation testing of the structured audit: corrupt a known-valid
//! schedule one invariant family at a time and assert that exactly the
//! documented `ES-E00x` code fires — and that the finding survives the
//! `es-diag-v1` JSON round-trip unchanged.
//!
//! This complements `integration_validation.rs`, which asserts on the
//! human messages through the `validate()` shim; here we pin down the
//! stable code taxonomy (DESIGN.md §8).

use es_core::validate::audit;
use es_core::{
    BbsaScheduler, Code, CommPlacement, ListScheduler, Report, Schedule, Scheduler, Severity,
};
use es_dag::gen::structured::fork_join;
use es_dag::TaskGraph;
use es_net::gen::{self, SpeedDist};
use es_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fixture guaranteed to contain remote (link-scheduled)
/// communications for both the slotted and the fluid scheduler.
fn fixture() -> (TaskGraph, Topology) {
    let dag = fork_join(5, 50.0, 10.0);
    let mut rng = StdRng::seed_from_u64(3);
    let topo = gen::star(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
    (dag, topo)
}

fn slotted_schedule() -> (TaskGraph, Topology, Schedule) {
    let (dag, topo) = fixture();
    let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
    assert!(audit(&dag, &topo, &s).is_clean());
    (dag, topo, s)
}

fn fluid_schedule() -> (TaskGraph, Topology, Schedule) {
    let (dag, topo) = fixture();
    let s = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
    assert!(audit(&dag, &topo, &s).is_clean());
    (dag, topo, s)
}

/// Audit the corrupted schedule, assert `code` fires as an error, then
/// push the whole report through JSON and assert nothing was lost.
fn assert_fires(dag: &TaskGraph, topo: &Topology, s: &Schedule, code: Code) {
    let report = audit(dag, topo, s);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == code && d.severity == Severity::Error),
        "expected an error with code {}, got:\n{}",
        code.as_str(),
        report.render_human()
    );
    let parsed = Report::from_json(&report.to_json()).expect("es-diag-v1 round-trip");
    assert_eq!(parsed, report, "JSON round-trip must be lossless");
    assert_eq!(
        parsed.counts_by_code()[&code],
        report.counts_by_code()[&code]
    );
}

#[test]
fn e000_structural_mismatch() {
    let (dag, topo, mut s) = slotted_schedule();
    s.tasks.pop();
    let report = audit(&dag, &topo, &s);
    // Structure errors short-circuit: nothing else can be audited.
    assert_eq!(report.diagnostics.len(), 1);
    assert_fires(&dag, &topo, &s, Code::Structure);
}

#[test]
fn e001_task_timing() {
    let (dag, topo, mut s) = slotted_schedule();
    s.tasks[0].finish += 1.0;
    s.makespan = Schedule::compute_makespan(&s.tasks);
    assert_fires(&dag, &topo, &s, Code::TaskTiming);
}

#[test]
fn e002_processor_overlap() {
    let (dag, topo, mut s) = slotted_schedule();
    let p0 = s.tasks[1].proc;
    for i in 2..s.tasks.len() {
        if s.tasks[i].proc != p0 {
            s.tasks[i].proc = p0;
            s.tasks[i].start = s.tasks[1].start;
            s.tasks[i].finish = s.tasks[1].start + dag.weight(es_dag::TaskId(i as u32));
            break;
        }
    }
    s.makespan = Schedule::compute_makespan(&s.tasks);
    assert_fires(&dag, &topo, &s, Code::ProcOverlap);
}

#[test]
fn e003_precedence() {
    let (dag, topo, mut s) = slotted_schedule();
    // The join task depends on remote data; pull it to time 0.
    let last = s.tasks.len() - 1;
    let w = dag.weight(es_dag::TaskId(last as u32));
    s.tasks[last].start = 0.0;
    s.tasks[last].finish = w / topo.proc_speed(s.tasks[last].proc);
    s.makespan = Schedule::compute_makespan(&s.tasks);
    assert_fires(&dag, &topo, &s, Code::Precedence);
}

#[test]
fn e004_route_validity() {
    let (dag, topo, mut s) = slotted_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Slotted { route, .. } = c {
            if route.len() >= 2 {
                route.swap(0, 1);
                break;
            }
        }
    }
    assert_fires(&dag, &topo, &s, Code::Route);
}

#[test]
fn e004_local_marker_across_processors() {
    let (dag, topo, mut s) = slotted_schedule();
    for (i, c) in s.comms.iter_mut().enumerate() {
        let edge = dag.edge(es_dag::EdgeId(i as u32));
        if s.tasks[edge.src.index()].proc != s.tasks[edge.dst.index()].proc {
            *c = CommPlacement::Local;
            break;
        }
    }
    assert_fires(&dag, &topo, &s, Code::Route);
}

#[test]
fn e005_link_causality() {
    let (dag, topo, mut s) = slotted_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Slotted { times, .. } = c {
            if times.len() >= 2 {
                // Shift the second hop before the first, keeping its
                // duration so only causality is violated.
                let d = times[1].1 - times[1].0;
                times[1].0 = times[0].0 - 1.0;
                times[1].1 = times[1].0 + d;
                break;
            }
        }
    }
    assert_fires(&dag, &topo, &s, Code::LinkCausality);
}

#[test]
fn e006_slot_duration() {
    let (dag, topo, mut s) = slotted_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Slotted { times, .. } = c {
            times[0].1 += 3.0;
            break;
        }
    }
    assert_fires(&dag, &topo, &s, Code::SlotExclusivity);
}

#[test]
fn e007_fluid_volume() {
    let (dag, topo, mut s) = fluid_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Fluid { flows, .. } = c {
            flows[0].pieces.pop();
            break;
        }
    }
    assert_fires(&dag, &topo, &s, Code::FluidCapacity);
}

#[test]
fn e007_fluid_rate_overflow() {
    let (dag, topo, mut s) = fluid_schedule();
    for c in &mut s.comms {
        if let CommPlacement::Fluid { flows, .. } = c {
            for p in &mut flows[0].pieces {
                p.rate *= 3.0;
            }
            break;
        }
    }
    assert_fires(&dag, &topo, &s, Code::FluidCapacity);
}

#[test]
fn e008_makespan() {
    let (dag, topo, mut s) = slotted_schedule();
    s.makespan *= 2.0;
    assert_fires(&dag, &topo, &s, Code::Makespan);
}

#[test]
fn warnings_do_not_fail_the_shim() {
    // An Ideal schedule with remote placements carries an advisory
    // ES-E004 warning; the legacy validate() shim must still pass.
    let dag = fork_join(3, 50.0, 0.1);
    let mut rng = StdRng::seed_from_u64(5);
    let topo = gen::star(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
    let s = es_core::IdealScheduler::new()
        .schedule(&dag, &topo)
        .unwrap();
    let report = audit(&dag, &topo, &s);
    if report.warning_count() > 0 {
        assert!(report.error_count() == 0);
        assert!(es_core::validate::validate(&dag, &topo, &s).is_ok());
        // Warnings round-trip too.
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }
}

#[test]
fn every_fired_code_is_in_the_documented_taxonomy() {
    // Belt and braces for DESIGN.md §8: any diagnostic the audit can
    // produce parses back to a known Code via its stable string.
    let (dag, topo, mut s) = slotted_schedule();
    s.tasks[0].finish += 1.0;
    s.makespan *= 3.0;
    let report = audit(&dag, &topo, &s);
    assert!(!report.is_clean());
    for d in &report.diagnostics {
        assert_eq!(Code::parse(d.code.as_str()), Some(d.code));
    }
}
