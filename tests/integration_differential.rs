//! Differential-testing oracle for the hot-path optimization layer
//! (DESIGN.md §10): every optimized path — route/probe cache, indexed
//! gap search, scratch-buffer searches, targeted unschedule — must
//! produce **bitwise-identical** schedules and executions to the
//! reference implementations kept behind [`Tuning::reference`].
//!
//! The matrix covers all four paper presets × several workload
//! families (the paper's random layered DAGs in both speed regimes
//! plus structured suite kernels) × eight seeds, and checks
//! `execute()` and `execute_with()` outputs bit for bit.

mod common;

use common::{families, presets, SEEDS};
use es_core::{
    diff_executions, diff_schedules, execute, execute_with, repair_with, FaultPlan, FaultSpec,
    ListConfig, ListScheduler, ProbeParallelism, Scheduler, Tuning,
};

/// The oracle: for every preset × family × seed, the optimized tuning
/// must reproduce the reference schedule, its `execute()` replay, and
/// its `execute_with()` replay under a seeded soft-fault plan, all
/// bitwise.
#[test]
fn optimized_paths_are_bitwise_identical_to_reference() {
    for &seed in &SEEDS {
        for (family, dag, topo) in families(seed) {
            for (name, cfg) in presets() {
                let run = |tuning: Tuning| {
                    ListScheduler::with_config(ListConfig { tuning, ..cfg })
                        .schedule(&dag, &topo)
                        .unwrap_or_else(|e| panic!("{name}/{family}/seed {seed}: {e}"))
                };
                let opt = run(Tuning::optimized());
                let refr = run(Tuning::reference());
                if let Some(d) = diff_schedules(&opt, &refr) {
                    panic!("{name}/{family}/seed {seed}: schedule diverged: {d}");
                }
                let eo = execute(&dag, &topo, &opt).expect("execute optimized");
                let er = execute(&dag, &topo, &refr).expect("execute reference");
                if let Some(d) = diff_executions(&eo, &er) {
                    panic!("{name}/{family}/seed {seed}: execution diverged: {d}");
                }
                // Perturbed replay: identical schedules must stay
                // identical under the same seeded fault plan.
                let spec = FaultSpec::soft(0.3, refr.makespan);
                let plan = FaultPlan::seeded(&dag, &topo, &spec, seed ^ 0xFA17);
                let po = execute_with(&dag, &topo, &opt, &plan).expect("execute_with optimized");
                let pr = execute_with(&dag, &topo, &refr, &plan).expect("execute_with reference");
                if let Some(d) = diff_executions(&po.execution, &pr.execution) {
                    panic!("{name}/{family}/seed {seed}: perturbed execution diverged: {d}");
                }
                for (a, b) in po.slack.iter().zip(&pr.slack) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{name}/{family}/seed {seed}: slack"
                    );
                }
            }
        }
    }
}

/// The speculative overlay probe (DESIGN.md §11) must be bitwise
/// identical to the sequential mutate-and-rollback probe at every
/// worker count — schedules, `execute()`, `execute_with()` under a
/// seeded fault plan, and failure-aware repair — across the full
/// preset × family × seed matrix. `Workers(n)` forces the overlay path
/// regardless of the host's core count, so 2- and 4-lane runs exercise
/// real cross-thread probing wherever the suite executes.
#[test]
fn parallel_probe_is_bitwise_identical_across_thread_counts() {
    for &seed in &SEEDS {
        for (family, dag, topo) in families(seed) {
            for (name, cfg) in presets() {
                let run = |tuning: Tuning| {
                    ListScheduler::with_config(ListConfig { tuning, ..cfg })
                        .schedule(&dag, &topo)
                        .unwrap_or_else(|e| panic!("{name}/{family}/seed {seed}: {e}"))
                };
                let seq_tuning = Tuning {
                    parallel_probe: ProbeParallelism::Sequential,
                    ..Tuning::optimized()
                };
                let seq = run(seq_tuning);
                let eseq = execute(&dag, &topo, &seq).expect("execute sequential");
                let spec = FaultSpec::soft(0.3, seq.makespan);
                let plan = FaultPlan::seeded(&dag, &topo, &spec, seed ^ 0xFA17);
                let pseq = execute_with(&dag, &topo, &seq, &plan).expect("execute_with sequential");
                // Hard failure for the repair leg: kill the processor
                // of the last-finishing task halfway through.
                let victim = seq
                    .tasks
                    .iter()
                    .max_by(|a, b| a.finish.total_cmp(&b.finish))
                    .expect("non-empty schedule")
                    .proc;
                let kill = FaultPlan::kill_processor(&topo, victim, seq.makespan / 2.0);
                let rseq = repair_with(&dag, &topo, &seq, &kill, seq_tuning)
                    .unwrap_or_else(|e| panic!("{name}/{family}/seed {seed}: repair: {e}"));

                for workers in [1usize, 2, 4] {
                    let tuning = Tuning {
                        parallel_probe: ProbeParallelism::Workers(workers),
                        ..Tuning::optimized()
                    };
                    let par = run(tuning);
                    if let Some(d) = diff_schedules(&par, &seq) {
                        panic!("{name}/{family}/seed {seed}/x{workers}: schedule diverged: {d}");
                    }
                    let ep = execute(&dag, &topo, &par).expect("execute parallel");
                    if let Some(d) = diff_executions(&ep, &eseq) {
                        panic!("{name}/{family}/seed {seed}/x{workers}: execution diverged: {d}");
                    }
                    let pp = execute_with(&dag, &topo, &par, &plan).expect("execute_with parallel");
                    if let Some(d) = diff_executions(&pp.execution, &pseq.execution) {
                        panic!(
                            "{name}/{family}/seed {seed}/x{workers}: perturbed execution \
                             diverged: {d}"
                        );
                    }
                    let rp = repair_with(&dag, &topo, &par, &kill, tuning)
                        .unwrap_or_else(|e| panic!("{name}/{family}/seed {seed}: repair: {e}"));
                    if let Some(d) = diff_schedules(&rp.schedule, &rseq.schedule) {
                        panic!("{name}/{family}/seed {seed}/x{workers}: repair diverged: {d}");
                    }
                }
            }
        }
    }
}

/// Mixed tunings must also agree pairwise: cache-only and index-only
/// each reproduce the reference schedule on their own (the two
/// optimizations are independent, so any subset is bit-identical).
#[test]
fn each_optimization_is_independently_identical() {
    let seed = SEEDS[0];
    for (family, dag, topo) in families(seed) {
        for (name, cfg) in presets() {
            let run = |tuning: Tuning| {
                ListScheduler::with_config(ListConfig { tuning, ..cfg })
                    .schedule(&dag, &topo)
                    .unwrap_or_else(|e| panic!("{name}/{family}: {e}"))
            };
            let refr = run(Tuning::reference());
            for (label, tuning) in [
                (
                    "cache-only",
                    Tuning {
                        route_cache: true,
                        ..Tuning::reference()
                    },
                ),
                (
                    "index-only",
                    Tuning {
                        indexed_gaps: true,
                        ..Tuning::reference()
                    },
                ),
                (
                    "overlay-only",
                    Tuning {
                        parallel_probe: ProbeParallelism::Workers(1),
                        ..Tuning::reference()
                    },
                ),
                (
                    "snapshot-only",
                    Tuning {
                        snapshot_restore: true,
                        ..Tuning::reference()
                    },
                ),
            ] {
                let s = run(tuning);
                if let Some(d) = diff_schedules(&s, &refr) {
                    panic!("{name}/{family}/{label}: schedule diverged: {d}");
                }
            }
        }
    }
}
