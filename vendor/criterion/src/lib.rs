//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates registry, so this vendored crate
//! provides the API the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`). It is a smoke-runner, not a
//! statistics engine: each benchmark closure is timed over a small
//! fixed number of iterations and a mean is printed. CLI arguments
//! (`--quick`, filters) are accepted and ignored.

// Vendored stand-in: compiled as first-party workspace code, but not
// held to the pedantic bar the real crates are.
#![allow(clippy::pedantic)]
#![forbid(unsafe_code)]

use std::time::Instant;

/// Number of timed iterations per benchmark.
const ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group<N: std::fmt::Display>(&mut self, name: N) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.to_string(),
        }
    }
}

/// A named group; benchmarks print as `group/name`.
pub struct BenchmarkGroup {
    prefix: String,
}

impl BenchmarkGroup {
    /// Run one benchmark inside the group.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{name}", self.prefix), &mut f);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to every benchmark closure; [`Bencher::iter`] times the
/// routine.
pub struct Bencher {
    total_nanos: u128,
    timed_iters: u64,
}

impl Bencher {
    /// Time `routine`, running it a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.timed_iters += u64::from(ITERS);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        total_nanos: 0,
        timed_iters: 0,
    };
    f(&mut b);
    if b.timed_iters > 0 {
        let mean = b.total_nanos / u128::from(b.timed_iters);
        println!("bench {name:<50} {mean:>12} ns/iter (offline smoke runner)");
    } else {
        println!("bench {name:<50} (no iterations)");
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore criterion CLI flags (--quick, filters).
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut count = 0u32;
        Criterion::default().bench_function("smoke", |b| b.iter(|| count += 1));
        // 1 warm-up + ITERS timed.
        assert_eq!(count, 1 + ITERS);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.bench_function("x", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
