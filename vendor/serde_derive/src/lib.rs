//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types but
//! never serialises them through serde (all real serialisation in this
//! repo is hand-written CSV/JSON). These derives accept the same syntax
//! — including `#[serde(...)]` helper attributes — and emit nothing.

// Vendored stand-in: compiled as first-party workspace code, but not
// held to the pedantic bar the real crates are.
#![allow(clippy::pedantic)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
