//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! vendored crate provides exactly the API surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`]/[`RngExt`] methods `random_range` / `random_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic per seed on every platform, which is the property the
//! workspace's reproducibility story actually depends on. The stream
//! differs from upstream `rand`'s `StdRng` (ChaCha12), so seeds are
//! *internally* stable but not interchangeable with upstream.

// Vendored stand-in: compiled as first-party workspace code, but not
// held to the pedantic bar the real crates are.
#![allow(clippy::pedantic)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an (inclusive or exclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample_inclusive(self, lo, hi_inclusive)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Alias kept for import compatibility (`use rand::RngExt` must bring
/// the sampling methods into scope just like `use rand::Rng` does, so
/// it is the same trait under a second name, not a subtrait).
pub use Rng as RngExt;

/// Map a raw word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (both inclusive).
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// `(low, high)` with `high` inclusive.
    fn bounds(self) -> (T, T);
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift range reduction; the bias is < 2^-64
                // per draw, far below anything these workloads resolve.
                let word = rng.next_u64() as u128;
                let off = (word * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty sampling range");
                (self.start, self.end - 1)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn bounds(self) -> ($t, $t) {
                self.into_inner()
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty sampling range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn bounds(self) -> (f64, f64) {
        assert!(self.start < self.end, "empty sampling range");
        (self.start, self.end)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn bounds(self) -> (f64, f64) {
        self.into_inner()
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the
    /// upstream `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let x = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[rng.random_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
