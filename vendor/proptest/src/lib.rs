//! Offline mini-proptest.
//!
//! The build environment has no crates registry, so this vendored crate
//! implements the subset of proptest the workspace's property tests
//! use: range and tuple strategies, `any::<u64>()`, `prop::bool::ANY`,
//! `prop::collection::vec`, `.prop_map`, the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, and the `prop_assert*`
//! macros.
//!
//! Differences from upstream, chosen deliberately:
//! * case generation is **deterministic** — the RNG stream is derived
//!   from the test function's name and the case index, so every run
//!   (and every machine) exercises identical cases;
//! * there is **no shrinking** — a failing case reports its index and
//!   message and panics immediately.

// Vendored stand-in: compiled as first-party workspace code, but not
// held to the pedantic bar the real crates are.
#![allow(clippy::pedantic)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Failure raised by `prop_assert*` inside a property body.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-(test, case) RNG. `test_name` salts the stream so
/// different properties see different data.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of values; the mini equivalent of proptest's trait.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample the full domain uniformly.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespaced helper strategies (`prop::bool::ANY`,
/// `prop::collection::vec`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::RngCore;

        /// Uniform boolean strategy.
        pub struct AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// The uniform boolean strategy.
        pub const ANY: AnyBool = AnyBool;
    }

    /// Collection strategies.
    pub mod collection {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// `Vec` strategy with element strategy `S` and a length drawn
        /// from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests; supports an optional
/// `#![proptest_config(...)]` header and multiple `#[test]` functions
/// with `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        #[allow(unused_mut)]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let strategy = ( $($strat,)+ );
            for case in 0..cfg.cases {
                let mut rng = $crate::test_rng(stringify!($name), case);
                let ( $($pat,)+ ) = $crate::Strategy::generate(&strategy, &mut rng);
                let mut body =
                    || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                if let Err(e) = body() {
                    panic!("proptest case {case} of {}: {e}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property; fails the case (no shrinking) instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {a:?}\n right: {b:?}",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {a:?}\n right: {b:?}",
                format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {a:?}",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = (0usize..100, 0.0f64..1.0);
        let a = strat.generate(&mut crate::test_rng("t", 3));
        let b = strat.generate(&mut crate::test_rng("t", 3));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        let c = strat.generate(&mut crate::test_rng("t", 4));
        assert!(a.0 != c.0 || a.1.to_bits() != c.1.to_bits());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 5usize..10, y in 1.5f64..=2.5, flag in prop::bool::ANY) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1.5..=2.5).contains(&y));
            let _ = flag;
        }

        #[test]
        fn vec_lengths_hold(v in prop::collection::vec(0u64..8, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for e in v {
                prop_assert!(e < 8);
            }
        }

        #[test]
        fn mapped_tuples((a, b) in (0u32..4, 0u32..4).prop_map(|(a, b)| (a * 10, b))) {
            prop_assert!(a % 10 == 0);
            prop_assert!(b < 4, "b was {b}");
            prop_assert_eq!(a / 10 * 10, a);
        }

        #[test]
        fn early_ok_return(n in 0usize..10) {
            if n < 100 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }
}
