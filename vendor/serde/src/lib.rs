//! Offline stand-in for `serde`.
//!
//! The build environment has no crates registry, so this vendored crate
//! satisfies the workspace's `use serde::{Deserialize, Serialize}`
//! imports with no-op derive macros (see `vendor/serde_derive`). Real
//! serialisation in this repo — schedule CSVs, diagnostic JSON — is
//! hand-written and dependency-free (`es_core::export`,
//! `es_core::diag`).

// Vendored stand-in: compiled as first-party workspace code, but not
// held to the pedantic bar the real crates are.
#![allow(clippy::pedantic)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
